//! Fast, seedable pseudo-random number generation for the hot paths.
//!
//! Every MultiCounter increment and every MultiQueue dequeue draws two
//! uniform indices. Routing those draws through a general-purpose RNG
//! crate would dominate the cost of the `fetch_add` itself, so we use
//! xoshiro256\*\* (Blackman & Vigna), seeded via SplitMix64 — the
//! standard pairing, with 256 bits of state and sub-nanosecond output.
//!
//! Two usage styles are supported:
//!
//! * **Deterministic**: construct a [`Xoshiro256`] from a seed and thread
//!   it through `*_with` methods — what the simulators and tests do.
//! * **Convenient**: [`with_thread_rng`] hands each OS thread its own
//!   lazily-seeded generator (unique seed per thread from a global
//!   counter), used by the no-argument `increment()`/`dequeue()` APIs.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Minimal interface the data structures need from a generator.
pub trait Rng64 {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform index in `0..n` (n > 0), via Lemire's multiply-shift.
    /// Bias is at most `n / 2^64` — immaterial for `n` up to billions.
    #[inline]
    fn bounded(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli(p) draw.
    #[inline]
    fn coin(&mut self, p: f64) -> bool {
        self.uniform_f64() < p
    }
}

/// SplitMix64: the recommended seeder for xoshiro state.
///
/// Also a perfectly fine (if statistically weaker) generator on its own;
/// we expose it because some simulators only need stream splitting.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from any 64-bit seed (0 is fine).
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the workhorse generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the 256-bit state from a 64-bit seed through SplitMix64,
    /// as the xoshiro authors prescribe.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state is the one forbidden fixed point; SplitMix64
        // cannot produce four consecutive zeros, but belt and braces:
        debug_assert!(s.iter().any(|&w| w != 0));
        Xoshiro256 { s }
    }

    /// Derives an independent generator (for a new thread or a forked
    /// simulation branch) by drawing a fresh seed from this one.
    pub fn fork(&mut self) -> Self {
        Xoshiro256::new(self.next_u64())
    }
}

impl Rng64 for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Global source of distinct per-thread seeds.
static THREAD_SEED: AtomicU64 = AtomicU64::new(0x6a09e667f3bcc908);

thread_local! {
    static THREAD_RNG: UnsafeCell<Xoshiro256> = UnsafeCell::new(Xoshiro256::new(
        THREAD_SEED.fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed),
    ));
}

/// Runs `f` with this thread's private generator.
///
/// The closure must not call `with_thread_rng` reentrantly (it cannot,
/// short of deliberately smuggling the call into `f` — doing so would be
/// a bug, and the `UnsafeCell` access below relies on its absence).
#[inline]
pub fn with_thread_rng<R>(f: impl FnOnce(&mut Xoshiro256) -> R) -> R {
    THREAD_RNG.with(|cell| {
        // SAFETY: thread-local, non-reentrant (documented contract); no
        // other reference to the cell can exist while `f` runs.
        f(unsafe { &mut *cell.get() })
    })
}

/// Overrides this thread's generator seed — lets tests that exercise the
/// convenience (thread-rng) APIs run deterministically.
pub fn reseed_thread_rng(seed: u64) {
    THREAD_RNG.with(|cell| {
        // SAFETY: same contract as `with_thread_rng`.
        unsafe { *cell.get() = Xoshiro256::new(seed) }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference output of SplitMix64 with seed 1234567,
        // cross-checked against the public-domain C implementation.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256::new(99);
        let mut b = Xoshiro256::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::new(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_stays_in_range_and_covers() {
        let mut rng = Xoshiro256::new(7);
        let n = 10u64;
        let mut seen = [0u32; 10];
        for _ in 0..10_000 {
            let v = rng.bounded(n);
            assert!(v < n);
            seen[v as usize] += 1;
        }
        // Every bucket hit; uniform would be 1000 per bucket.
        for (i, &c) in seen.iter().enumerate() {
            assert!(c > 700, "bucket {i} too light: {c}");
        }
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.uniform_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn coin_respects_probability() {
        let mut rng = Xoshiro256::new(11);
        let hits = (0..10_000).filter(|_| rng.coin(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fork_produces_divergent_streams() {
        let mut a = Xoshiro256::new(5);
        let mut b = a.fork();
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn thread_rngs_are_distinct_across_threads() {
        let here = with_thread_rng(|r| r.next_u64());
        let there = std::thread::spawn(|| with_thread_rng(|r| r.next_u64()))
            .join()
            .unwrap();
        assert_ne!(here, there);
    }

    #[test]
    fn reseed_makes_thread_rng_deterministic() {
        reseed_thread_rng(42);
        let a = with_thread_rng(|r| r.next_u64());
        reseed_thread_rng(42);
        let b = with_thread_rng(|r| r.next_u64());
        assert_eq!(a, b);
    }
}
