//! The sharded ("striped") counter — the classic industrial baseline.
//!
//! One padded cell per thread (or per stripe), increments go to the
//! caller's own cell: perfect increment scalability with **no**
//! coordination at all. The price is on the read side: an exact read
//! must sum all `m` cells (O(m), and not linearizable under concurrent
//! increments), and there is no cheap single-cell read with a bounded
//! error — a single cell says nothing about the total because stripes
//! are only balanced if thread activity happens to be.
//!
//! This is precisely the trade-off that motivates the MultiCounter: the
//! two-choice rule buys a *provable O(m log m) bound on single-sample
//! reads* (Lemma 6.8) for the cost of two extra loads per increment.
//! The fig1a harness and `bench_counter` pit all three designs against
//! each other.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::counter::RelaxedCounter;
use crate::padded::Padded;
use crate::rng::Rng64;

/// A striped counter: increments hit a per-thread stripe.
///
/// # Example
/// ```
/// use dlz_core::{ShardedCounter, RelaxedCounter};
/// let c = ShardedCounter::new(8);
/// c.increment();
/// assert_eq!(c.read_exact(), 1);
/// ```
#[derive(Debug)]
pub struct ShardedCounter {
    cells: Box<[Padded<AtomicU64>]>,
    /// Round-robin stripe assignment for threads.
    next_stripe: AtomicUsize,
}

thread_local! {
    /// Cached stripe index per (thread, counter-instance is ignored:
    /// one slot is fine because stripes are interchangeable).
    static STRIPE: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

impl ShardedCounter {
    /// Creates a counter with `m` stripes.
    ///
    /// # Panics
    /// If `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "ShardedCounter needs at least one stripe");
        ShardedCounter {
            cells: (0..m).map(|_| Padded::new(AtomicU64::new(0))).collect(),
            next_stripe: AtomicUsize::new(0),
        }
    }

    /// Number of stripes.
    pub fn num_stripes(&self) -> usize {
        self.cells.len()
    }

    /// This thread's stripe (assigned round-robin on first use).
    #[inline]
    fn my_stripe(&self) -> usize {
        STRIPE.with(|s| {
            let mut idx = s.get();
            if idx == usize::MAX {
                idx = self.next_stripe.fetch_add(1, Ordering::Relaxed);
                s.set(idx);
            }
            idx % self.cells.len()
        })
    }

    /// Increment on an explicit stripe (for deterministic tests).
    #[inline]
    pub fn increment_stripe(&self, stripe: usize) {
        self.cells[stripe % self.cells.len()].fetch_add(1, Ordering::Relaxed);
    }

    /// A *single-sample* read, for apples-to-apples comparison with the
    /// MultiCounter: one random cell times `m`. Unlike the
    /// MultiCounter, nothing bounds its error — stripes can be
    /// arbitrarily skewed (e.g. one hot thread) — which is the point
    /// the comparison makes.
    pub fn read_sample_with(&self, rng: &mut impl Rng64) -> u64 {
        let m = self.cells.len() as u64;
        let i = rng.bounded(m) as usize;
        self.cells[i].load(Ordering::Relaxed).saturating_mul(m)
    }

    /// Max minus min over stripes (unbounded in general).
    pub fn max_gap(&self) -> u64 {
        let mut min = u64::MAX;
        let mut max = 0u64;
        for c in self.cells.iter() {
            let v = c.load(Ordering::Relaxed);
            min = min.min(v);
            max = max.max(v);
        }
        max.saturating_sub(min)
    }
}

impl RelaxedCounter for ShardedCounter {
    #[inline]
    fn increment(&self) {
        let stripe = self.my_stripe();
        self.cells[stripe].fetch_add(1, Ordering::Relaxed);
    }

    /// Exact read by summation — O(m) and racy under concurrency, like
    /// `LongAdder.sum()`.
    fn read(&self) -> u64 {
        self.read_exact()
    }

    fn read_exact(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;
    use std::sync::Arc;

    #[test]
    fn conservation_under_concurrency() {
        const THREADS: u64 = 4;
        const PER: u64 = 50_000;
        let c = Arc::new(ShardedCounter::new(8));
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..PER {
                        c.increment();
                    }
                });
            }
        });
        assert_eq!(c.read_exact(), THREADS * PER);
    }

    #[test]
    fn stripes_can_be_arbitrarily_skewed() {
        // A single hot stripe: the exact read is fine, but the
        // single-sample read has unbounded error — the failure mode the
        // MultiCounter's two-choice rule eliminates.
        let c = ShardedCounter::new(8);
        for _ in 0..10_000 {
            c.increment_stripe(3);
        }
        assert_eq!(c.read_exact(), 10_000);
        assert_eq!(c.max_gap(), 10_000);
        let mut rng = Xoshiro256::new(1);
        let mut worst = 0u64;
        for _ in 0..64 {
            let s = c.read_sample_with(&mut rng);
            worst = worst.max(s.abs_diff(10_000));
        }
        // Samples are either 0 (7/8 chance) or 80_000: error is Θ(total),
        // vastly beyond the MultiCounter's m·log m.
        assert!(worst >= 10_000);
    }

    #[test]
    fn explicit_stripe_wraps() {
        let c = ShardedCounter::new(4);
        c.increment_stripe(0);
        c.increment_stripe(4); // wraps to stripe 0
        assert_eq!(c.read_exact(), 2);
        assert_eq!(c.num_stripes(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one stripe")]
    fn zero_stripes_rejected() {
        let _ = ShardedCounter::new(0);
    }
}
