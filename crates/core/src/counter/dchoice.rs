//! The d-choice generalization of the MultiCounter.
//!
//! Algorithm 1 samples two cells; sampling `d` generalizes the classic
//! balanced-allocation family:
//!
//! * `d = 1` — pure random placement. The gap between bins *diverges*
//!   (Θ(√(t log m / m)) after t balls); the paper cites this as the
//!   reason stale/contended executions are dangerous: too much staleness
//!   degrades two-choice toward one-choice. It is our negative control.
//! * `d = 2` — Algorithm 1 (use [`MultiCounter`](crate::MultiCounter)
//!   for the optimized implementation).
//! * `d > 2` — marginally tighter balance (gap `log log m / log d + O(1)`
//!   sequentially) for proportionally more read traffic per increment.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::counter::RelaxedCounter;
use crate::padded::Padded;
use crate::rng::{with_thread_rng, Rng64};

/// A relaxed counter that increments the smallest of `d` sampled cells.
///
/// # Example
/// ```
/// use dlz_core::{DChoiceCounter, RelaxedCounter};
/// use dlz_core::rng::Xoshiro256;
///
/// let c = DChoiceCounter::new(16, 4, 123);
/// let mut rng = Xoshiro256::new(9);
/// for _ in 0..1000 {
///     c.increment_with(&mut rng);
/// }
/// assert_eq!(c.read_exact(), 1000);
/// ```
#[derive(Debug)]
pub struct DChoiceCounter {
    cells: Box<[Padded<AtomicU64>]>,
    d: usize,
}

impl DChoiceCounter {
    /// Creates a counter with `m` cells and `d` choices per increment.
    /// The `_seed` parameter is kept for API symmetry with the builder
    /// and reseeds the calling thread's convenience RNG.
    ///
    /// # Panics
    /// If `m == 0` or `d == 0`.
    pub fn new(m: usize, d: usize, seed: u64) -> Self {
        assert!(m >= 1, "need at least one cell");
        assert!(d >= 1, "need at least one choice");
        crate::rng::reseed_thread_rng(seed);
        DChoiceCounter {
            cells: (0..m).map(|_| Padded::new(AtomicU64::new(0))).collect(),
            d,
        }
    }

    /// Number of cells.
    pub fn num_counters(&self) -> usize {
        self.cells.len()
    }

    /// Number of choices per increment.
    pub fn choices(&self) -> usize {
        self.d
    }

    /// One d-choice increment with an explicit generator.
    #[inline]
    pub fn increment_with(&self, rng: &mut impl Rng64) {
        let m = self.cells.len() as u64;
        let mut best = rng.bounded(m) as usize;
        let mut best_v = self.cells[best].load(Ordering::Relaxed);
        for _ in 1..self.d {
            let k = rng.bounded(m) as usize;
            let v = self.cells[k].load(Ordering::Relaxed);
            if v < best_v {
                best = k;
                best_v = v;
            }
        }
        self.cells[best].fetch_add(1, Ordering::Relaxed);
    }

    /// One relaxed read with an explicit generator.
    #[inline]
    pub fn read_with(&self, rng: &mut impl Rng64) -> u64 {
        let m = self.cells.len() as u64;
        let i = rng.bounded(m) as usize;
        self.cells[i].load(Ordering::Relaxed).saturating_mul(m)
    }

    /// Max minus min over cells.
    pub fn max_gap(&self) -> u64 {
        let mut min = u64::MAX;
        let mut max = 0u64;
        for c in self.cells.iter() {
            let v = c.load(Ordering::Relaxed);
            min = min.min(v);
            max = max.max(v);
        }
        max.saturating_sub(min)
    }

    /// Snapshot of every cell.
    pub fn cell_values(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

impl RelaxedCounter for DChoiceCounter {
    fn increment(&self) {
        with_thread_rng(|rng| self.increment_with(rng));
    }

    fn read(&self) -> u64 {
        with_thread_rng(|rng| self.read_with(rng))
    }

    fn read_exact(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn conservation_holds_for_all_d() {
        for d in 1..=4 {
            let c = DChoiceCounter::new(16, d, 1);
            let mut rng = Xoshiro256::new(d as u64);
            for _ in 0..5_000 {
                c.increment_with(&mut rng);
            }
            assert_eq!(c.read_exact(), 5_000, "d={d}");
        }
    }

    #[test]
    fn single_choice_is_visibly_worse_than_two_choice() {
        // The core phenomenon of the whole literature: with m=64 and
        // 200k balls, one-choice gap is Θ(√(t/m · log m)) ≈ 100+,
        // two-choice stays ~log log m. Compare with a huge margin.
        let m = 64;
        let t = 200_000u64;
        let one = DChoiceCounter::new(m, 1, 2);
        let two = DChoiceCounter::new(m, 2, 2);
        let mut rng1 = Xoshiro256::new(10);
        let mut rng2 = Xoshiro256::new(10);
        for _ in 0..t {
            one.increment_with(&mut rng1);
            two.increment_with(&mut rng2);
        }
        assert!(
            one.max_gap() >= 4 * two.max_gap(),
            "one-choice gap {} not >> two-choice gap {}",
            one.max_gap(),
            two.max_gap()
        );
        assert!(two.max_gap() <= 20, "two-choice gap {}", two.max_gap());
    }

    #[test]
    fn more_choices_never_hurt_much() {
        let m = 64;
        let four = DChoiceCounter::new(m, 4, 3);
        let mut rng = Xoshiro256::new(11);
        for _ in 0..100_000 {
            four.increment_with(&mut rng);
        }
        assert!(four.max_gap() <= 16, "4-choice gap {}", four.max_gap());
    }

    #[test]
    #[should_panic(expected = "at least one choice")]
    fn zero_choices_rejected() {
        let _ = DChoiceCounter::new(8, 0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        let _ = DChoiceCounter::new(0, 2, 0);
    }

    #[test]
    fn accessors() {
        let c = DChoiceCounter::new(8, 3, 0);
        assert_eq!(c.num_counters(), 8);
        assert_eq!(c.choices(), 3);
        assert_eq!(c.cell_values().len(), 8);
        assert_eq!(c.max_gap(), 0);
    }
}
