//! Relaxed concurrent counters (Section 4 of the paper).
//!
//! * [`MultiCounter`] — Algorithm 1: `m` cache-padded atomic counters;
//!   increments go to the smaller of two randomly chosen cells (as seen
//!   by possibly-stale reads); reads sample one random cell and scale by
//!   `m`.
//! * [`DChoiceCounter`] — the d-choice generalization used in ablations
//!   (`d = 1` is the divergent single-choice process, `d = 2` recovers
//!   Algorithm 1, larger `d` trades read traffic for tighter balance).
//! * [`ExactCounter`] — a single fetch-and-add word: the linearizable
//!   baseline whose scalability collapse motivates the whole paper.
//!
//! All three implement [`RelaxedCounter`], so benchmarks and tests are
//! generic over the counter kind.

mod dchoice;
mod exact;
mod multi;
mod sharded;

pub use dchoice::DChoiceCounter;
pub use exact::ExactCounter;
pub use multi::{IncrementTrace, MultiCounter, MultiCounterBuilder, PendingIncrement};
pub use sharded::ShardedCounter;

/// Common interface of all counters in this module.
///
/// The convenience methods draw randomness from the per-thread generator
/// (see [`crate::rng::with_thread_rng`]); deterministic variants taking
/// an explicit RNG exist on the concrete types.
pub trait RelaxedCounter: Send + Sync {
    /// Adds one to the (logical) counter.
    fn increment(&self);

    /// Returns an estimate of the number of increments so far.
    ///
    /// For [`ExactCounter`] this is exact; for the relaxed counters the
    /// paper bounds the error by `O(m log m)` in expectation and w.h.p.
    /// (Theorem 6.1).
    fn read(&self) -> u64;

    /// Returns the exact number of increments completed at some point
    /// during the call (sums all cells; not linearizable with concurrent
    /// increments, exact when quiescent). Intended for tests and quality
    /// measurements, not for the hot path.
    fn read_exact(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(c: &dyn RelaxedCounter) {
        for _ in 0..100 {
            c.increment();
        }
        assert_eq!(c.read_exact(), 100);
    }

    #[test]
    fn trait_object_safety_and_uniform_behaviour() {
        exercise(&ExactCounter::new());
        exercise(&MultiCounter::builder().counters(8).build());
        exercise(&DChoiceCounter::new(8, 3, 7));
    }
}
