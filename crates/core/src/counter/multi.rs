//! The MultiCounter — Algorithm 1 of the paper, verbatim.
//!
//! ```text
//! function Read()
//!     i <- random(1, m)
//!     return m * Counters[i].read()
//!
//! function Increment()
//!     i <- random(1, m); j <- random(1, m)
//!     vi <- Counters[i].read(); vj <- Counters[j].read()
//!     Counters[argmin(vi, vj)].increment()
//! ```
//!
//! In a concurrent execution the two reads and the increment are three
//! separate atomic steps: the values may be stale by the time the
//! `fetch_add` lands, which is exactly the relaxation Section 6 of the
//! paper analyzes. Nothing in this implementation re-synchronizes them —
//! doing so (e.g. with a lock) would destroy both the scalability and
//! the model.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::counter::RelaxedCounter;
use crate::padded::Padded;
use crate::rng::{with_thread_rng, Rng64};

/// Relaxed approximate counter over `m` distributed atomic cells.
///
/// Construct via [`MultiCounter::builder`]. See the module-level docs
/// for the algorithm and the crate docs for the guarantees.
///
/// # Example
/// ```
/// use dlz_core::{MultiCounter, RelaxedCounter};
/// use dlz_core::rng::Xoshiro256;
///
/// let c = MultiCounter::builder().counters(16).build();
/// let mut rng = Xoshiro256::new(1);
/// for _ in 0..1000 {
///     c.increment_with(&mut rng);
/// }
/// assert_eq!(c.read_exact(), 1000);
/// assert!(c.max_gap() <= 16); // two-choice keeps cells tightly balanced
/// ```
#[derive(Debug)]
pub struct MultiCounter {
    cells: Box<[Padded<AtomicU64>]>,
}

impl MultiCounter {
    /// Starts building a MultiCounter.
    pub fn builder() -> MultiCounterBuilder {
        MultiCounterBuilder::default()
    }

    /// Creates a counter with `m` cells directly (all zero).
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "MultiCounter needs at least one cell");
        MultiCounter {
            cells: (0..m).map(|_| Padded::new(AtomicU64::new(0))).collect(),
        }
    }

    /// Number of distributed cells (the paper's `m`).
    #[inline]
    pub fn num_counters(&self) -> usize {
        self.cells.len()
    }

    /// One two-choice increment using the supplied generator.
    #[inline]
    pub fn increment_with(&self, rng: &mut impl Rng64) {
        let m = self.cells.len() as u64;
        let i = rng.bounded(m) as usize;
        let j = rng.bounded(m) as usize;
        // The paper's two sequential reads. Relaxed suffices: each cell
        // is an independent monotone word and the algorithm is defined
        // on (possibly stale) per-cell values — there is no cross-cell
        // invariant for stronger orderings to protect.
        let vi = self.cells[i].load(Ordering::Relaxed);
        let vj = self.cells[j].load(Ordering::Relaxed);
        // Tie broken toward `i` (the paper allows arbitrary tie-breaks).
        let target = if vi <= vj { i } else { j };
        self.cells[target].fetch_add(1, Ordering::Relaxed);
    }

    /// Like [`increment_with`](Self::increment_with) but reports the
    /// choices made — used by the distributional-linearizability checker
    /// and by tests that pin down the algorithm's exact behaviour.
    pub fn increment_traced(&self, rng: &mut impl Rng64) -> IncrementTrace {
        let m = self.cells.len() as u64;
        let i = rng.bounded(m) as usize;
        let j = rng.bounded(m) as usize;
        let vi = self.cells[i].load(Ordering::Relaxed);
        let vj = self.cells[j].load(Ordering::Relaxed);
        let chosen = if vi <= vj { i } else { j };
        let value_after = self.cells[chosen].fetch_add(1, Ordering::Relaxed) + 1;
        IncrementTrace {
            i,
            j,
            vi,
            vj,
            chosen,
            value_after,
        }
    }

    /// A weighted two-choice increment: adds `weight` to the cell that
    /// looked smaller. This is the weighted process of Theorem 7.1
    /// (there with Exp(1) weights); practically it turns the structure
    /// into a relaxed *metric* counter (bytes, latencies, ...) whose
    /// sampled reads stay within `O(w_max · m log m)` of the true total
    /// for bounded weights.
    #[inline]
    pub fn add_with(&self, rng: &mut impl Rng64, weight: u64) {
        let m = self.cells.len() as u64;
        let i = rng.bounded(m) as usize;
        let j = rng.bounded(m) as usize;
        let vi = self.cells[i].load(Ordering::Relaxed);
        let vj = self.cells[j].load(Ordering::Relaxed);
        let target = if vi <= vj { i } else { j };
        self.cells[target].fetch_add(weight, Ordering::Relaxed);
    }

    /// Convenience weighted add using the thread-local generator.
    pub fn add(&self, weight: u64) {
        with_thread_rng(|rng| self.add_with(rng, weight));
    }

    /// Splits an increment into its *read phase* (this call: draws the
    /// two indices and reads both cells) and its *update phase*
    /// ([`PendingIncrement::commit`]). Between the two calls, arbitrary
    /// other operations may run — this is exactly the adversary's power
    /// in the paper's model (Section 6.1), so tests can build worst-case
    /// interleavings like the batch stampede deterministically against
    /// the real structure.
    pub fn begin_increment(&self, rng: &mut impl Rng64) -> PendingIncrement {
        let m = self.cells.len() as u64;
        let i = rng.bounded(m) as usize;
        let j = rng.bounded(m) as usize;
        let vi = self.cells[i].load(Ordering::Relaxed);
        let vj = self.cells[j].load(Ordering::Relaxed);
        PendingIncrement { i, j, vi, vj }
    }

    /// One relaxed read using the supplied generator:
    /// `m * Counters[random i]`.
    #[inline]
    pub fn read_with(&self, rng: &mut impl Rng64) -> u64 {
        let m = self.cells.len() as u64;
        let i = rng.bounded(m) as usize;
        self.cells[i].load(Ordering::Relaxed).saturating_mul(m)
    }

    /// Snapshot of every cell (diagnostics; racy under concurrency).
    pub fn cell_values(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Value of a single cell.
    pub fn cell(&self, i: usize) -> u64 {
        self.cells[i].load(Ordering::Relaxed)
    }

    /// Max minus min over all cells — the "gap" the paper's Theorem 6.1
    /// bounds by `O(log m)`.
    pub fn max_gap(&self) -> u64 {
        let mut min = u64::MAX;
        let mut max = 0u64;
        for c in self.cells.iter() {
            let v = c.load(Ordering::Relaxed);
            min = min.min(v);
            max = max.max(v);
        }
        max.saturating_sub(min)
    }

    /// Maximum deviation of `m * cell` from the true total — the read
    /// error bound of Lemma 6.8 (`O(m log m)` w.h.p.).
    pub fn max_read_error(&self) -> u64 {
        let values = self.cell_values();
        let total: u64 = values.iter().sum();
        let m = values.len() as u64;
        values
            .iter()
            .map(|&v| (v.saturating_mul(m)).abs_diff(total))
            .max()
            .unwrap_or(0)
    }
}

impl RelaxedCounter for MultiCounter {
    fn increment(&self) {
        with_thread_rng(|rng| self.increment_with(rng));
    }

    fn read(&self) -> u64 {
        with_thread_rng(|rng| self.read_with(rng))
    }

    fn read_exact(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// The read phase of a split increment: stale values captured at
/// [`MultiCounter::begin_increment`] time, waiting for their update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingIncrement {
    /// First sampled index.
    pub i: usize,
    /// Second sampled index.
    pub j: usize,
    /// Value of cell `i` at read time (possibly stale by commit time).
    pub vi: u64,
    /// Value of cell `j` at read time (possibly stale by commit time).
    pub vj: u64,
}

impl PendingIncrement {
    /// The update phase: increments the cell that *looked* smaller at
    /// read time, exactly as Algorithm 1 does when the scheduler delays
    /// a thread between its reads and its write. Returns the chosen
    /// index and whether the choice was "wrong" at commit time (the
    /// chosen cell had strictly larger value than the alternative — the
    /// corrupted-step event of the analysis).
    pub fn commit(self, counter: &MultiCounter) -> (usize, bool) {
        let chosen = if self.vi <= self.vj { self.i } else { self.j };
        let other = if chosen == self.i { self.j } else { self.i };
        let wrong = counter.cell(chosen) > counter.cell(other);
        counter.cells[chosen].fetch_add(1, Ordering::Relaxed);
        (chosen, wrong)
    }
}

/// Everything one two-choice increment did (for checkers and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementTrace {
    /// First sampled index.
    pub i: usize,
    /// Second sampled index.
    pub j: usize,
    /// Value read from cell `i`.
    pub vi: u64,
    /// Value read from cell `j`.
    pub vj: u64,
    /// Index actually incremented.
    pub chosen: usize,
    /// Cell value immediately after the increment.
    pub value_after: u64,
}

/// Builder for [`MultiCounter`].
///
/// Either set the cell count directly with [`counters`], or derive it
/// from a thread count and the paper's ratio `C = m / n` with
/// [`ratio`] + [`threads`]. The analysis requires `m ≥ Cn` for a large
/// constant `C`; in practice small constants already balance well
/// (the paper's own experiments use `C ∈ [1, 8]`).
///
/// [`counters`]: MultiCounterBuilder::counters
/// [`ratio`]: MultiCounterBuilder::ratio
/// [`threads`]: MultiCounterBuilder::threads
#[derive(Debug, Clone, Default)]
pub struct MultiCounterBuilder {
    counters: Option<usize>,
    ratio: Option<usize>,
    threads: Option<usize>,
    seed: Option<u64>,
}

impl MultiCounterBuilder {
    /// Sets the number of cells `m` explicitly.
    pub fn counters(mut self, m: usize) -> Self {
        self.counters = Some(m);
        self
    }

    /// Sets the ratio `C = m / n`; combine with [`threads`](Self::threads).
    pub fn ratio(mut self, c: usize) -> Self {
        self.ratio = Some(c);
        self
    }

    /// Sets the thread count `n` used with [`ratio`](Self::ratio).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Reseeds the *calling thread's* generator, so that subsequent
    /// convenience-API calls from this thread are deterministic. Threads
    /// spawned later are unaffected (they get their own seeds); use the
    /// `*_with` APIs for full determinism across threads.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Builds the counter.
    ///
    /// # Panics
    /// If neither `counters` nor (`ratio` and `threads`) was given, or if
    /// the resulting cell count is zero.
    pub fn build(self) -> MultiCounter {
        let m = match (self.counters, self.ratio, self.threads) {
            (Some(m), _, _) => m,
            (None, Some(c), Some(n)) => c * n,
            _ => panic!("MultiCounterBuilder: set .counters(m) or .ratio(c).threads(n)"),
        };
        if let Some(seed) = self.seed {
            crate::rng::reseed_thread_rng(seed);
        }
        MultiCounter::new(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;
    use std::sync::Arc;

    #[test]
    fn conservation_single_thread() {
        let c = MultiCounter::new(32);
        let mut rng = Xoshiro256::new(7);
        for _ in 0..10_000 {
            c.increment_with(&mut rng);
        }
        assert_eq!(c.read_exact(), 10_000);
        assert_eq!(c.cell_values().iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn single_cell_degenerates_to_exact() {
        let c = MultiCounter::new(1);
        let mut rng = Xoshiro256::new(1);
        for _ in 0..500 {
            c.increment_with(&mut rng);
        }
        assert_eq!(c.read_with(&mut rng), 500);
        assert_eq!(c.max_gap(), 0);
    }

    #[test]
    fn two_choice_balances_tightly() {
        // Sequential two-choice: gap should be O(log m) — use a generous
        // constant. With m=64 and 100k balls, gap > 20 would be
        // astronomically unlikely (theory: ~log2 log2 m + O(1) above avg).
        let c = MultiCounter::new(64);
        let mut rng = Xoshiro256::new(42);
        for _ in 0..100_000 {
            c.increment_with(&mut rng);
        }
        assert_eq!(c.read_exact(), 100_000);
        assert!(c.max_gap() <= 20, "gap {} too large", c.max_gap());
    }

    #[test]
    fn read_error_bounded_by_m_log_m() {
        let m = 64u64;
        let c = MultiCounter::new(m as usize);
        let mut rng = Xoshiro256::new(3);
        for _ in 0..50_000 {
            c.increment_with(&mut rng);
        }
        // Lemma 6.8: |m*x_i - total| = O(m log m). Generous constant 4.
        let bound = 4 * m * (m as f64).ln() as u64;
        assert!(
            c.max_read_error() <= bound,
            "error {} exceeds bound {}",
            c.max_read_error(),
            bound
        );
    }

    #[test]
    fn traced_increment_is_faithful() {
        let c = MultiCounter::new(8);
        let mut rng = Xoshiro256::new(5);
        // Replaying the same RNG stream must give identical choices.
        let mut shadow = Xoshiro256::new(5);
        for _ in 0..1000 {
            let before = c.cell_values();
            let t = c.increment_traced(&mut rng);
            let i = shadow.bounded(8) as usize;
            let j = shadow.bounded(8) as usize;
            assert_eq!((t.i, t.j), (i, j));
            assert_eq!(t.vi, before[i]);
            assert_eq!(t.vj, before[j]);
            let expect = if t.vi <= t.vj { t.i } else { t.j };
            assert_eq!(t.chosen, expect);
            assert_eq!(c.cell(t.chosen), before[t.chosen] + 1);
            assert_eq!(t.value_after, before[t.chosen] + 1);
        }
    }

    #[test]
    fn read_scales_by_m() {
        let c = MultiCounter::new(4);
        // Force a known state: bump each cell by hand through traces.
        let mut rng = Xoshiro256::new(9);
        for _ in 0..400 {
            c.increment_with(&mut rng);
        }
        // Every cell is close to 100, so every read is close to 400.
        for _ in 0..50 {
            let r = c.read_with(&mut rng);
            assert!(r.is_multiple_of(4));
            assert!((300..=500).contains(&r), "read {r}");
        }
    }

    #[test]
    fn builder_forms() {
        assert_eq!(
            MultiCounter::builder().counters(10).build().num_counters(),
            10
        );
        assert_eq!(
            MultiCounter::builder()
                .ratio(4)
                .threads(3)
                .build()
                .num_counters(),
            12
        );
    }

    #[test]
    #[should_panic(expected = "MultiCounterBuilder")]
    fn builder_requires_configuration() {
        let _ = MultiCounter::builder().build();
    }

    #[test]
    fn concurrent_increments_conserve_total() {
        const THREADS: usize = 4;
        const PER: u64 = 25_000;
        let c = Arc::new(MultiCounter::new(64));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let mut rng = Xoshiro256::new(1000 + t as u64);
                    for _ in 0..PER {
                        c.increment_with(&mut rng);
                    }
                });
            }
        });
        // Increments are atomic fetch_adds: none can be lost.
        assert_eq!(c.read_exact(), THREADS as u64 * PER);
    }

    #[test]
    fn concurrent_gap_stays_bounded() {
        // The paper's Theorem 6.1 (with m >= C n). 2 threads, m = 64:
        // gap should stay O(log m); allow a generous constant.
        const THREADS: usize = 2;
        const PER: u64 = 100_000;
        let c = Arc::new(MultiCounter::new(64));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let mut rng = Xoshiro256::new(2000 + t as u64);
                    for _ in 0..PER {
                        c.increment_with(&mut rng);
                    }
                });
            }
        });
        assert!(c.max_gap() <= 40, "gap {}", c.max_gap());
    }

    #[test]
    fn weighted_adds_conserve_and_balance() {
        let m = 32;
        let c = MultiCounter::new(m);
        let mut rng = Xoshiro256::new(17);
        let mut total = 0u64;
        // Weights in 1..=16 (bounded): gap should stay O(w_max * log m).
        for _ in 0..100_000 {
            let w = 1 + rng.bounded(16);
            c.add_with(&mut rng, w);
            total += w;
        }
        assert_eq!(c.read_exact(), total);
        let bound = 16.0 * 4.0 * (m as f64).ln();
        assert!(
            (c.max_gap() as f64) <= bound,
            "weighted gap {} exceeds {bound}",
            c.max_gap()
        );
    }

    #[test]
    fn add_with_weight_one_equals_increment() {
        let a = MultiCounter::new(8);
        let b = MultiCounter::new(8);
        let mut ra = Xoshiro256::new(23);
        let mut rb = Xoshiro256::new(23);
        for _ in 0..5_000 {
            a.increment_with(&mut ra);
            b.add_with(&mut rb, 1);
        }
        assert_eq!(a.cell_values(), b.cell_values());
    }

    #[test]
    fn concurrent_weighted_adds_conserve() {
        let c = std::sync::Arc::new(MultiCounter::new(16));
        let total: u64 = std::thread::scope(|s| {
            let hs: Vec<_> = (0..4u64)
                .map(|t| {
                    let c = std::sync::Arc::clone(&c);
                    s.spawn(move || {
                        let mut rng = Xoshiro256::new(31 + t);
                        let mut sum = 0u64;
                        for _ in 0..20_000 {
                            let w = 1 + rng.bounded(8);
                            c.add_with(&mut rng, w);
                            sum += w;
                        }
                        sum
                    })
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(c.read_exact(), total);
    }

    #[test]
    fn phased_increment_equals_plain_when_uninterleaved() {
        let a = MultiCounter::new(8);
        let b = MultiCounter::new(8);
        let mut rng_a = Xoshiro256::new(21);
        let mut rng_b = Xoshiro256::new(21);
        for _ in 0..2_000 {
            a.increment_with(&mut rng_a);
            let p = b.begin_increment(&mut rng_b);
            let (_, wrong) = p.commit(&b);
            assert!(!wrong, "no interleaving, no wrong choices");
        }
        assert_eq!(a.cell_values(), b.cell_values());
    }

    #[test]
    fn stampede_interleaving_biases_toward_wrong_bins() {
        // The Section 6.1 worked example, on the real structure: all n
        // "threads" read together, then commit one after another. Late
        // committers act on stale values; some must pick the bin that
        // is by then the more loaded one.
        let m = 16;
        let n = 16; // deliberately m = n: maximal staleness pressure
        let c = MultiCounter::new(m);
        let mut rng = Xoshiro256::new(33);
        let mut wrong_total = 0u64;
        for _batch in 0..2_000 {
            let pending: Vec<PendingIncrement> =
                (0..n).map(|_| c.begin_increment(&mut rng)).collect();
            for p in pending {
                let (_, wrong) = p.commit(&c);
                wrong_total += u64::from(wrong);
            }
        }
        assert!(
            wrong_total > 0,
            "stampedes must produce some stale (wrong) updates"
        );
        // Yet conservation and (coarse) balance survive — the theorem's
        // robustness claim in miniature.
        assert_eq!(c.read_exact(), 2_000 * n as u64);
        assert!(
            c.max_gap() <= 8 * (m as f64).ln() as u64 + 8,
            "gap {}",
            c.max_gap()
        );
    }

    #[test]
    fn convenience_api_uses_thread_rng() {
        crate::rng::reseed_thread_rng(77);
        let c = MultiCounter::new(16);
        for _ in 0..100 {
            c.increment();
        }
        assert_eq!(c.read_exact(), 100);
        let _ = c.read();
    }
}
