//! The exact, linearizable counter baseline.
//!
//! A single fetch-and-add word. Correct and simple — and the scalability
//! bottleneck the paper starts from: every increment contends on one
//! cache line, so throughput *decreases* as threads are added (Fig. 1a's
//! implicit baseline, and TL2's global-clock problem in Section 8).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::counter::RelaxedCounter;
use crate::padded::Padded;

/// A linearizable counter: one padded `AtomicU64`.
///
/// # Example
/// ```
/// use dlz_core::{ExactCounter, RelaxedCounter};
/// let c = ExactCounter::new();
/// c.increment();
/// c.increment();
/// assert_eq!(c.read(), 2);
/// assert_eq!(c.read_exact(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ExactCounter {
    value: Padded<AtomicU64>,
}

impl ExactCounter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        ExactCounter {
            value: Padded::new(AtomicU64::new(0)),
        }
    }

    /// Creates a counter starting at `v`.
    pub const fn with_value(v: u64) -> Self {
        ExactCounter {
            value: Padded::new(AtomicU64::new(v)),
        }
    }

    /// Atomically adds one and returns the *previous* value (the
    /// hardware fetch-and-increment of the paper's system model).
    #[inline]
    pub fn fetch_increment(&self) -> u64 {
        self.value.fetch_add(1, Ordering::Relaxed)
    }
}

impl RelaxedCounter for ExactCounter {
    #[inline]
    fn increment(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn read(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    #[inline]
    fn read_exact(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequential_counting() {
        let c = ExactCounter::new();
        for i in 0..100 {
            assert_eq!(c.fetch_increment(), i);
        }
        assert_eq!(c.read(), 100);
    }

    #[test]
    fn with_value_starts_there() {
        let c = ExactCounter::with_value(41);
        c.increment();
        assert_eq!(c.read(), 42);
    }

    #[test]
    fn no_lost_updates_under_contention() {
        const THREADS: u64 = 4;
        const PER: u64 = 50_000;
        let c = Arc::new(ExactCounter::new());
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..PER {
                        c.increment();
                    }
                });
            }
        });
        assert_eq!(c.read(), THREADS * PER);
    }

    #[test]
    fn fetch_increment_values_are_unique() {
        const THREADS: usize = 4;
        const PER: usize = 10_000;
        let c = Arc::new(ExactCounter::new());
        let mut all: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let c = Arc::clone(&c);
                    s.spawn(move || (0..PER).map(|_| c.fetch_increment()).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        all.sort_unstable();
        // fetch_add returns every value exactly once: 0..THREADS*PER.
        assert_eq!(all, (0..(THREADS * PER) as u64).collect::<Vec<_>>());
    }
}
