//! Hand-rolled JSON layer shared across the workspace (the build is
//! dependency-free, so no serde).
//!
//! Two halves:
//!
//! * **Emission** — [`JsonObject`], [`escape_into`], [`array()`]: the
//!   incremental writers the workload reports and the history artifacts
//!   serialize through (this used to live in `dlz-workload::json`; it
//!   moved here so `dlz-core` artifacts can emit without a dependency
//!   inversion).
//! * **Parsing** — [`parse`] into [`JsonValue`]: a small strict parser
//!   for consuming what the emitters wrote (history artifacts, grid
//!   JSON). Unsigned-integer literals are kept exact as
//!   [`JsonValue::U64`], so `u64` stamps and priorities round-trip
//!   losslessly instead of dying in an `f64`.
//!
//! Errors carry the byte offset of the failure ([`JsonError`]); callers
//! that parse line-oriented formats wrap them with line numbers.

use std::fmt;

// ---------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental JSON object writer.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        escape_into(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        escape_into(&mut self.buf, v);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (`null` when not finite — bare NaN/inf are
    /// invalid JSON).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a `null` field.
    pub fn null(&mut self, k: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str("null");
        self
    }

    /// Adds a nested object built by `f`.
    pub fn obj(&mut self, k: &str, f: impl FnOnce(&mut JsonObject)) -> &mut Self {
        self.key(k);
        let mut inner = JsonObject::new();
        f(&mut inner);
        self.buf.push_str(&inner.finish());
        self
    }

    /// Adds pre-rendered JSON verbatim.
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Renders a list of pre-rendered JSON values as an array.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// A parsed JSON value.
///
/// Nonnegative integer literals that fit a `u64` are kept exact as
/// [`JsonValue::U64`]; every other number (fractions, exponents,
/// negatives, overflow) becomes [`JsonValue::F64`]. Object fields keep
/// their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A nonnegative integer literal, kept lossless.
    U64(u64),
    /// Any other numeric literal.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, fields in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up an object field by key (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64` (integer literals only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integer literals convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::U64(v) => Some(*v as f64),
            JsonValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// A parse failure: where (byte offset into the input) and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the parsed text.
    pub offset: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth bound: deeper documents are rejected rather than
/// risking a parser stack overflow (an abort, not an `Err`).
const MAX_DEPTH: usize = 128;

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing data is an error).
pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if *c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected '{}'", *c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        let mut integral = true;
        if self.bytes.get(self.pos) == Some(&b'-') {
            integral = false;
            self.pos += 1;
        }
        while let Some(c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
        }
        text.parse::<f64>().map(JsonValue::F64).map_err(|_| {
            self.pos = start;
            self.err(format!("bad number '{text}'"))
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| self.err(format!("bad \\u escape '{hex}'")))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        other => return Err(self.err(format!("bad escape '\\{}'", other as char))),
                    }
                }
                Some(&c) if c < 0x20 => return Err(self.err("unescaped control character")),
                Some(_) => {
                    // Copy one UTF-8 scalar verbatim (input is a &str,
                    // so the byte run is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_rendering() {
        let mut o = JsonObject::new();
        o.str("name", "a\"b\\c\nd")
            .u64("n", 42)
            .f64("x", 1.5)
            .f64("bad", f64::NAN)
            .bool("ok", true)
            .null("nothing")
            .obj("nested", |i| {
                i.u64("k", 1);
            });
        let s = o.finish();
        assert_eq!(
            s,
            r#"{"name":"a\"b\\c\nd","n":42,"x":1.5,"bad":null,"ok":true,"nothing":null,"nested":{"k":1}}"#
        );
    }

    #[test]
    fn array_rendering() {
        assert_eq!(array(&["1".into(), "{}".into()]), "[1,{}]");
        assert_eq!(array(&[]), "[]");
    }

    #[test]
    fn control_chars_escaped() {
        let mut out = String::new();
        escape_into(&mut out, "\u{1}");
        assert_eq!(out, "\"\\u0001\"");
    }

    #[test]
    fn parses_scalars_arrays_objects() {
        let v = parse(r#"{"a":[1,true,null,"x\n"],"b":{"c":-2.5e3}}"#).expect("parse");
        let a = v.get("a").expect("a").as_array().expect("array");
        assert_eq!(a[0], JsonValue::U64(1));
        assert_eq!(a[1], JsonValue::Bool(true));
        assert!(a[2].is_null());
        assert_eq!(a[3].as_str(), Some("x\n"));
        let c = v.get("b").and_then(|b| b.get("c")).expect("b.c");
        assert_eq!(c.as_f64(), Some(-2500.0));
        assert_eq!(c.as_u64(), None, "negative numbers are not u64");
    }

    #[test]
    fn u64_literals_are_lossless() {
        let big = u64::MAX;
        let v = parse(&format!("[{big}]")).expect("parse");
        assert_eq!(v.as_array().unwrap()[0].as_u64(), Some(big));
        // 2^53+1 is where f64 starts dropping integers.
        let v = parse("9007199254740993").expect("parse");
        assert_eq!(v.as_u64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn emit_parse_round_trip() {
        let mut o = JsonObject::new();
        o.str("s", "tab\there \"q\" \\ done")
            .u64("u", u64::MAX)
            .f64("f", 0.125)
            .bool("b", false)
            .null("n")
            .obj("o", |i| {
                i.u64("k", 7);
            })
            .raw("a", "[1,2]");
        let text = o.finish();
        let v = parse(&text).expect("parse what we emit");
        assert_eq!(
            v.get("s").unwrap().as_str(),
            Some("tab\there \"q\" \\ done")
        );
        assert_eq!(v.get("u").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(0.125));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert!(v.get("n").unwrap().is_null());
        assert_eq!(v.get("o").unwrap().get("k").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        let v = parse(r#""\u0041\u00e9\ud83d\ude00""#).expect("parse");
        assert_eq!(v.as_str(), Some("Aé😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn malformed_inputs_error_with_offsets() {
        for bad in [
            "[1,",
            "{\"a\":}",
            "{",
            "\"unterminated",
            "tru",
            "01x",
            "[1 2]",
            "nullx",
            "\u{1}",
        ] {
            let e = parse(bad).expect_err(bad);
            assert!(e.offset <= bad.len(), "{bad}: {e:?}");
        }
        // Deep nesting is an error, not a stack overflow.
        let deep = "[".repeat(4096);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn whitespace_is_tolerated_trailing_data_is_not() {
        assert_eq!(
            parse(" { \"a\" : 1 } \n").expect("ws").get("a").unwrap(),
            &JsonValue::U64(1)
        );
        assert!(parse("{} {}").is_err());
    }
}
