//! An exact linearizability checker (Wing & Gong style).
//!
//! Distributional linearizability (Definition 5.2) exists because the
//! relaxed structures are **not** linearizable with respect to their
//! exact sequential specifications. This module makes that contrast
//! testable: a small-history decision procedure for classical
//! linearizability [Herlihy & Wing 1990], via the Wing–Gong
//! backtracking search — try every operation whose invocation precedes
//! the earliest response among the not-yet-linearized operations, and
//! recurse on states the specification accepts.
//!
//! Exponential in the worst case, as the problem demands (it is
//! NP-complete); intended for histories of up to a few dozen
//! operations, which is plenty to exhibit non-linearizability of a
//! relaxed structure and to sanity-check exact ones.

use crate::spec::history::History;
use crate::spec::lts::SequentialSpec;

/// Outcome of an exact linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Linearizability {
    /// A witness order exists: indices into `history.events` in
    /// linearization order.
    Linearizable(Vec<usize>),
    /// No legal linearization order exists.
    NotLinearizable,
}

impl Linearizability {
    /// `true` for the positive outcome.
    pub fn is_linearizable(&self) -> bool {
        matches!(self, Linearizability::Linearizable(_))
    }
}

/// Decides whether `history` is linearizable with respect to the exact
/// specification `spec`, using invoke/response stamps for the
/// real-time order (update stamps are ignored — that is the point:
/// linearizability quantifies over *all* orders inside the intervals).
///
/// Worst-case exponential; keep histories small (≲ 30 operations).
pub fn check_linearizable<S>(spec: &S, history: &History<S::Label>) -> Linearizability
where
    S: SequentialSpec,
    S::State: Clone,
{
    let n = history.events.len();
    let mut used = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let state = spec.initial();
    if search(spec, history, &mut used, &mut order, state) {
        Linearizability::Linearizable(order)
    } else {
        Linearizability::NotLinearizable
    }
}

fn search<S>(
    spec: &S,
    history: &History<S::Label>,
    used: &mut [bool],
    order: &mut Vec<usize>,
    state: S::State,
) -> bool
where
    S: SequentialSpec,
    S::State: Clone,
{
    let n = history.events.len();
    if order.len() == n {
        return true;
    }
    // Real-time constraint: an operation may be linearized next only if
    // no *unlinearized* operation responded before it was invoked.
    let min_resp = history
        .events
        .iter()
        .enumerate()
        .filter(|(i, _)| !used[*i])
        .map(|(_, e)| e.response)
        .min()
        .expect("some unused event remains");
    for i in 0..n {
        if used[i] || history.events[i].invoke > min_resp {
            continue;
        }
        if let Some(next) = spec.step(&state, &history.events[i].label) {
            used[i] = true;
            order.push(i);
            if search(spec, history, used, order, next) {
                return true;
            }
            order.pop();
            used[i] = false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::history::Event;
    use crate::spec::specs::{CounterOp, CounterSpec, PqOp, PqSpec};

    fn ev<L>(label: L, invoke: u64, response: u64) -> Event<L> {
        Event {
            thread: 0,
            label,
            invoke,
            update: invoke, // unused by the exact checker
            response,
        }
    }

    #[test]
    fn sequential_exact_history_is_linearizable() {
        let h = History {
            events: vec![
                ev(CounterOp::Inc, 0, 1),
                ev(CounterOp::Read { returned: 1 }, 2, 3),
                ev(CounterOp::Inc, 4, 5),
                ev(CounterOp::Read { returned: 2 }, 6, 7),
            ],
        };
        let out = check_linearizable(&CounterSpec, &h);
        assert_eq!(out, Linearizability::Linearizable(vec![0, 1, 2, 3]));
    }

    #[test]
    fn overlap_allows_reordering() {
        // Read overlapping an Inc may return either 0 or 1.
        for returned in [0u64, 1] {
            let h = History {
                events: vec![
                    ev(CounterOp::Inc, 0, 10),
                    ev(CounterOp::Read { returned }, 1, 9),
                ],
            };
            assert!(
                check_linearizable(&CounterSpec, &h).is_linearizable(),
                "returned {returned} should be legal under overlap"
            );
        }
    }

    #[test]
    fn stale_read_after_response_is_not_linearizable() {
        // Inc completes (response 1) strictly before the read begins
        // (invoke 2), so the read MUST see 1; returning 0 is a
        // linearizability violation — exactly the kind of output a
        // relaxed counter can produce.
        let h = History {
            events: vec![
                ev(CounterOp::Inc, 0, 1),
                ev(CounterOp::Read { returned: 0 }, 2, 3),
            ],
        };
        assert_eq!(
            check_linearizable(&CounterSpec, &h),
            Linearizability::NotLinearizable
        );
    }

    #[test]
    fn pq_out_of_order_delete_not_linearizable() {
        // Both inserts completed before the deletes started, so a
        // delete-min returning the larger element first cannot be
        // linearized — the MultiQueue's signature behaviour.
        let h = History {
            events: vec![
                ev(PqOp::Insert { priority: 1 }, 0, 1),
                ev(PqOp::Insert { priority: 2 }, 2, 3),
                ev(PqOp::DeleteMin { removed: 2 }, 4, 5),
                ev(PqOp::DeleteMin { removed: 1 }, 6, 7),
            ],
        };
        assert_eq!(
            check_linearizable(&PqSpec, &h),
            Linearizability::NotLinearizable
        );
        // ... but the same history IS distributionally linearizable to
        // the relaxed PQ process, with a rank-1 cost on the first
        // delete — the paper's Definition 5.2 in one test.
        let out = crate::spec::checker::check_distributional(&PqSpec, &h);
        assert!(out.is_linearizable());
        assert_eq!(out.costs.max(), 1.0);
    }

    #[test]
    fn pq_overlapping_deletes_can_commute() {
        // When the two deletes overlap each other, either order is a
        // valid linearization.
        let h = History {
            events: vec![
                ev(PqOp::Insert { priority: 1 }, 0, 1),
                ev(PqOp::Insert { priority: 2 }, 2, 3),
                ev(PqOp::DeleteMin { removed: 2 }, 4, 10),
                ev(PqOp::DeleteMin { removed: 1 }, 5, 9),
            ],
        };
        assert!(check_linearizable(&PqSpec, &h).is_linearizable());
    }

    #[test]
    fn witness_order_is_reported() {
        let h = History {
            events: vec![
                // Read of 1 overlaps both incs; witness must place
                // exactly one inc before it.
                ev(CounterOp::Inc, 0, 10),
                ev(CounterOp::Inc, 0, 10),
                ev(CounterOp::Read { returned: 1 }, 0, 10),
            ],
        };
        match check_linearizable(&CounterSpec, &h) {
            Linearizability::Linearizable(order) => {
                let read_pos = order.iter().position(|&i| i == 2).unwrap();
                assert_eq!(read_pos, 1, "read must sit between the incs");
            }
            other => panic!("expected linearizable, got {other:?}"),
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h: History<CounterOp> = History::new();
        assert!(check_linearizable(&CounterSpec, &h).is_linearizable());
    }

    #[test]
    fn real_multiqueue_produces_nonlinearizable_histories() {
        // Drive a real MultiQueue single-threadedly (sequential
        // intervals!) until the checker catches an out-of-order
        // dequeue: the structure is demonstrably not linearizable to
        // the exact PQ spec, which is why Definition 5.2 exists.
        use crate::queue::{MultiQueue, TwoChoice};
        use crate::rng::Xoshiro256;
        use crate::spec::history::StampClock;

        let mut found_violation = false;
        'outer: for seed in 0..50u64 {
            let mq: MultiQueue<u64> = MultiQueue::new(4);
            let clock = StampClock::new();
            let mut rng = Xoshiro256::new(seed);
            let mut events = Vec::new();
            for p in 0..6u64 {
                let inv = clock.stamp();
                mq.insert(&mut TwoChoice, &mut rng, p, p);
                let resp = clock.stamp();
                events.push(ev_at(PqOp::Insert { priority: p }, inv, resp));
            }
            for _ in 0..6 {
                let inv = clock.stamp();
                if let Some((p, _)) = mq.dequeue(&mut TwoChoice, &mut rng) {
                    let resp = clock.stamp();
                    events.push(ev_at(PqOp::DeleteMin { removed: p }, inv, resp));
                }
            }
            let h = History { events };
            if !check_linearizable(&PqSpec, &h).is_linearizable() {
                // And yet distributionally linearizable:
                let out = crate::spec::checker::check_distributional(&PqSpec, &h);
                assert!(out.is_linearizable());
                found_violation = true;
                break 'outer;
            }
        }
        assert!(
            found_violation,
            "50 seeds of a 4-queue MultiQueue should exhibit non-linearizability"
        );
    }

    fn ev_at<L>(label: L, invoke: u64, response: u64) -> Event<L> {
        Event {
            thread: 0,
            label,
            invoke,
            update: invoke,
            response,
        }
    }
}
