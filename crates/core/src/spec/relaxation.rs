//! Quantitative relaxations: the completed LTS with transition costs.
//!
//! Steps 1–3 of the paper's construction (Section 5): complete the LTS
//! so every method is enabled in every state, attach a cost that is zero
//! exactly on the legal transitions, and accumulate path costs
//! monotonically. Step 4 (the probability distribution on costs) is
//! *empirical* in this crate: see [`CostDistribution`] and the
//! [`checker`](crate::spec::checker).

use crate::spec::lts::SequentialSpec;

/// A completed, cost-annotated LTS (`LTSc(S)` plus `cost`).
///
/// Laws (checked by the property tests in this module and relied on by
/// the checker):
///
/// * `apply` is total — completion means every label is enabled.
/// * `apply(q, l).1 == 0.0` **iff** the underlying spec allows `q →l`.
/// * Costs are non-negative.
pub trait QuantitativeRelaxation {
    /// Abstract state, as in [`SequentialSpec`].
    type State: Clone;
    /// Method labels, as in [`SequentialSpec`].
    type Label: Clone;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Applies `label` unconditionally, returning the successor state
    /// and the transition cost (0 iff legal in the base specification).
    fn apply(&self, state: &Self::State, label: &Self::Label) -> (Self::State, f64);

    /// In-place variant of [`apply`](Self::apply), used by the checker
    /// on long histories. The default delegates to `apply` (one state
    /// clone per step); implementations with large states (multisets,
    /// queues) should override it with a true in-place update.
    fn apply_mut(&self, state: &mut Self::State, label: &Self::Label) -> f64 {
        let (next, cost) = self.apply(state, label);
        *state = next;
        cost
    }
}

/// How per-step costs combine into a path cost. Both are monotone with
/// respect to prefix order, as the paper requires of `pcost`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathCost {
    /// Total accumulated cost.
    Sum,
    /// Worst single step.
    Max,
}

impl PathCost {
    /// Folds a cost sequence.
    pub fn fold(self, costs: &[f64]) -> f64 {
        match self {
            PathCost::Sum => costs.iter().sum(),
            PathCost::Max => costs.iter().cloned().fold(0.0, f64::max),
        }
    }
}

/// Runs a quantitative path `q1 →(m1,k1) q2 →(m2,k2) ...` and returns
/// the final state plus the quantitative trace's costs `(k1, k2, ...)`.
pub fn quantitative_path<R: QuantitativeRelaxation>(
    rel: &R,
    labels: &[R::Label],
) -> (R::State, Vec<f64>) {
    let mut state = rel.initial();
    let mut costs = Vec::with_capacity(labels.len());
    for l in labels {
        let (next, cost) = rel.apply(&state, l);
        costs.push(cost);
        state = next;
    }
    (state, costs)
}

/// Canonical way to obtain a relaxation from a spec plus a cost rule.
///
/// Wraps a [`SequentialSpec`] `S` together with a *completion function*
/// that says how to transition (and at what cost) when the base spec
/// forbids the move. The blanket cost law "0 iff legal" holds as long as
/// the completion function never returns cost 0.
pub struct Completed<S, F> {
    spec: S,
    complete: F,
}

impl<S, F> Completed<S, F>
where
    S: SequentialSpec,
    F: Fn(&S::State, &S::Label) -> (S::State, f64),
{
    /// Builds a completed LTS from `spec` and the completion rule.
    pub fn new(spec: S, complete: F) -> Self {
        Completed { spec, complete }
    }

    /// The wrapped base specification.
    pub fn spec(&self) -> &S {
        &self.spec
    }
}

impl<S, F> QuantitativeRelaxation for Completed<S, F>
where
    S: SequentialSpec,
    F: Fn(&S::State, &S::Label) -> (S::State, f64),
{
    type State = S::State;
    type Label = S::Label;

    fn initial(&self) -> S::State {
        self.spec.initial()
    }

    fn apply(&self, state: &S::State, label: &S::Label) -> (S::State, f64) {
        match self.spec.step(state, label) {
            Some(next) => (next, 0.0),
            None => (self.complete)(state, label),
        }
    }
}

/// Empirical distribution of per-step costs (step 4 of the paper's
/// construction, measured on a concrete execution).
#[derive(Debug, Clone, Default)]
pub struct CostDistribution {
    samples: Vec<f64>,
}

impl CostDistribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from raw samples.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        CostDistribution { samples }
    }

    /// Records one cost sample.
    pub fn push(&mut self, cost: f64) {
        self.samples.push(cost);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().cloned().fold(0.0, f64::max)
    }

    /// The q-quantile (0 ≤ q ≤ 1) by nearest-rank; 0 if empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("costs are finite"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Fraction of samples strictly above `threshold` — the empirical
    /// tail `P(cost > threshold)` that the paper's w.h.p. bounds cap.
    pub fn tail_mass(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&c| c > threshold).count() as f64 / self.samples.len() as f64
    }

    /// Raw samples (read-only).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &CostDistribution) {
        self.samples.extend_from_slice(&other.samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::lts::SequentialSpec;

    struct Exact;

    #[derive(Clone)]
    enum Op {
        Put(u64),
        Get(u64),
    }

    impl SequentialSpec for Exact {
        type State = Vec<u64>;
        type Label = Op;

        fn initial(&self) -> Vec<u64> {
            Vec::new()
        }

        fn step(&self, s: &Vec<u64>, l: &Op) -> Option<Vec<u64>> {
            match l {
                Op::Put(v) => {
                    let mut s = s.clone();
                    s.push(*v);
                    Some(s)
                }
                Op::Get(v) => {
                    // exact: must return the first element
                    let first = *s.first()?;
                    if first == *v {
                        Some(s[1..].to_vec())
                    } else {
                        None
                    }
                }
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn relaxed() -> Completed<Exact, impl Fn(&Vec<u64>, &Op) -> (Vec<u64>, f64)> {
        Completed::new(Exact, |s: &Vec<u64>, l: &Op| match l {
            Op::Put(_) => unreachable!("puts are always legal"),
            Op::Get(v) => {
                // cost = how deep in the queue the returned element was
                let pos = s.iter().position(|x| x == v);
                match pos {
                    Some(p) => {
                        let mut s = s.clone();
                        s.remove(p);
                        (s, p as f64)
                    }
                    None => (s.clone(), f64::INFINITY),
                }
            }
        })
    }

    #[test]
    fn legal_transitions_cost_zero() {
        let rel = relaxed();
        let (_, costs) = quantitative_path(&rel, &[Op::Put(1), Op::Put(2), Op::Get(1), Op::Get(2)]);
        assert_eq!(costs, vec![0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn illegal_transitions_cost_positive() {
        let rel = relaxed();
        let (_, costs) = quantitative_path(&rel, &[Op::Put(1), Op::Put(2), Op::Get(2)]);
        assert_eq!(costs, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn path_cost_modes() {
        let costs = [0.0, 2.0, 1.0, 3.0];
        assert_eq!(PathCost::Sum.fold(&costs), 6.0);
        assert_eq!(PathCost::Max.fold(&costs), 3.0);
    }

    #[test]
    fn path_cost_is_monotone_in_prefix() {
        let costs = [1.0, 0.5, 2.0, 0.0, 4.0];
        for mode in [PathCost::Sum, PathCost::Max] {
            let mut last = 0.0;
            for k in 0..=costs.len() {
                let c = mode.fold(&costs[..k]);
                assert!(c >= last, "{mode:?} not monotone at {k}");
                last = c;
            }
        }
    }

    #[test]
    fn distribution_summary() {
        let d = CostDistribution::from_samples(vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.len(), 5);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        assert_eq!(d.max(), 4.0);
        assert_eq!(d.quantile(0.5), 2.0);
        assert_eq!(d.quantile(1.0), 4.0);
        assert!((d.tail_mass(2.5) - 0.4).abs() < 1e-12);
        assert_eq!(d.tail_mass(100.0), 0.0);
    }

    #[test]
    fn distribution_edge_cases() {
        let d = CostDistribution::new();
        assert!(d.is_empty());
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.max(), 0.0);
        assert_eq!(d.quantile(0.9), 0.0);
        let mut a = CostDistribution::from_samples(vec![1.0]);
        a.merge(&CostDistribution::from_samples(vec![3.0]));
        assert_eq!(a.len(), 2);
        assert_eq!(a.max(), 3.0);
    }
}
