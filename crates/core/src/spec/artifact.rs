//! Serializable history artifacts — recorded concurrent histories as
//! durable, policy-tagged evidence.
//!
//! The paper's distributional-linearizability claims are statements
//! about *histories*: sequences of stamped operations whose replay
//! costs (dequeue rank, read deviation) must fit the policy's envelope.
//! In-process checking throws the history away after the verdict; a
//! [`HistoryArtifact`] instead gives it a stable serialized form so
//! external monitors (e.g. offline linearizability checkers) can
//! re-derive — or dispute — the verdict long after the run.
//!
//! # Format (`.histjsonl`)
//!
//! Line-oriented JSON, schema version [`SCHEMA_VERSION`]:
//!
//! * **Line 1** — the header object:
//!   `{"schema":1,"kind":"pq","policy":"sticky(s=16)",
//!   "envelope_factor":16,"threads":2,"events":N,...}` plus, when
//!   known, `"queues"` (the MultiQueue's `m`), `"source"` (the backend
//!   label that produced the history), `"cell"` and `"grid"` (the sweep
//!   coordinates the run came from).
//! * **Lines 2..=N+1** — one [`Event`] each, e.g.
//!   `{"thread":0,"label":{"op":"insert","priority":17},
//!   "invoke":3,"update":5,"response":8}`.
//!
//! All stamps and operation values are `u64` and round-trip losslessly
//! (the parser keeps integer literals exact). `envelope_factor` is
//! serialized as `null` when infinite (a policy with no rank bound) and
//! parsed back to `f64::INFINITY`.
//!
//! `threads` is the measured worker count; a sequential prefill worker
//! logs under thread id `threads`, so event thread ids may exceed the
//! header value by one.
//!
//! Loading is strict: a malformed or truncated artifact yields an
//! [`ArtifactError`] carrying the 1-based line number — never a panic —
//! so offline checkers can fail loudly and point at the damage.

use crate::json::{self, JsonObject, JsonValue};
use crate::spec::history::{Event, History};
use crate::spec::specs::{CounterOp, FifoOp, PqOp};

/// Current artifact schema version. Bump on any incompatible change;
/// loaders reject versions they do not understand.
pub const SCHEMA_VERSION: u64 = 1;

/// The typed events of an artifact: one variant per structure kind the
/// spec layer can replay.
#[derive(Debug, Clone)]
pub enum ArtifactHistory {
    /// A priority-queue history (replay costs are dequeue ranks).
    Pq(History<PqOp>),
    /// A counter history (replay costs are read deviations).
    Counter(History<CounterOp>),
    /// A FIFO history (replay costs are dequeue positions).
    Fifo(History<FifoOp>),
}

impl ArtifactHistory {
    /// The structure-kind tag used in the header (`pq`, `counter`,
    /// `fifo`).
    pub fn kind(&self) -> &'static str {
        match self {
            ArtifactHistory::Pq(_) => "pq",
            ArtifactHistory::Counter(_) => "counter",
            ArtifactHistory::Fifo(_) => "fifo",
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        match self {
            ArtifactHistory::Pq(h) => h.len(),
            ArtifactHistory::Counter(h) => h.len(),
            ArtifactHistory::Fifo(h) => h.len(),
        }
    }

    /// `true` if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A recorded history plus the metadata an external monitor needs to
/// pick the right cost bound: which structure kind, which choice policy
/// produced it (label + envelope factor), how many workers ran, and —
/// when the run came from a sweep — which grid cell.
#[derive(Debug, Clone)]
pub struct HistoryArtifact {
    /// The stamped events, typed by structure kind.
    pub history: ArtifactHistory,
    /// Label of the [`PolicyCfg`](crate::PolicyCfg) that produced the
    /// history (`"none"` for structures without a choice policy).
    pub policy: String,
    /// The envelope scale factor for the kind's cost bound: the
    /// policy's rank factor `f` for queues (expected rank O(`f`·m)),
    /// the deviation scale `m·ln m` for counters (deviation O(scale)).
    /// Infinite means "no bound".
    pub envelope_factor: f64,
    /// Measured worker count (the prefill worker, if any, logs under
    /// thread id `threads`).
    pub threads: usize,
    /// The MultiQueue's internal queue count `m`, when the history came
    /// from one (lets monitors reconstruct the absolute rank bound).
    pub queues: Option<usize>,
    /// Label of the backend that produced the history.
    pub source: Option<String>,
    /// Sweep-cell name the run came from, e.g.
    /// `queue-balanced-audit/t=2/policy=sticky(s=4)`.
    pub cell: Option<String>,
    /// Swept grid coordinates as `(axis, value-label)` pairs; empty
    /// outside sweeps.
    pub grid: Vec<(String, String)>,
}

/// A load failure: the 1-based line of the artifact it occurred on and
/// what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactError {
    /// 1-based line number within the artifact text.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ArtifactError {}

fn err(line: usize, msg: impl Into<String>) -> ArtifactError {
    ArtifactError {
        line,
        msg: msg.into(),
    }
}

impl HistoryArtifact {
    /// Packages a priority-queue history with its policy provenance.
    pub fn pq(
        history: History<PqOp>,
        policy: impl Into<String>,
        envelope_factor: f64,
        queues: usize,
    ) -> Self {
        HistoryArtifact {
            history: ArtifactHistory::Pq(history),
            policy: policy.into(),
            envelope_factor,
            threads: 0,
            queues: Some(queues),
            source: None,
            cell: None,
            grid: Vec::new(),
        }
    }

    /// Packages a counter history; `deviation_scale` is the `m·ln m`
    /// scale its read-deviation bound is a multiple of (0 for the exact
    /// baseline, whose deviation must be 0).
    pub fn counter(history: History<CounterOp>, deviation_scale: f64) -> Self {
        HistoryArtifact {
            history: ArtifactHistory::Counter(history),
            policy: "none".to_string(),
            envelope_factor: deviation_scale,
            threads: 0,
            queues: None,
            source: None,
            cell: None,
            grid: Vec::new(),
        }
    }

    /// Packages a FIFO history (no policy provenance).
    pub fn fifo(history: History<FifoOp>) -> Self {
        HistoryArtifact {
            history: ArtifactHistory::Fifo(history),
            policy: "none".to_string(),
            envelope_factor: f64::INFINITY,
            threads: 0,
            queues: None,
            source: None,
            cell: None,
            grid: Vec::new(),
        }
    }

    /// The structure-kind tag (`pq`, `counter`, `fifo`).
    pub fn kind(&self) -> &'static str {
        self.history.kind()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// `true` if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Serializes the artifact to its line-oriented JSON form
    /// (header line + one line per event, each `\n`-terminated).
    pub fn to_json_lines(&self) -> String {
        let mut header = JsonObject::new();
        header
            .u64("schema", SCHEMA_VERSION)
            .str("kind", self.kind())
            .str("policy", &self.policy)
            .f64("envelope_factor", self.envelope_factor)
            .u64("threads", self.threads as u64)
            .u64("events", self.len() as u64);
        if let Some(q) = self.queues {
            header.u64("queues", q as u64);
        }
        if let Some(s) = &self.source {
            header.str("source", s);
        }
        if let Some(c) = &self.cell {
            header.str("cell", c);
        }
        if !self.grid.is_empty() {
            header.obj("grid", |g| {
                for (k, v) in &self.grid {
                    g.str(k, v);
                }
            });
        }
        let mut out = header.finish();
        out.push('\n');
        match &self.history {
            ArtifactHistory::Pq(h) => emit_events(&mut out, &h.events, pq_label_json),
            ArtifactHistory::Counter(h) => emit_events(&mut out, &h.events, counter_label_json),
            ArtifactHistory::Fifo(h) => emit_events(&mut out, &h.events, fifo_label_json),
        }
        out
    }

    /// Parses an artifact from its line-oriented JSON form. The inverse
    /// of [`to_json_lines`](Self::to_json_lines): a serialized artifact
    /// parses back to an identical one (and replays to the identical
    /// verdict). Errors carry the 1-based line number of the damage.
    pub fn from_json_lines(text: &str) -> Result<Self, ArtifactError> {
        let mut lines = text.lines().enumerate();
        let (_, header_line) = lines.next().ok_or_else(|| err(1, "empty artifact"))?;
        let header =
            json::parse(header_line).map_err(|e| err(1, format!("malformed header: {e}")))?;
        let schema = header
            .get("schema")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| err(1, "header missing 'schema'"))?;
        if schema != SCHEMA_VERSION {
            return Err(err(
                1,
                format!("unsupported schema version {schema} (this build reads {SCHEMA_VERSION})"),
            ));
        }
        let kind = header
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err(1, "header missing 'kind'"))?
            .to_string();
        let policy = header
            .get("policy")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err(1, "header missing 'policy'"))?
            .to_string();
        let envelope_factor = match header.get("envelope_factor") {
            Some(v) if v.is_null() => f64::INFINITY,
            Some(v) => v
                .as_f64()
                .ok_or_else(|| err(1, "'envelope_factor' is not a number"))?,
            None => return Err(err(1, "header missing 'envelope_factor'")),
        };
        let threads = header
            .get("threads")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| err(1, "header missing 'threads'"))? as usize;
        let expected = header
            .get("events")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| err(1, "header missing 'events'"))? as usize;
        let queues = match header.get("queues") {
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| err(1, "'queues' is not an unsigned integer"))?
                    as usize,
            ),
            None => None,
        };
        let str_field = |key: &str| -> Result<Option<String>, ArtifactError> {
            match header.get(key) {
                Some(v) => Ok(Some(
                    v.as_str()
                        .ok_or_else(|| err(1, format!("'{key}' is not a string")))?
                        .to_string(),
                )),
                None => Ok(None),
            }
        };
        let source = str_field("source")?;
        let cell = str_field("cell")?;
        let grid = match header.get("grid") {
            Some(v) => v
                .as_object()
                .ok_or_else(|| err(1, "'grid' is not an object"))?
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| err(1, format!("grid coordinate '{k}' is not a string")))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };

        let history = match kind.as_str() {
            "pq" => ArtifactHistory::Pq(parse_events(&mut lines, expected, pq_label_parse)?),
            "counter" => {
                ArtifactHistory::Counter(parse_events(&mut lines, expected, counter_label_parse)?)
            }
            "fifo" => ArtifactHistory::Fifo(parse_events(&mut lines, expected, fifo_label_parse)?),
            other => return Err(err(1, format!("unknown structure kind '{other}'"))),
        };
        // Anything after the declared events is damage, not padding.
        for (idx, line) in lines {
            if !line.trim().is_empty() {
                return Err(err(
                    idx + 1,
                    format!("trailing data after the {expected} declared events"),
                ));
            }
        }
        Ok(HistoryArtifact {
            history,
            policy,
            envelope_factor,
            threads,
            queues,
            source,
            cell,
            grid,
        })
    }

    /// The replay-cost samples the kind's quality metric summarizes,
    /// mirroring the in-process computation exactly: every finite cost
    /// for queues and FIFOs (inserts cost 0 and are included), but
    /// **read costs only** for counters (increments are always exact
    /// and would dilute the deviation metric).
    ///
    /// `outcome` must be the replay of this artifact (e.g. from
    /// [`replay_artifact`](crate::spec::checker::replay_artifact)).
    pub fn metric_costs(&self, outcome: &crate::spec::checker::ReplayOutcome) -> Vec<f64> {
        match &self.history {
            ArtifactHistory::Counter(h) => {
                // Counter relaxations map every label (no unmappable
                // transitions), so costs align 1:1 with labels in
                // update order.
                h.labels_in_update_order()
                    .iter()
                    .zip(outcome.costs.samples())
                    .filter(|(l, _)| matches!(l, CounterOp::Read { .. }))
                    .map(|(_, c)| *c)
                    .collect()
            }
            _ => outcome
                .costs
                .samples()
                .iter()
                .copied()
                .filter(|c| c.is_finite())
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// Event emission
// ---------------------------------------------------------------------

fn emit_events<L>(out: &mut String, events: &[Event<L>], label_json: impl Fn(&L) -> String) {
    for e in events {
        let mut o = JsonObject::new();
        o.u64("thread", e.thread as u64)
            .raw("label", &label_json(&e.label))
            .u64("invoke", e.invoke)
            .u64("update", e.update)
            .u64("response", e.response);
        out.push_str(&o.finish());
        out.push('\n');
    }
}

fn pq_label_json(l: &PqOp) -> String {
    let mut o = JsonObject::new();
    match l {
        PqOp::Insert { priority } => o.str("op", "insert").u64("priority", *priority),
        PqOp::DeleteMin { removed } => o.str("op", "delete-min").u64("removed", *removed),
    };
    o.finish()
}

fn counter_label_json(l: &CounterOp) -> String {
    let mut o = JsonObject::new();
    match l {
        CounterOp::Inc => o.str("op", "inc"),
        CounterOp::Read { returned } => o.str("op", "read").u64("returned", *returned),
    };
    o.finish()
}

fn fifo_label_json(l: &FifoOp) -> String {
    let mut o = JsonObject::new();
    match l {
        FifoOp::Enqueue { id } => o.str("op", "enqueue").u64("id", *id),
        FifoOp::Dequeue { id } => o.str("op", "dequeue").u64("id", *id),
    };
    o.finish()
}

// ---------------------------------------------------------------------
// Event parsing
// ---------------------------------------------------------------------

fn parse_events<'a, L>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
    expected: usize,
    label_parse: impl Fn(&JsonValue) -> Result<L, String>,
) -> Result<History<L>, ArtifactError> {
    let mut events = Vec::with_capacity(expected);
    for k in 0..expected {
        let Some((idx, line)) = lines.next() else {
            return Err(err(
                k + 2,
                format!("truncated artifact: header declares {expected} events, found {k}"),
            ));
        };
        let lineno = idx + 1;
        let v = json::parse(line).map_err(|e| err(lineno, format!("malformed event: {e}")))?;
        let field = |key: &str| -> Result<u64, ArtifactError> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| err(lineno, format!("event missing u64 field '{key}'")))
        };
        let label = label_parse(
            v.get("label")
                .ok_or_else(|| err(lineno, "event missing 'label'"))?,
        )
        .map_err(|msg| err(lineno, msg))?;
        events.push(Event {
            thread: field("thread")? as usize,
            label,
            invoke: field("invoke")?,
            update: field("update")?,
            response: field("response")?,
        });
    }
    Ok(History { events })
}

fn label_op(label: &JsonValue) -> Result<&str, String> {
    label
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "label missing 'op'".to_string())
}

fn label_u64(label: &JsonValue, key: &str) -> Result<u64, String> {
    label
        .get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("label missing u64 field '{key}'"))
}

fn pq_label_parse(label: &JsonValue) -> Result<PqOp, String> {
    match label_op(label)? {
        "insert" => Ok(PqOp::Insert {
            priority: label_u64(label, "priority")?,
        }),
        "delete-min" => Ok(PqOp::DeleteMin {
            removed: label_u64(label, "removed")?,
        }),
        other => Err(format!("unknown pq op '{other}'")),
    }
}

fn counter_label_parse(label: &JsonValue) -> Result<CounterOp, String> {
    match label_op(label)? {
        "inc" => Ok(CounterOp::Inc),
        "read" => Ok(CounterOp::Read {
            returned: label_u64(label, "returned")?,
        }),
        other => Err(format!("unknown counter op '{other}'")),
    }
}

fn fifo_label_parse(label: &JsonValue) -> Result<FifoOp, String> {
    match label_op(label)? {
        "enqueue" => Ok(FifoOp::Enqueue {
            id: label_u64(label, "id")?,
        }),
        "dequeue" => Ok(FifoOp::Dequeue {
            id: label_u64(label, "id")?,
        }),
        other => Err(format!("unknown fifo op '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::checker::replay_artifact;

    fn ev<L>(thread: usize, label: L, stamp: u64) -> Event<L> {
        Event {
            thread,
            label,
            invoke: stamp * 10,
            update: stamp * 10 + 1,
            response: stamp * 10 + 2,
        }
    }

    fn sample_pq() -> HistoryArtifact {
        let h = History {
            events: vec![
                ev(0, PqOp::Insert { priority: 10 }, 0),
                ev(1, PqOp::Insert { priority: 20 }, 1),
                ev(0, PqOp::DeleteMin { removed: 20 }, 2),
                ev(1, PqOp::DeleteMin { removed: 10 }, 3),
            ],
        };
        let mut a = HistoryArtifact::pq(h, "sticky(s=4)", 4.0, 8);
        a.threads = 2;
        a.source = Some("multiqueue-heap(m=8,strict)".into());
        a.cell = Some("q/t=2/policy=sticky(s=4)".into());
        a.grid = vec![
            ("t".into(), "2".into()),
            ("policy".into(), "sticky(s=4)".into()),
        ];
        a
    }

    #[test]
    fn pq_artifact_round_trips_byte_for_byte() {
        let a = sample_pq();
        let text = a.to_json_lines();
        assert_eq!(text.lines().count(), 5, "header + 4 events");
        let b = HistoryArtifact::from_json_lines(&text).expect("parse");
        assert_eq!(b.to_json_lines(), text, "serialize∘parse must be identity");
        assert_eq!(b.kind(), "pq");
        assert_eq!(b.policy, "sticky(s=4)");
        assert_eq!(b.envelope_factor, 4.0);
        assert_eq!(b.threads, 2);
        assert_eq!(b.queues, Some(8));
        assert_eq!(b.cell.as_deref(), Some("q/t=2/policy=sticky(s=4)"));
        assert_eq!(b.grid, a.grid);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn replay_matches_across_the_round_trip() {
        let a = sample_pq();
        let before = replay_artifact(&a);
        let b = HistoryArtifact::from_json_lines(&a.to_json_lines()).expect("parse");
        let after = replay_artifact(&b);
        assert_eq!(before.is_linearizable(), after.is_linearizable());
        assert_eq!(before.costs.samples(), after.costs.samples());
        assert_eq!(before.unmappable, after.unmappable);
        // The deliberate out-of-order delete costs rank 1.
        assert_eq!(after.costs.max(), 1.0);
        assert_eq!(a.metric_costs(&before), b.metric_costs(&after));
    }

    #[test]
    fn counter_artifact_round_trips_and_filters_read_costs() {
        let h = History {
            events: vec![
                ev(0, CounterOp::Inc, 0),
                ev(1, CounterOp::Inc, 1),
                ev(0, CounterOp::Read { returned: 5 }, 2), // true 2, cost 3
            ],
        };
        let mut a = HistoryArtifact::counter(h, 16.0 * 16f64.ln());
        a.threads = 2;
        let text = a.to_json_lines();
        let b = HistoryArtifact::from_json_lines(&text).expect("parse");
        assert_eq!(b.to_json_lines(), text);
        assert_eq!(b.kind(), "counter");
        assert_eq!(b.policy, "none");
        let outcome = replay_artifact(&b);
        assert!(outcome.is_linearizable());
        // Only the read's cost counts toward the deviation metric.
        assert_eq!(b.metric_costs(&outcome), vec![3.0]);
    }

    #[test]
    fn fifo_artifact_round_trips() {
        let h = History {
            events: vec![
                ev(0, FifoOp::Enqueue { id: 1 }, 0),
                ev(0, FifoOp::Enqueue { id: 2 }, 1),
                ev(1, FifoOp::Dequeue { id: 2 }, 2), // position 1
            ],
        };
        let a = HistoryArtifact::fifo(h);
        let text = a.to_json_lines();
        // Infinite envelope factor serializes as null and parses back.
        assert!(text
            .lines()
            .next()
            .unwrap()
            .contains("\"envelope_factor\":null"));
        let b = HistoryArtifact::from_json_lines(&text).expect("parse");
        assert!(b.envelope_factor.is_infinite());
        let outcome = replay_artifact(&b);
        assert!(outcome.is_linearizable());
        assert_eq!(outcome.costs.max(), 1.0);
    }

    #[test]
    fn u64_extremes_survive_the_round_trip() {
        let h = History {
            events: vec![Event {
                thread: 0,
                label: PqOp::Insert { priority: u64::MAX },
                invoke: u64::MAX - 2,
                update: u64::MAX - 1,
                response: u64::MAX,
            }],
        };
        let a = HistoryArtifact::pq(h, "two-choice", 1.0, 4);
        let b = HistoryArtifact::from_json_lines(&a.to_json_lines()).expect("parse");
        let ArtifactHistory::Pq(h) = &b.history else {
            panic!("wrong kind");
        };
        assert_eq!(h.events[0].label, PqOp::Insert { priority: u64::MAX });
        assert_eq!(h.events[0].response, u64::MAX);
    }

    #[test]
    fn corrupt_artifacts_fail_with_line_numbers() {
        let text = sample_pq().to_json_lines();
        let lines: Vec<&str> = text.lines().collect();

        // Garbage mid-file.
        let mut bad = lines.clone();
        bad[2] = "{oops";
        let e = HistoryArtifact::from_json_lines(&bad.join("\n")).unwrap_err();
        assert_eq!(e.line, 3, "{e}");

        // Truncated: header declares 4 events, only 1 present.
        let e = HistoryArtifact::from_json_lines(&lines[..2].join("\n")).unwrap_err();
        assert_eq!(e.line, 3, "{e}");
        assert!(e.msg.contains("truncated"), "{e}");

        // Trailing junk after the declared events.
        let mut extra = lines.clone();
        extra.push("{\"thread\":0}");
        let e = HistoryArtifact::from_json_lines(&extra.join("\n")).unwrap_err();
        assert_eq!(e.line, 6, "{e}");
        assert!(e.msg.contains("trailing"), "{e}");

        // Unknown op name.
        let mut op = lines.clone();
        let patched = op[1].replace("insert", "frobnicate");
        op[1] = &patched;
        let e = HistoryArtifact::from_json_lines(&op.join("\n")).unwrap_err();
        assert_eq!(e.line, 2, "{e}");

        // Future schema version.
        let mut ver = lines.clone();
        let patched = ver[0].replace("\"schema\":1", "\"schema\":99");
        ver[0] = &patched;
        let e = HistoryArtifact::from_json_lines(&ver.join("\n")).unwrap_err();
        assert_eq!(e.line, 1, "{e}");
        assert!(e.msg.contains("schema"), "{e}");

        // Empty input.
        let e = HistoryArtifact::from_json_lines("").unwrap_err();
        assert_eq!(e.line, 1, "{e}");
    }
}
