//! Sequential specifications as labeled transition systems.
//!
//! Definition 5.1 of the paper: a sequential specification `S` (a
//! prefix-closed set of histories over a method alphabet Σ) induces
//! `LTS(S) = (Q, Σ, →, q0)` whose states are equivalence classes of
//! histories. We represent the LTS directly by its state type and
//! transition function — the equivalence classes of a data structure's
//! histories *are* its abstract states (a counter value, a multiset of
//! priorities, ...), so this loses nothing and is executable.

/// A sequential specification, presented as a deterministic LTS.
pub trait SequentialSpec {
    /// Abstract state (`[s]_S` in the paper — e.g. the counter value).
    type State: Clone;
    /// Method labels with input and output values (Σ).
    type Label: Clone;

    /// The initial state `q0 = [ε]_S`.
    fn initial(&self) -> Self::State;

    /// `Some(q')` if `q →label q'` is a legal transition of `LTS(S)`,
    /// `None` if the labeled method (with its baked-in output) is not
    /// allowed by the sequential specification in state `q`.
    fn step(&self, state: &Self::State, label: &Self::Label) -> Option<Self::State>;
}

/// Convenience runner over a [`SequentialSpec`].
#[derive(Debug, Clone, Copy)]
pub struct Lts<'a, S: SequentialSpec> {
    spec: &'a S,
}

impl<'a, S: SequentialSpec> Lts<'a, S> {
    /// Wraps a specification.
    pub fn new(spec: &'a S) -> Self {
        Lts { spec }
    }

    /// Runs a label sequence from the initial state; `None` as soon as a
    /// transition is illegal.
    pub fn run(&self, labels: &[S::Label]) -> Option<S::State> {
        let mut state = self.spec.initial();
        for l in labels {
            state = self.spec.step(&state, l)?;
        }
        Some(state)
    }

    /// Membership in the sequential specification: `u ∈ S` iff
    /// `q0 →u` (the remark after Definition 5.1).
    pub fn accepts(&self, labels: &[S::Label]) -> bool {
        self.run(labels).is_some()
    }

    /// Runs a sequence, returning the trace of states (initial included).
    pub fn trace(&self, labels: &[S::Label]) -> Option<Vec<S::State>> {
        let mut states = vec![self.spec.initial()];
        for l in labels {
            let next = self.spec.step(states.last().expect("non-empty"), l)?;
            states.push(next);
        }
        Some(states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy spec: a counter whose `Read` must return the exact count.
    struct ToyCounter;

    #[derive(Clone, Debug, PartialEq)]
    enum ToyOp {
        Inc,
        Read(u64),
    }

    impl SequentialSpec for ToyCounter {
        type State = u64;
        type Label = ToyOp;

        fn initial(&self) -> u64 {
            0
        }

        fn step(&self, state: &u64, label: &ToyOp) -> Option<u64> {
            match label {
                ToyOp::Inc => Some(state + 1),
                ToyOp::Read(v) if *v == *state => Some(*state),
                ToyOp::Read(_) => None,
            }
        }
    }

    #[test]
    fn accepts_legal_histories() {
        let spec = ToyCounter;
        let lts = Lts::new(&spec);
        assert!(lts.accepts(&[ToyOp::Inc, ToyOp::Inc, ToyOp::Read(2)]));
        assert!(lts.accepts(&[]));
    }

    #[test]
    fn rejects_illegal_histories() {
        let spec = ToyCounter;
        let lts = Lts::new(&spec);
        assert!(!lts.accepts(&[ToyOp::Inc, ToyOp::Read(5)]));
    }

    #[test]
    fn prefix_closure_holds_by_construction() {
        // If a sequence is accepted, every prefix is accepted: this is
        // guaranteed by the step-by-step definition; spot-check it.
        let spec = ToyCounter;
        let lts = Lts::new(&spec);
        let seq = vec![ToyOp::Inc, ToyOp::Read(1), ToyOp::Inc, ToyOp::Read(2)];
        assert!(lts.accepts(&seq));
        for k in 0..seq.len() {
            assert!(lts.accepts(&seq[..k]));
        }
    }

    #[test]
    fn trace_returns_every_state() {
        let spec = ToyCounter;
        let lts = Lts::new(&spec);
        let t = lts.trace(&[ToyOp::Inc, ToyOp::Inc]).unwrap();
        assert_eq!(t, vec![0, 1, 2]);
    }
}
