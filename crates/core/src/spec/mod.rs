//! Distributional linearizability, executable (Section 5 of the paper).
//!
//! The paper defines a randomized quantitative relaxation of a sequential
//! specification `S` in four steps:
//!
//! 1. **Completion** — extend `LTS(S)` with transitions from any state by
//!    any method ([`lts`], [`relaxation`]).
//! 2. **Cost function** — `cost(q, m, q') = 0` iff the transition is
//!    legal in `LTS(S)` ([`relaxation::QuantitativeRelaxation::apply`]).
//! 3. **Path cost** — a monotone accumulation of step costs
//!    ([`relaxation::PathCost`]).
//! 4. **Probability distribution** — a distribution over the costs
//!    incurred at each step. We *measure* it instead of assuming it:
//!    the [`checker`] replays recorded concurrent histories through the
//!    completed LTS and reports the empirical [`relaxation::CostDistribution`].
//!
//! A concurrent structure `D` is *distributionally linearizable* to the
//! relaxed process `R` (Definition 5.2) if every concurrent schedule
//! admits a mapping of completed operations of `D` onto transitions of
//! `R` preserving outputs and the order of non-overlapping operations.
//! Our recorded histories construct that mapping explicitly: each
//! operation carries an *update stamp* drawn inside its atomic update
//! step, so stamp order is a legal linearization order (stamps lie
//! within operation intervals), and replaying in stamp order yields the
//! sequential path whose costs Definition 5.2 talks about.
//!
//! Recorded histories are also *durable evidence*: [`artifact`] gives
//! them a versioned, policy-tagged serialized form (`.histjsonl`), and
//! [`checker::replay_artifact`] re-derives the identical verdict from a
//! deserialized artifact — so external monitors can audit a history
//! long after the run that produced it.

pub mod artifact;
pub mod checker;
pub mod exact;
pub mod history;
pub mod lts;
pub mod relaxation;
pub mod specs;

pub use artifact::{ArtifactError, ArtifactHistory, HistoryArtifact};
pub use checker::{check_distributional, replay_artifact, ReplayOutcome};
pub use exact::{check_linearizable, Linearizability};
pub use history::{Event, History, StampClock, ThreadLog};
pub use lts::{Lts, SequentialSpec};
pub use relaxation::{CostDistribution, PathCost, QuantitativeRelaxation};
pub use specs::{CounterOp, CounterSpec, FifoOp, FifoSpec, PqOp, PqSpec};
