//! Replaying recorded histories through a quantitative relaxation.
//!
//! This is the executable side of Definition 5.2: given a history of a
//! concurrent structure `D` (with update-point stamps) and the relaxed
//! sequential process `R` (a [`QuantitativeRelaxation`]), construct the
//! mapping — replay in stamp order — and report the empirical cost
//! distribution. If the mapping fails (an infinite-cost transition, a
//! malformed stamp discipline, a real-time violation), the outcome says
//! so and where.

use crate::spec::artifact::{ArtifactHistory, HistoryArtifact};
use crate::spec::history::History;
use crate::spec::relaxation::{CostDistribution, QuantitativeRelaxation};
use crate::spec::specs::{CounterSpec, FifoSpec, PqSpec};

/// Result of replaying a history against a relaxation.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Per-step costs, in replay (update-stamp) order.
    pub costs: CostDistribution,
    /// `true` iff the stamp discipline held (`invoke ≤ update ≤
    /// response`, unique stamps).
    pub well_formed: bool,
    /// `true` iff update order respected real-time order of
    /// non-overlapping operations.
    pub real_time_ok: bool,
    /// Indices (in replay order) of transitions with infinite cost —
    /// places where the concurrent output cannot be mapped onto the
    /// relaxed process at all (e.g. dequeue of an absent element).
    pub unmappable: Vec<usize>,
}

impl ReplayOutcome {
    /// The structure is distributionally linearizable *on this
    /// execution* with the measured cost distribution: every operation
    /// mapped, stamps were sound, real time respected.
    pub fn is_linearizable(&self) -> bool {
        self.well_formed && self.real_time_ok && self.unmappable.is_empty()
    }
}

/// Replays `history` through `relaxation` in update-stamp order.
///
/// The caller does *not* need to pre-sort the history.
pub fn check_distributional<R>(relaxation: &R, history: &History<R::Label>) -> ReplayOutcome
where
    R: QuantitativeRelaxation,
    R::Label: Clone,
{
    let well_formed = history.well_formed();
    let real_time_ok = history.respects_real_time();
    let labels = history.labels_in_update_order();

    let mut state = relaxation.initial();
    let mut costs = CostDistribution::new();
    let mut unmappable = Vec::new();
    for (idx, label) in labels.iter().enumerate() {
        let cost = relaxation.apply_mut(&mut state, label);
        if cost.is_infinite() {
            unmappable.push(idx);
        } else {
            costs.push(cost);
        }
    }

    ReplayOutcome {
        costs,
        well_formed,
        real_time_ok,
        unmappable,
    }
}

/// Replays a deserialized [`HistoryArtifact`] through its kind's
/// canonical relaxation — the offline twin of the in-process path, so
/// `serialize → parse → replay_artifact` produces the same
/// [`ReplayOutcome`] (verdict, costs, unmappable indices) as checking
/// the history before it was ever written out.
pub fn replay_artifact(artifact: &HistoryArtifact) -> ReplayOutcome {
    match &artifact.history {
        ArtifactHistory::Pq(h) => check_distributional(&PqSpec, h),
        ArtifactHistory::Counter(h) => check_distributional(&CounterSpec, h),
        ArtifactHistory::Fifo(h) => check_distributional(&FifoSpec, h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::history::{Event, History, StampClock, ThreadLog};
    use crate::spec::specs::{CounterOp, PqOp};

    fn ev<L>(label: L, stamp: u64) -> Event<L> {
        Event {
            thread: 0,
            label,
            invoke: stamp * 10,
            update: stamp * 10 + 1,
            response: stamp * 10 + 2,
        }
    }

    #[test]
    fn exact_counter_history_has_zero_costs() {
        let h = History {
            events: vec![
                ev(CounterOp::Inc, 0),
                ev(CounterOp::Read { returned: 1 }, 1),
                ev(CounterOp::Inc, 2),
                ev(CounterOp::Read { returned: 2 }, 3),
            ],
        };
        let out = check_distributional(&CounterSpec, &h);
        assert!(out.is_linearizable());
        assert_eq!(out.costs.max(), 0.0);
        assert_eq!(out.costs.len(), 4);
    }

    #[test]
    fn relaxed_counter_reads_cost_their_deviation() {
        let h = History {
            events: vec![
                ev(CounterOp::Inc, 0),
                ev(CounterOp::Inc, 1),
                ev(CounterOp::Read { returned: 6 }, 2), // true 2, cost 4
            ],
        };
        let out = check_distributional(&CounterSpec, &h);
        assert!(out.is_linearizable());
        assert_eq!(out.costs.max(), 4.0);
    }

    #[test]
    fn unsorted_history_is_sorted_by_checker() {
        // Same history, events supplied out of order.
        let h = History {
            events: vec![
                ev(CounterOp::Read { returned: 2 }, 3),
                ev(CounterOp::Inc, 0),
                ev(CounterOp::Inc, 2),
                ev(CounterOp::Read { returned: 1 }, 1),
            ],
        };
        let out = check_distributional(&CounterSpec, &h);
        assert!(out.is_linearizable());
        assert_eq!(out.costs.max(), 0.0);
    }

    #[test]
    fn unmappable_operations_are_flagged() {
        let h = History {
            events: vec![
                ev(PqOp::Insert { priority: 1 }, 0),
                ev(PqOp::DeleteMin { removed: 99 }, 1), // never inserted
            ],
        };
        let out = check_distributional(&PqSpec, &h);
        assert!(!out.is_linearizable());
        assert_eq!(out.unmappable, vec![1]);
    }

    #[test]
    fn malformed_stamps_are_flagged() {
        let h = History {
            events: vec![Event {
                thread: 0,
                label: CounterOp::Inc,
                invoke: 10,
                update: 5, // before invoke
                response: 20,
            }],
        };
        let out = check_distributional(&CounterSpec, &h);
        assert!(!out.well_formed);
        assert!(!out.is_linearizable());
    }

    #[test]
    fn end_to_end_with_recorder_and_multicounter() {
        use crate::counter::MultiCounter;
        use crate::rng::Xoshiro256;

        // Record a single-threaded MultiCounter execution and verify it
        // maps onto the relaxed counter with bounded costs.
        let mc = MultiCounter::new(8);
        let clock = StampClock::new();
        let mut log = ThreadLog::new(0);
        let mut rng = Xoshiro256::new(7);
        for _ in 0..500 {
            log.record(&clock, || {
                mc.increment_with(&mut rng);
                (CounterOp::Inc, clock.stamp())
            });
        }
        // A few relaxed reads interleaved at the end.
        for _ in 0..20 {
            log.record(&clock, || {
                let v = mc.read_with(&mut rng);
                (CounterOp::Read { returned: v }, clock.stamp())
            });
        }
        let h = History::from_logs(vec![log]);
        let out = check_distributional(&CounterSpec, &h);
        assert!(out.is_linearizable());
        // Read deviation is at most m * max_gap ≤ generous bound.
        assert!(out.costs.max() <= (8 * 8 * 8) as f64);
    }
}
