//! Recording concurrent histories with update-point stamps.
//!
//! Definition 5.2 asks for a mapping from completed operations of the
//! concurrent structure `D` onto transitions of the relaxed sequential
//! process `R` that preserves outputs and the order of non-overlapping
//! operations. We build that mapping *constructively*:
//!
//! * A global [`StampClock`] issues strictly increasing stamps.
//! * Each operation records an *invoke* stamp, an *update* stamp taken
//!   inside its atomic update step (the `fetch_add`, or inside the
//!   internal queue's critical section), and a *response* stamp.
//! * Because `invoke ≤ update ≤ response`, sorting by update stamp
//!   yields a total order that respects the order of non-overlapping
//!   operations — a legal linearization order. Replaying the labels in
//!   that order through the completed LTS produces the quantitative
//!   path whose costs the definition distributes over.

use std::sync::atomic::{AtomicU64, Ordering};

/// A shared monotone stamp source.
///
/// Stamps are handed out by `fetch_add`, so they are unique and their
/// numeric order extends the real-time order of the stamping events.
#[derive(Debug, Default)]
pub struct StampClock {
    next: AtomicU64,
}

impl StampClock {
    /// Creates a clock starting at stamp 0.
    pub const fn new() -> Self {
        StampClock {
            next: AtomicU64::new(0),
        }
    }

    /// Draws the next stamp.
    #[inline]
    pub fn stamp(&self) -> u64 {
        self.next.fetch_add(1, Ordering::AcqRel)
    }

    /// Access to the raw atomic, for structures whose stamped operations
    /// take an `&AtomicU64` (e.g. `MultiQueue::insert_stamped`).
    pub fn as_atomic(&self) -> &AtomicU64 {
        &self.next
    }

    /// How many stamps have been issued.
    pub fn issued(&self) -> u64 {
        self.next.load(Ordering::Acquire)
    }
}

/// One completed operation in a recorded history.
#[derive(Debug, Clone, PartialEq)]
pub struct Event<L> {
    /// Recording thread.
    pub thread: usize,
    /// The method label, with its output baked in.
    pub label: L,
    /// Stamp taken at invocation.
    pub invoke: u64,
    /// Stamp taken inside the operation's atomic update step.
    pub update: u64,
    /// Stamp taken at response.
    pub response: u64,
}

/// Per-thread event buffer; merge into a [`History`] after joining.
#[derive(Debug)]
pub struct ThreadLog<L> {
    thread: usize,
    events: Vec<Event<L>>,
}

impl<L> ThreadLog<L> {
    /// Creates a log for thread `thread`.
    pub fn new(thread: usize) -> Self {
        ThreadLog {
            thread,
            events: Vec::new(),
        }
    }

    /// Records one completed operation: invoke stamp, the operation
    /// body (which must return the label and its update stamp), response
    /// stamp.
    pub fn record(&mut self, clock: &StampClock, op: impl FnOnce() -> (L, u64)) {
        let invoke = clock.stamp();
        let (label, update) = op();
        let response = clock.stamp();
        self.events.push(Event {
            thread: self.thread,
            label,
            invoke,
            update,
            response,
        });
    }

    /// Records a pre-assembled event.
    pub fn push(&mut self, event: Event<L>) {
        self.events.push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A complete concurrent history: all threads' events merged.
#[derive(Debug, Clone, Default)]
pub struct History<L> {
    /// All events; call [`sort_by_update`](Self::sort_by_update) before
    /// replaying.
    pub events: Vec<Event<L>>,
}

impl<L> History<L> {
    /// Creates an empty history.
    pub fn new() -> Self {
        History { events: Vec::new() }
    }

    /// Merges thread logs into one history.
    pub fn from_logs(logs: Vec<ThreadLog<L>>) -> Self {
        let mut events = Vec::with_capacity(logs.iter().map(|l| l.events.len()).sum());
        for log in logs {
            events.extend(log.events);
        }
        History { events }
    }

    /// Sorts events by update stamp — the linearization order used by
    /// the checker.
    pub fn sort_by_update(&mut self) {
        self.events.sort_by_key(|e| e.update);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if there are no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validates the stamping discipline:
    ///
    /// 1. `invoke ≤ update ≤ response` for every event (so update order
    ///    is a legal linearization order), and
    /// 2. update stamps are pairwise distinct (a total order).
    ///
    /// Returns `true` iff both hold.
    pub fn well_formed(&self) -> bool {
        if !self
            .events
            .iter()
            .all(|e| e.invoke <= e.update && e.update <= e.response)
        {
            return false;
        }
        let mut stamps: Vec<u64> = self.events.iter().map(|e| e.update).collect();
        stamps.sort_unstable();
        stamps.windows(2).all(|w| w[0] != w[1])
    }

    /// Checks that update order respects the real-time order of
    /// non-overlapping operations: if `a.response < b.invoke` then
    /// `a.update < b.update`. With stamps from one [`StampClock`] this
    /// holds by construction; the checker asserts it anyway.
    pub fn respects_real_time(&self) -> bool {
        // Sort by update; then for any pair out of real-time order the
        // earlier-responding op would appear after the later-invoked
        // one. O(n log n) check via max-invoke prefix scanning.
        let mut by_update: Vec<&Event<L>> = self.events.iter().collect();
        by_update.sort_by_key(|e| e.update);
        // For each event in update order, all *previous* events must not
        // have responded before this one was... precisely: no earlier
        // event (in update order) may have invoke > this response.
        // Equivalently: running max of response so far must not exceed
        // any later event's... simplest correct check: for consecutive
        // scan, track min response of all events seen so far is not
        // needed; we need: for every pair i<j (update order),
        // NOT (events[j].response < events[i].invoke).
        // That is: min over j>i of response must be >= ... do it with a
        // suffix-min of response and compare with invoke.
        let n = by_update.len();
        if n == 0 {
            return true;
        }
        let mut suffix_min_resp = vec![u64::MAX; n];
        let mut m = u64::MAX;
        for i in (0..n).rev() {
            m = m.min(by_update[i].response);
            suffix_min_resp[i] = m;
        }
        for i in 0..n.saturating_sub(1) {
            if suffix_min_resp[i + 1] < by_update[i].invoke {
                return false;
            }
        }
        true
    }

    /// The labels in update order (consumes sorting internally).
    pub fn labels_in_update_order(&self) -> Vec<L>
    where
        L: Clone,
    {
        let mut by_update: Vec<&Event<L>> = self.events.iter().collect();
        by_update.sort_by_key(|e| e.update);
        by_update.into_iter().map(|e| e.label.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_clock_is_strictly_increasing() {
        let c = StampClock::new();
        let a = c.stamp();
        let b = c.stamp();
        assert!(b > a);
        assert_eq!(c.issued(), 2);
    }

    #[test]
    fn record_produces_ordered_stamps() {
        let clock = StampClock::new();
        let mut log = ThreadLog::new(0);
        log.record(&clock, || ("op", clock.stamp()));
        assert_eq!(log.len(), 1);
        let h = History::from_logs(vec![log]);
        assert!(h.well_formed());
        let e = &h.events[0];
        assert!(e.invoke < e.update && e.update < e.response);
    }

    #[test]
    fn well_formed_rejects_update_outside_interval() {
        let h = History {
            events: vec![Event {
                thread: 0,
                label: (),
                invoke: 5,
                update: 3,
                response: 7,
            }],
        };
        assert!(!h.well_formed());
    }

    #[test]
    fn well_formed_rejects_duplicate_updates() {
        let mk = |u| Event {
            thread: 0,
            label: (),
            invoke: 0,
            update: u,
            response: 10,
        };
        let h = History {
            events: vec![mk(4), mk(4)],
        };
        assert!(!h.well_formed());
    }

    #[test]
    fn real_time_order_detection() {
        // a finishes (resp 2) before b starts (invoke 5), but b's update
        // (3) precedes... wait, b.update must lie in [5, ...]; craft a
        // *violating* history where update order contradicts real time.
        let a = Event {
            thread: 0,
            label: 'a',
            invoke: 0,
            update: 6,
            response: 7,
        };
        let b = Event {
            thread: 1,
            label: 'b',
            invoke: 1,
            update: 2,
            response: 3,
        };
        // b responded (3) before a invoked? No: a.invoke=0 < 3. Check
        // the pair the other way: in update order b(2) < a(6); a
        // responded at 7 after b invoked at 1 — overlapping, fine.
        let h = History {
            events: vec![a.clone(), b.clone()],
        };
        assert!(h.respects_real_time());

        // Now a genuine violation: x entirely before y in real time,
        // but y's update stamp is smaller.
        let x = Event {
            thread: 0,
            label: 'x',
            invoke: 0,
            update: 9,
            response: 2,
        }; // (ill-formed on purpose: update > response)
        let y = Event {
            thread: 1,
            label: 'y',
            invoke: 5,
            update: 6,
            response: 8,
        };
        let h2 = History { events: vec![x, y] };
        assert!(!h2.respects_real_time());
    }

    #[test]
    fn labels_come_out_in_update_order() {
        let mk = |l, u| Event {
            thread: 0,
            label: l,
            invoke: u,
            update: u,
            response: u,
        };
        let h = History {
            events: vec![mk('c', 30), mk('a', 10), mk('b', 20)],
        };
        assert_eq!(h.labels_in_update_order(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn merge_multiple_thread_logs() {
        let clock = StampClock::new();
        let mut l0 = ThreadLog::new(0);
        let mut l1 = ThreadLog::new(1);
        l0.record(&clock, || (0u8, clock.stamp()));
        l1.record(&clock, || (1u8, clock.stamp()));
        l0.record(&clock, || (2u8, clock.stamp()));
        let h = History::from_logs(vec![l0, l1]);
        assert_eq!(h.len(), 3);
        assert!(h.well_formed());
        assert!(h.respects_real_time());
    }
}
