//! Concrete specifications and their canonical relaxations: counter,
//! priority queue, FIFO queue.
//!
//! Each type implements both [`SequentialSpec`] (the exact structure)
//! and [`QuantitativeRelaxation`] (the completed LTS with the cost
//! function the paper uses for it):
//!
//! | structure | cost of a relaxed step |
//! |---|---|
//! | counter read | `\|returned − true count\|` |
//! | pq delete-min | rank of the removed priority among those present |
//! | fifo dequeue | queue position of the removed element |

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::spec::lts::SequentialSpec;
use crate::spec::relaxation::QuantitativeRelaxation;

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

/// Labels of the counter specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterOp {
    /// An increment (always exact: the fetch-and-add really happened).
    Inc,
    /// A read that returned `returned`.
    Read {
        /// The value the concurrent read returned.
        returned: u64,
    },
}

/// The counter specification: state = number of increments so far.
///
/// As a [`QuantitativeRelaxation`], a read costs `|returned − count|` —
/// the deviation Lemma 6.8 bounds by `O(m log m)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CounterSpec;

impl SequentialSpec for CounterSpec {
    type State = u64;
    type Label = CounterOp;

    fn initial(&self) -> u64 {
        0
    }

    fn step(&self, state: &u64, label: &CounterOp) -> Option<u64> {
        match label {
            CounterOp::Inc => Some(state + 1),
            CounterOp::Read { returned } if returned == state => Some(*state),
            CounterOp::Read { .. } => None,
        }
    }
}

impl QuantitativeRelaxation for CounterSpec {
    type State = u64;
    type Label = CounterOp;

    fn initial(&self) -> u64 {
        0
    }

    fn apply(&self, state: &u64, label: &CounterOp) -> (u64, f64) {
        match label {
            CounterOp::Inc => (state + 1, 0.0),
            CounterOp::Read { returned } => (*state, returned.abs_diff(*state) as f64),
        }
    }
}

// ---------------------------------------------------------------------
// Priority queue
// ---------------------------------------------------------------------

/// Labels of the priority-queue specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PqOp {
    /// Insert of priority `priority`.
    Insert {
        /// The inserted priority.
        priority: u64,
    },
    /// A delete-min that removed `removed`.
    DeleteMin {
        /// The priority the concurrent delete-min returned.
        removed: u64,
    },
}

/// Priority-queue specification: state = multiset of priorities.
///
/// As a [`QuantitativeRelaxation`], a delete-min costs the *rank* of the
/// removed priority (number of strictly smaller priorities present) —
/// the quantity Theorem 7.1 bounds by O(m) in expectation. Removing a
/// priority that is not present costs `+∞` (the mapping of Definition
/// 5.2 fails; the checker flags it).
#[derive(Debug, Clone, Copy, Default)]
pub struct PqSpec;

/// Multiset of priorities with counts.
pub type PqState = BTreeMap<u64, usize>;

fn pq_insert(state: &PqState, p: u64) -> PqState {
    let mut s = state.clone();
    *s.entry(p).or_insert(0) += 1;
    s
}

fn pq_remove(state: &PqState, p: u64) -> Option<PqState> {
    let mut s = state.clone();
    match s.get_mut(&p) {
        Some(c) if *c > 1 => {
            *c -= 1;
            Some(s)
        }
        Some(_) => {
            s.remove(&p);
            Some(s)
        }
        None => None,
    }
}

impl SequentialSpec for PqSpec {
    type State = PqState;
    type Label = PqOp;

    fn initial(&self) -> PqState {
        BTreeMap::new()
    }

    fn step(&self, state: &PqState, label: &PqOp) -> Option<PqState> {
        match label {
            PqOp::Insert { priority } => Some(pq_insert(state, *priority)),
            PqOp::DeleteMin { removed } => {
                // Exact spec: only the true minimum may be removed.
                let (&min, _) = state.iter().next()?;
                if min == *removed {
                    pq_remove(state, *removed)
                } else {
                    None
                }
            }
        }
    }
}

impl QuantitativeRelaxation for PqSpec {
    type State = PqState;
    type Label = PqOp;

    fn initial(&self) -> PqState {
        BTreeMap::new()
    }

    fn apply(&self, state: &PqState, label: &PqOp) -> (PqState, f64) {
        let mut next = state.clone();
        let cost = self.apply_mut(&mut next, label);
        (next, cost)
    }

    fn apply_mut(&self, state: &mut PqState, label: &PqOp) -> f64 {
        match label {
            PqOp::Insert { priority } => {
                *state.entry(*priority).or_insert(0) += 1;
                0.0
            }
            PqOp::DeleteMin { removed } => {
                // Rank before removal: elements strictly smaller.
                // (O(rank-range) via the ordered map; far cheaper than
                // cloning the multiset.)
                match state.get_mut(removed) {
                    None => f64::INFINITY,
                    Some(c) => {
                        if *c > 1 {
                            *c -= 1;
                        } else {
                            state.remove(removed);
                        }
                        let rank: usize = state.range(..*removed).map(|(_, c)| *c).sum();
                        rank as f64
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// FIFO queue
// ---------------------------------------------------------------------

/// Labels of the FIFO-queue specification. Elements are identified by a
/// caller-chosen id (e.g. the enqueue timestamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FifoOp {
    /// Enqueue of element `id`.
    Enqueue {
        /// Unique element identity.
        id: u64,
    },
    /// A dequeue that returned element `id`.
    Dequeue {
        /// The identity the concurrent dequeue returned.
        id: u64,
    },
}

/// FIFO specification: state = the queue contents in order.
///
/// As a [`QuantitativeRelaxation`], a dequeue costs the position of the
/// removed element (0 = head = exact FIFO).
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoSpec;

impl SequentialSpec for FifoSpec {
    type State = VecDeque<u64>;
    type Label = FifoOp;

    fn initial(&self) -> VecDeque<u64> {
        VecDeque::new()
    }

    fn step(&self, state: &VecDeque<u64>, label: &FifoOp) -> Option<VecDeque<u64>> {
        match label {
            FifoOp::Enqueue { id } => {
                let mut s = state.clone();
                s.push_back(*id);
                Some(s)
            }
            FifoOp::Dequeue { id } => {
                if *state.front()? == *id {
                    let mut s = state.clone();
                    s.pop_front();
                    Some(s)
                } else {
                    None
                }
            }
        }
    }
}

impl QuantitativeRelaxation for FifoSpec {
    type State = VecDeque<u64>;
    type Label = FifoOp;

    fn initial(&self) -> VecDeque<u64> {
        VecDeque::new()
    }

    fn apply(&self, state: &VecDeque<u64>, label: &FifoOp) -> (VecDeque<u64>, f64) {
        let mut next = state.clone();
        let cost = self.apply_mut(&mut next, label);
        (next, cost)
    }

    fn apply_mut(&self, state: &mut VecDeque<u64>, label: &FifoOp) -> f64 {
        match label {
            FifoOp::Enqueue { id } => {
                state.push_back(*id);
                0.0
            }
            FifoOp::Dequeue { id } => match state.iter().position(|x| x == id) {
                Some(pos) => {
                    state.remove(pos);
                    pos as f64
                }
                None => f64::INFINITY,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::lts::Lts;
    use crate::spec::relaxation::quantitative_path;

    #[test]
    fn counter_exact_spec() {
        let lts = Lts::new(&CounterSpec);
        assert!(lts.accepts(&[
            CounterOp::Inc,
            CounterOp::Read { returned: 1 },
            CounterOp::Inc,
            CounterOp::Read { returned: 2 },
        ]));
        assert!(!lts.accepts(&[CounterOp::Read { returned: 1 }]));
    }

    #[test]
    fn counter_relaxation_costs_deviation() {
        let (_, costs) = quantitative_path(
            &CounterSpec,
            &[
                CounterOp::Inc,
                CounterOp::Inc,
                CounterOp::Read { returned: 5 }, // true count 2 → cost 3
                CounterOp::Read { returned: 2 }, // exact → cost 0
            ],
        );
        assert_eq!(costs, vec![0.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn pq_exact_spec_only_removes_min() {
        let lts = Lts::new(&PqSpec);
        assert!(lts.accepts(&[
            PqOp::Insert { priority: 5 },
            PqOp::Insert { priority: 3 },
            PqOp::DeleteMin { removed: 3 },
            PqOp::DeleteMin { removed: 5 },
        ]));
        assert!(!lts.accepts(&[
            PqOp::Insert { priority: 5 },
            PqOp::Insert { priority: 3 },
            PqOp::DeleteMin { removed: 5 },
        ]));
        assert!(!lts.accepts(&[PqOp::DeleteMin { removed: 1 }]));
    }

    #[test]
    fn pq_relaxation_costs_rank() {
        let (_, costs) = quantitative_path(
            &PqSpec,
            &[
                PqOp::Insert { priority: 10 },
                PqOp::Insert { priority: 20 },
                PqOp::Insert { priority: 30 },
                PqOp::DeleteMin { removed: 30 }, // rank 2
                PqOp::DeleteMin { removed: 10 }, // rank 0
                PqOp::DeleteMin { removed: 20 }, // rank 0
            ],
        );
        assert_eq!(costs, vec![0.0, 0.0, 0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn pq_relaxation_duplicates_and_absent() {
        let (_, costs) = quantitative_path(
            &PqSpec,
            &[
                PqOp::Insert { priority: 7 },
                PqOp::Insert { priority: 7 },
                PqOp::DeleteMin { removed: 7 },
                PqOp::DeleteMin { removed: 7 },
                PqOp::DeleteMin { removed: 7 }, // absent → ∞
            ],
        );
        assert_eq!(&costs[..4], &[0.0, 0.0, 0.0, 0.0]);
        assert!(costs[4].is_infinite());
    }

    #[test]
    fn fifo_relaxation_costs_position() {
        let (_, costs) = quantitative_path(
            &FifoSpec,
            &[
                FifoOp::Enqueue { id: 1 },
                FifoOp::Enqueue { id: 2 },
                FifoOp::Enqueue { id: 3 },
                FifoOp::Dequeue { id: 2 }, // position 1
                FifoOp::Dequeue { id: 1 }, // position 0
                FifoOp::Dequeue { id: 3 }, // position 0
            ],
        );
        assert_eq!(costs, vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn fifo_exact_spec_is_fifo() {
        let lts = Lts::new(&FifoSpec);
        assert!(lts.accepts(&[
            FifoOp::Enqueue { id: 1 },
            FifoOp::Enqueue { id: 2 },
            FifoOp::Dequeue { id: 1 },
            FifoOp::Dequeue { id: 2 },
        ]));
        assert!(!lts.accepts(&[
            FifoOp::Enqueue { id: 1 },
            FifoOp::Enqueue { id: 2 },
            FifoOp::Dequeue { id: 2 },
        ]));
    }

    #[test]
    fn relaxation_cost_zero_iff_legal() {
        // The fundamental cost law, checked on the PQ spec across a
        // deterministic workload.
        let spec = PqSpec;
        let mut state = <PqSpec as QuantitativeRelaxation>::initial(&spec);
        let labels = [
            PqOp::Insert { priority: 4 },
            PqOp::Insert { priority: 2 },
            PqOp::DeleteMin { removed: 4 },
            PqOp::DeleteMin { removed: 2 },
        ];
        for l in labels {
            let legal = SequentialSpec::step(&spec, &state, &l).is_some();
            let (next, cost) = QuantitativeRelaxation::apply(&spec, &state, &l);
            assert_eq!(legal, cost == 0.0, "law violated at {l:?}");
            state = next;
        }
    }
}
