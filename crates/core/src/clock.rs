//! Timestamp sources: exact, hardware-like, and relaxed.
//!
//! Two parts of the paper need timestamps:
//!
//! * **Algorithm 2** (MultiQueue) enqueues with a wall-clock priority.
//!   The paper uses `RDTSC`; [`MonotonicNanoClock`] provides the same
//!   "consistent-across-threads, monotone" contract from `std::time`,
//!   and [`FaaClock`] provides a logical (Lamport-style) alternative
//!   whose timestamps are unique — handy for deterministic tests.
//! * **Section 8** replaces TL2's fetch-and-add global clock with a
//!   MultiCounter. [`MultiCounterClock`] packages that: `tick()` does a
//!   two-choice increment and returns a relaxed sample of the new time.
//!
//! The trait deliberately separates advancing ([`Clock::tick`]) from
//! observing ([`Clock::now`]): TL2 commits tick, TL2 reads only observe.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::counter::{MultiCounter, RelaxedCounter};
use crate::padded::Padded;

/// A source of 64-bit timestamps shared by many threads.
pub trait Clock: Send + Sync {
    /// Advances the clock and returns a timestamp not smaller than any
    /// timestamp this call observes (exact clocks: strictly larger than
    /// all previously *returned* ones; relaxed clocks: approximately so).
    fn tick(&self) -> u64;

    /// Observes the current time without advancing it.
    fn now(&self) -> u64;

    /// `true` if `now()`/`tick()` are exact (linearizable), `false` for
    /// relaxed clocks whose reads carry the paper's O(m log m) skew.
    fn is_exact(&self) -> bool {
        true
    }
}

/// Fetch-and-add logical clock: the TL2 baseline (`GV1` in TL2 terms).
///
/// Every `tick` is unique and totally ordered — and every `tick` is a
/// contended RMW on one cache line, which is the scalability bottleneck
/// Section 8 attacks.
#[derive(Debug, Default)]
pub struct FaaClock {
    time: Padded<AtomicU64>,
}

impl FaaClock {
    /// Creates a clock at time zero.
    pub const fn new() -> Self {
        FaaClock {
            time: Padded::new(AtomicU64::new(0)),
        }
    }

    /// Creates a clock starting at `t`.
    pub const fn starting_at(t: u64) -> Self {
        FaaClock {
            time: Padded::new(AtomicU64::new(t)),
        }
    }
}

impl Clock for FaaClock {
    #[inline]
    fn tick(&self) -> u64 {
        // Acquire/Release: a thread that sees timestamp t also sees all
        // writes made before the tick that produced t (TL2 relies on
        // this to order commit write-backs with version numbers).
        self.time.fetch_add(1, Ordering::AcqRel) + 1
    }

    #[inline]
    fn now(&self) -> u64 {
        self.time.load(Ordering::Acquire)
    }
}

/// Monotone wall clock in nanoseconds since construction.
///
/// Stand-in for the paper's `RDTSC`: `std::time::Instant` is monotone
/// and consistent across threads (the OS discipline guarantees the
/// ordering property Section 7.1 assumes of per-processor clocks).
/// `tick` and `now` coincide — reading wall time does not advance it.
#[derive(Debug)]
pub struct MonotonicNanoClock {
    epoch: Instant,
}

impl MonotonicNanoClock {
    /// Creates a clock whose zero is "now".
    pub fn new() -> Self {
        MonotonicNanoClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicNanoClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicNanoClock {
    #[inline]
    fn tick(&self) -> u64 {
        self.now()
    }

    #[inline]
    fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// The paper's relaxed timestamp source: a [`MultiCounter`] as a clock.
///
/// `tick()` performs one two-choice increment and then returns a relaxed
/// read; `now()` only samples. Timestamps are *approximate*: concurrent
/// ticks may observe values up to O(m log m) apart (Theorem 6.1), which
/// is exactly the skew Section 8's Δ-margin absorbs.
#[derive(Debug)]
pub struct MultiCounterClock {
    counter: MultiCounter,
}

impl MultiCounterClock {
    /// Wraps an existing MultiCounter.
    pub fn new(counter: MultiCounter) -> Self {
        MultiCounterClock { counter }
    }

    /// Convenience: builds a MultiCounter with `m` cells.
    pub fn with_counters(m: usize) -> Self {
        Self::new(MultiCounter::new(m))
    }

    /// Access to the underlying counter (for skew diagnostics).
    pub fn counter(&self) -> &MultiCounter {
        &self.counter
    }

    /// The skew bound Δ a user should budget for: `κ · m · ln m`, the
    /// shape of Lemma 6.8's bound with a configurable constant.
    pub fn suggested_delta(&self, kappa: f64) -> u64 {
        let m = self.counter.num_counters() as f64;
        (kappa * m * m.ln()).ceil() as u64
    }
}

impl Clock for MultiCounterClock {
    #[inline]
    fn tick(&self) -> u64 {
        self.counter.increment();
        self.counter.read()
    }

    #[inline]
    fn now(&self) -> u64 {
        self.counter.read()
    }

    fn is_exact(&self) -> bool {
        false
    }
}

/// A trivially shareable atomic clock that only moves when told to —
/// used by tests to script exact timestamp sequences.
#[derive(Debug, Default)]
pub struct ManualClock {
    time: AtomicU64,
}

impl ManualClock {
    /// Creates a clock at zero.
    pub const fn new() -> Self {
        ManualClock {
            time: AtomicU64::new(0),
        }
    }

    /// Sets the time to exactly `t`.
    pub fn set(&self, t: u64) {
        self.time.store(t, Ordering::Release);
    }
}

impl Clock for ManualClock {
    fn tick(&self) -> u64 {
        self.time.fetch_add(1, Ordering::AcqRel) + 1
    }

    fn now(&self) -> u64 {
        self.time.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn faa_clock_ticks_are_unique_and_monotone() {
        let c = FaaClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.now(), 2);
        assert!(c.is_exact());
    }

    #[test]
    fn faa_clock_unique_under_contention() {
        let c = Arc::new(FaaClock::new());
        let mut all: Vec<u64> = std::thread::scope(|s| {
            let hs: Vec<_> = (0..4)
                .map(|_| {
                    let c = Arc::clone(&c);
                    s.spawn(move || (0..10_000).map(|_| c.tick()).collect::<Vec<_>>())
                })
                .collect();
            hs.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 40_000, "duplicate timestamps issued");
    }

    #[test]
    fn monotonic_clock_never_goes_backward() {
        let c = MonotonicNanoClock::new();
        let mut last = 0;
        for _ in 0..1000 {
            let t = c.now();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn per_thread_monotonicity_across_threads() {
        // The Section 7.1 clock assumption: if thread A's read happens
        // before thread B's read, A's value is not larger.
        let c = Arc::new(MonotonicNanoClock::new());
        let t1 = c.now();
        let c2 = Arc::clone(&c);
        let t2 = std::thread::spawn(move || c2.now()).join().unwrap();
        assert!(t2 >= t1);
    }

    #[test]
    fn multicounter_clock_advances_approximately() {
        let clock = MultiCounterClock::with_counters(8);
        assert!(!clock.is_exact());
        for _ in 0..1000 {
            clock.tick();
        }
        let exact = clock.counter().read_exact();
        assert_eq!(exact, 1000);
        // A sample is within m*max_gap of the exact total.
        let sample = clock.now();
        let slack = 8 * clock.counter().max_gap() + 8;
        assert!(
            (sample as i64 - exact as i64).unsigned_abs() <= slack,
            "sample {sample} vs exact {exact} (slack {slack})"
        );
    }

    #[test]
    fn suggested_delta_grows_with_m() {
        let small = MultiCounterClock::with_counters(8).suggested_delta(1.0);
        let large = MultiCounterClock::with_counters(64).suggested_delta(1.0);
        assert!(large > small);
    }

    #[test]
    fn manual_clock_scripting() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0);
        c.set(41);
        assert_eq!(c.tick(), 42);
        assert_eq!(c.now(), 42);
    }
}
