//! # dlz-core — the paper's data structures and correctness framework
//!
//! Core crate of the reproduction of *"Distributionally Linearizable
//! Data Structures"* (Alistarh, Brown, Kopinsky, Li, Nadiradze — SPAA
//! 2018, arXiv:1804.01018).
//!
//! ## What the paper contributes, and where it lives here
//!
//! | Paper | Here |
//! |---|---|
//! | Algorithm 1 (MultiCounter) | [`MultiCounter`] |
//! | Algorithm 2 (MultiQueue) | [`MultiQueue`], [`RelaxedFifo`] |
//! | Section 5 (distributional linearizability) | [`spec`] |
//! | Section 8 (relaxed timestamps) | [`clock`] |
//!
//! ## The MultiCounter in one paragraph
//!
//! `m` cache-padded atomic counters stand in for one logical counter.
//! An increment samples two cells uniformly, reads both, and atomically
//! increments whichever *looked* smaller; a read samples one cell and
//! multiplies by `m`. Sequentially this is the classic two-choice
//! balanced-allocation process, whose max-minus-average gap is
//! `O(log log m)`; concurrently the reads can be stale and the paper's
//! central theorem (6.1) shows the process still keeps an `O(log m)`
//! gap — hence reads deviate from the true count by `O(m log m)` —
//! under any oblivious schedule, provided `m ≥ C·n` for a large
//! constant `C`.
//!
//! ## Guarantees, precisely
//!
//! The structures here are **not** linearizable to their exact
//! sequential specifications — that is the point. They are
//! *distributionally linearizable* (Definition 5.2): every execution
//! maps onto a path of a relaxed sequential process whose per-step
//! costs (read deviation, dequeue rank) are random variables with
//! bounded tails. The [`spec`] module makes the definition executable:
//! record a history with update-point stamps, replay it through the
//! completed LTS, get the empirical cost distribution.
//!
//! ## Example
//!
//! ```
//! use dlz_core::{MultiCounter, RelaxedCounter};
//!
//! let c = MultiCounter::builder().counters(32).seed(1).build();
//! std::thread::scope(|s| {
//!     for _ in 0..2 {
//!         s.spawn(|| {
//!             for _ in 0..10_000 {
//!                 c.increment();
//!             }
//!         });
//!     }
//! });
//! assert_eq!(c.read_exact(), 20_000);       // increments are never lost
//! let err = (c.read() as i64 - 20_000).unsigned_abs();
//! assert!(err <= 32 * c.max_gap() + 32);    // reads are m·(cell), cell within gap of mean
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod counter;
pub mod json;
pub mod padded;
pub mod queue;
pub mod rng;
pub mod spec;

pub use clock::{Clock, FaaClock, ManualClock, MonotonicNanoClock, MultiCounterClock};
pub use counter::{
    DChoiceCounter, ExactCounter, MultiCounter, MultiCounterBuilder, PendingIncrement,
    RelaxedCounter, ShardedCounter,
};
pub use dlz_pq::ContentionStats;
pub use dlz_pq::Poisoned;
pub use dlz_pq::SubstrateCfg;
pub use queue::{
    AdaptiveSticky, AnyPolicy, ChoiceOp, ChoicePolicy, DChoice, DeleteMode, MqHandle, MqOpTimeout,
    MultiQueue, MultiQueueBuilder, PolicyCfg, QueueView, RelaxedFifo, SalvageOutcome, Stamped,
    Sticky, TwoChoice,
};
