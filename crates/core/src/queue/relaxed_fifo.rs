//! The queue-like façade over the MultiQueue: timestamp priorities.
//!
//! Section 7.1: "to enqueue, a thread reads the wall clock, chooses a
//! random priority queue, and adds the element to that priority queue
//! with priority given by the time." This wrapper does exactly that,
//! generic over the [`Clock`]. With an exact clock every element has a
//! unique, insertion-ordered timestamp, so dequeue rank error equals
//! "how far from FIFO" the structure is — the quantity Theorem 7.1
//! bounds by O(m) in expectation.

use dlz_pq::{BinaryHeap, SeqPriorityQueue};

use crate::clock::{Clock, FaaClock};
use crate::queue::{DeleteMode, MultiQueue, TwoChoice};
use crate::rng::{with_thread_rng, Rng64};

/// A relaxed FIFO queue: MultiQueue + clock-assigned priorities.
///
/// # Example
/// ```
/// use dlz_core::{RelaxedFifo, clock::FaaClock};
/// use dlz_core::rng::Xoshiro256;
///
/// let q: RelaxedFifo<&str> = RelaxedFifo::new(4, FaaClock::new());
/// let mut rng = Xoshiro256::new(1);
/// q.enqueue_with(&mut rng, "first");
/// q.enqueue_with(&mut rng, "second");
/// // Dequeues return *approximately* oldest-first; both come out.
/// let a = q.dequeue_with(&mut rng).unwrap();
/// let b = q.dequeue_with(&mut rng).unwrap();
/// assert_ne!(a, b);
/// ```
#[derive(Debug)]
pub struct RelaxedFifo<V, C = FaaClock, Q = BinaryHeap<u64, V>>
where
    V: Send,
    C: Clock,
    Q: SeqPriorityQueue<u64, V> + Send,
{
    mq: MultiQueue<V, Q>,
    clock: C,
}

impl<V: Send, C: Clock> RelaxedFifo<V, C> {
    /// Creates a relaxed FIFO with `m` internal binary-heap queues.
    pub fn new(m: usize, clock: C) -> Self {
        RelaxedFifo {
            mq: MultiQueue::with_queues(
                (0..m).map(|_| BinaryHeap::new()).collect(),
                DeleteMode::Strict,
            ),
            clock,
        }
    }
}

impl<V: Send, C: Clock, Q: SeqPriorityQueue<u64, V> + Send> RelaxedFifo<V, C, Q> {
    /// Builds from explicit internal queues.
    pub fn with_queues(queues: Vec<Q>, mode: DeleteMode, clock: C) -> Self {
        RelaxedFifo {
            mq: MultiQueue::with_queues(queues, mode),
            clock,
        }
    }

    /// Enqueue with an explicit generator; the timestamp comes from the
    /// clock at call time (Algorithm 2's `Clock.Read()`).
    pub fn enqueue_with(&self, rng: &mut impl Rng64, value: V) {
        let ts = self.clock.tick();
        self.mq.insert(&mut TwoChoice, rng, ts, value);
    }

    /// Dequeue with an explicit generator: an approximately-oldest
    /// element, or `None` if observed empty.
    pub fn dequeue_with(&self, rng: &mut impl Rng64) -> Option<V> {
        self.mq.dequeue(&mut TwoChoice, rng).map(|(_, v)| v)
    }

    /// Dequeue returning the element's enqueue timestamp too.
    pub fn dequeue_with_timestamp(&self, rng: &mut impl Rng64) -> Option<(u64, V)> {
        self.mq.dequeue(&mut TwoChoice, rng)
    }

    /// Convenience enqueue using the thread-local generator.
    pub fn enqueue(&self, value: V) {
        with_thread_rng(|rng| self.enqueue_with(rng, value));
    }

    /// Convenience dequeue using the thread-local generator.
    pub fn dequeue(&self) -> Option<V> {
        with_thread_rng(|rng| self.dequeue_with(rng))
    }

    /// Observed number of queued elements. Exact when quiescent.
    pub fn len(&self) -> usize {
        self.mq.len()
    }

    /// `true` if observed empty. Exact when quiescent.
    pub fn is_empty(&self) -> bool {
        self.mq.is_empty()
    }

    /// The underlying MultiQueue (for checkers and diagnostics).
    pub fn multiqueue(&self) -> &MultiQueue<V, Q> {
        &self.mq
    }

    /// The clock used for timestamps.
    pub fn clock(&self) -> &C {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{FaaClock, MonotonicNanoClock};
    use crate::rng::Xoshiro256;
    use std::sync::Arc;

    #[test]
    fn everything_enqueued_is_dequeued_once() {
        let q: RelaxedFifo<u64> = RelaxedFifo::new(8, FaaClock::new());
        let mut rng = Xoshiro256::new(1);
        for v in 0..2_000u64 {
            q.enqueue_with(&mut rng, v);
        }
        let mut out: Vec<u64> = std::iter::from_fn(|| q.dequeue_with(&mut rng)).collect();
        out.sort_unstable();
        assert_eq!(out, (0..2_000u64).collect::<Vec<_>>());
    }

    #[test]
    fn dequeue_order_is_near_fifo() {
        // Sequential execution, m = 8: the dequeue rank (how many older
        // elements were still present) must stay O(m)-ish.
        let m = 8;
        let q: RelaxedFifo<u64> = RelaxedFifo::new(m, FaaClock::new());
        let mut rng = Xoshiro256::new(2);
        let n = 5_000u64;
        for v in 0..n {
            q.enqueue_with(&mut rng, v);
        }
        use std::collections::BTreeSet;
        let mut present: BTreeSet<u64> = (0..n).collect();
        let mut max_rank = 0;
        while let Some(v) = q.dequeue_with(&mut rng) {
            let rank = present.range(..v).count();
            max_rank = max_rank.max(rank);
            present.remove(&v);
        }
        assert!(present.is_empty());
        assert!(max_rank <= 30 * m, "max FIFO violation {max_rank}");
    }

    #[test]
    fn wall_clock_timestamps_are_monotone_per_thread() {
        let q: RelaxedFifo<u64, MonotonicNanoClock> =
            RelaxedFifo::new(4, MonotonicNanoClock::new());
        let mut rng = Xoshiro256::new(3);
        for v in 0..100u64 {
            q.enqueue_with(&mut rng, v);
        }
        // Timestamps seen at dequeue reflect enqueue order: element v's
        // timestamp <= element (v+1)'s (single-threaded enqueues).
        let mut ts_by_value = vec![0u64; 100];
        while let Some((ts, v)) = q.dequeue_with_timestamp(&mut rng) {
            ts_by_value[v as usize] = ts;
        }
        for w in ts_by_value.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn mpmc_stress_conserves() {
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        const PER: u64 = 5_000;
        let q: Arc<RelaxedFifo<u64>> = Arc::new(RelaxedFifo::new(8, FaaClock::new()));
        let got: Vec<u64> = std::thread::scope(|s| {
            for t in 0..PRODUCERS {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    let mut rng = Xoshiro256::new(50 + t as u64);
                    for i in 0..PER {
                        q.enqueue_with(&mut rng, t as u64 * PER + i);
                    }
                });
            }
            let hs: Vec<_> = (0..CONSUMERS)
                .map(|t| {
                    let q = Arc::clone(&q);
                    s.spawn(move || {
                        let mut rng = Xoshiro256::new(80 + t as u64);
                        let mut got = Vec::new();
                        let target = PRODUCERS as u64 * PER / CONSUMERS as u64;
                        while (got.len() as u64) < target {
                            if let Some(v) = q.dequeue_with(&mut rng) {
                                got.push(v);
                            }
                        }
                        got
                    })
                })
                .collect();
            hs.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut all = got;
        all.sort_unstable();
        assert_eq!(all, (0..PRODUCERS as u64 * PER).collect::<Vec<_>>());
    }

    #[test]
    fn accessors() {
        let q: RelaxedFifo<u8> = RelaxedFifo::new(3, FaaClock::new());
        assert!(q.is_empty());
        assert_eq!(q.multiqueue().num_queues(), 3);
        q.enqueue(9);
        assert_eq!(q.len(), 1);
        assert!(q.clock().now() >= 1);
    }
}
