//! Pluggable choice policies — the MultiQueue's selection layer as a
//! first-class object.
//!
//! The paper's central result is that the MultiQueue is
//! *distributionally* linearizable: the rank-error guarantee is a
//! property of the **choice process** (two-choice sampling, d-choice,
//! stickiness) layered over the `m` sequential queues, not of any one
//! hard-coded method. This module reifies that process as the
//! [`ChoicePolicy`] trait, so every future policy is a small type
//! implementing four methods instead of a new family of `insert_*` /
//! `dequeue_*` clones on the structure itself.
//!
//! Policies are **per-handle by construction**: every method takes
//! `&mut self`, and a policy instance lives inside one
//! [`MqHandle`](crate::queue::MqHandle) (or one worker). The shared
//! [`MultiQueue`](crate::queue::MultiQueue) stays `&self` and carries
//! only a [`PolicyCfg`] — the declarative description from which each
//! handle builds its own state.
//!
//! | policy | dequeue choice | expected-rank envelope |
//! |---|---|---|
//! | [`TwoChoice`] | best of 2 sampled hints (Algorithm 2) | O(m) |
//! | [`DChoice`] | best of `d` sampled hints | O(m) for `d ≥ 2` |
//! | [`Sticky`] | camp on one queue for `s` same-kind ops | O(s·m) |
//! | [`AdaptiveSticky`] | camp, widening/narrowing `s` online | O(s_observed·m), `s ≤ s_max` |
//!
//! # Example
//!
//! ```
//! use dlz_core::queue::{MqHandle, MultiQueue, PolicyCfg, Sticky};
//!
//! // Structure-level default policy: every `handle()` inherits it.
//! let mq: MultiQueue<u64> = MultiQueue::<u64>::builder()
//!     .queues(8)
//!     .policy(PolicyCfg::Sticky { ops: 4 })
//!     .build();
//! let mut h = mq.handle(1);
//! for p in 0..100 {
//!     h.insert(p, p);
//! }
//! // Per-handle override: this handle samples fresh queues every op
//! // while the one above keeps camping.
//! let mut fresh = MqHandle::with_policy(&mq, 2, Sticky::new(1));
//! let mut drained = 0;
//! while h.dequeue().is_some() || fresh.dequeue().is_some() {
//!     drained += 1;
//! }
//! assert_eq!(drained, 100);
//! ```

use dlz_pq::locked::header::gen_delta;
use dlz_pq::locked::EMPTY_HINT;
use dlz_pq::ContentionStats;

use crate::rng::Rng64;

/// What a policy can observe about the structure it is choosing over:
/// the queue count `m`, the lock-free per-queue min hints (Algorithm
/// 2's `ReadMin`), and the packed-header generation — a cheap
/// change-rate signal adaptive policies consume.
///
/// Implemented by [`MultiQueue`](crate::queue::MultiQueue); policies
/// never see the queues themselves, only this read-only view.
pub trait QueueView {
    /// Number of internal queues (the paper's `m`).
    fn num_queues(&self) -> usize;

    /// Queue `i`'s published min-priority hint (`u64::MAX` when the
    /// queue is believed empty). Lock-free and possibly stale — that
    /// staleness is the relaxation the paper analyzes.
    fn queue_hint(&self, i: usize) -> u64;

    /// Queue `i`'s header generation, or `None` while its lock is held.
    /// The generation bumps once per unlock, so the delta between two
    /// snapshots counts the critical sections that completed in
    /// between (see [`dlz_pq::locked::header::gen_delta`]).
    fn queue_generation(&self, i: usize) -> Option<u64>;

    /// `true` if queue `i` is poisoned (a critical section panicked in
    /// it) and should be chosen around. Defaults to `false` for views
    /// that cannot be poisoned. Poisoned queues also publish the empty
    /// hint, so hint-driven dequeue sampling skips them without an
    /// extra check — this predicate exists for callers that need the
    /// distinction (quarantine accounting, salvage sweeps).
    fn queue_poisoned(&self, i: usize) -> bool {
        let _ = i;
        false
    }
}

/// Which kind of operation a policy callback refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoiceOp {
    /// An enqueue/insert.
    Insert,
    /// A dequeue/delete-min.
    Dequeue,
}

/// The choice process over a MultiQueue's internal queues.
///
/// The structure drives the policy through a small protocol:
///
/// 1. [`choose_insert`](Self::choose_insert) /
///    [`choose_dequeue`](Self::choose_dequeue) pick the queue for the
///    next operation (possibly reusing a camped queue without touching
///    the hint lines). `choose_dequeue` returns `None` when every
///    sampled hint read empty — the caller backs off and retries.
/// 2. After the operation lands, [`on_success`](Self::on_success) fires
///    with the serving queue, letting stateful policies start or
///    continue a camp.
/// 3. If the chosen queue was contended (try-lock failure) or turned
///    out empty (stale hint, drained camp),
///    [`on_contention`](Self::on_contention) fires and the structure
///    asks for a fresh choice.
///
/// Methods take `&mut self` and `impl`-trait parameters (no trait
/// objects): policy state is per-handle by construction and every call
/// monomorphizes down to the same code the hand-written paths compiled
/// to.
pub trait ChoicePolicy {
    /// Chooses the queue for the next insert.
    fn choose_insert(&mut self, rng: &mut impl Rng64, view: &impl QueueView) -> usize;

    /// Chooses the queue for the next dequeue, or `None` when every
    /// hint the policy sampled read empty (the caller treats this as
    /// "possibly empty": it backs off, re-checks global emptiness and
    /// retries).
    fn choose_dequeue(&mut self, rng: &mut impl Rng64, view: &impl QueueView) -> Option<usize>;

    /// The chosen queue served the operation.
    fn on_success(&mut self, op: ChoiceOp, queue: usize, view: &impl QueueView) {
        let _ = (op, queue, view);
    }

    /// The chosen queue was contended or observed empty; the next
    /// `choose_*` call should pick somewhere else.
    fn on_contention(&mut self, op: ChoiceOp, queue: usize) {
        let _ = (op, queue);
    }

    /// The chosen queue turned out poisoned (a critical section
    /// panicked in it — see [`dlz_pq::Poisoned`]). The queue is
    /// quarantined: it will keep refusing locks until salvaged, so a
    /// camping policy must abandon any camp on it and the next
    /// `choose_*` call must pick somewhere else. Poison is **not**
    /// contention — camping policies evict only a camp pinned to the
    /// dead queue and must not treat the event as a congestion signal
    /// (it says nothing about traffic). The default is a no-op for
    /// stateless policies.
    fn on_poisoned(&mut self, op: ChoiceOp, queue: usize) {
        let _ = (op, queue);
    }

    /// The policy's rank-envelope factor `f`: expected dequeue rank is
    /// O(`f`·m) in the style of Theorem 7.1 (1 for fresh two-choice
    /// sampling, `s` for stickiness). Adaptive policies report the
    /// widest stickiness they actually used, so the envelope is sound
    /// for the run that just happened. Non-finite means "no bound"
    /// (single-choice sampling diverges).
    fn envelope_factor(&self) -> f64 {
        1.0
    }

    /// Drains the policy's internal telemetry counters (camp switches,
    /// adaptive-`s` transitions) into `stats` and refreshes the
    /// `adaptive_s` gauge. Policies without internal counters need not
    /// implement this. Must not affect choice behaviour or consume
    /// randomness — telemetry reads state, it never perturbs it.
    fn flush_telemetry(&mut self, stats: &mut ContentionStats) {
        let _ = stats;
    }
}

/// One two-choice sample (Algorithm 2's `ReadMin` pair): the chosen
/// queue index, or `None` when both sampled hints read empty.
/// `if pi > pj: i = j` — ties stay with `i`. Draw order (`i` then `j`)
/// is part of the contract: it keeps [`TwoChoice`] bit-for-bit
/// compatible with the pre-policy implementation under a fixed seed.
#[inline]
fn two_choice_sample(rng: &mut impl Rng64, view: &impl QueueView) -> Option<usize> {
    let m = view.num_queues() as u64;
    let i = rng.bounded(m) as usize;
    let j = rng.bounded(m) as usize;
    let hi = view.queue_hint(i);
    let hj = view.queue_hint(j);
    if hi == EMPTY_HINT && hj == EMPTY_HINT {
        return None;
    }
    Some(if hi <= hj { i } else { j })
}

/// Algorithm 2 as written: every insert lands on one uniformly random
/// queue; every dequeue takes the apparently-better of two uniformly
/// random queues. Stateless — the zero-sized default policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoChoice;

impl ChoicePolicy for TwoChoice {
    #[inline]
    fn choose_insert(&mut self, rng: &mut impl Rng64, view: &impl QueueView) -> usize {
        rng.bounded(view.num_queues() as u64) as usize
    }

    #[inline]
    fn choose_dequeue(&mut self, rng: &mut impl Rng64, view: &impl QueueView) -> Option<usize> {
        two_choice_sample(rng, view)
    }
}

/// The d-choice generalization: dequeues sample the best of `d` hints.
/// `d = 1` removes from a single random queue (the divergent
/// single-choice regime — no rank envelope); `d = 2` is [`TwoChoice`];
/// larger `d` tightens the rank distribution at the price of `d` hint
/// reads per dequeue. Inserts stay single-sample, as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DChoice {
    /// Hints sampled per dequeue (≥ 1).
    pub d: usize,
}

impl DChoice {
    /// A policy sampling `d` queues per dequeue; `0` is treated as `1`.
    pub fn new(d: usize) -> Self {
        DChoice { d: d.max(1) }
    }
}

impl ChoicePolicy for DChoice {
    #[inline]
    fn choose_insert(&mut self, rng: &mut impl Rng64, view: &impl QueueView) -> usize {
        rng.bounded(view.num_queues() as u64) as usize
    }

    fn choose_dequeue(&mut self, rng: &mut impl Rng64, view: &impl QueueView) -> Option<usize> {
        let m = view.num_queues() as u64;
        let mut best = rng.bounded(m) as usize;
        let mut best_hint = view.queue_hint(best);
        for _ in 1..self.d.max(1) {
            let c = rng.bounded(m) as usize;
            let h = view.queue_hint(c);
            // Strict `<`: ties keep the earlier draw, matching the
            // pre-policy `dequeue_k_with` and (at d = 2) `TwoChoice`.
            if h < best_hint {
                best = c;
                best_hint = h;
            }
        }
        if best_hint == EMPTY_HINT {
            None
        } else {
            Some(best)
        }
    }

    fn envelope_factor(&self) -> f64 {
        if self.d >= 2 {
            1.0
        } else {
            f64::INFINITY
        }
    }
}

/// One camp: the queue an operation kind is parked on and how many
/// operations of that kind remain there.
#[derive(Debug, Clone, Copy, Default)]
struct Camp {
    queue: usize,
    left: usize,
}

/// Static stickiness: a handle keeps its chosen queue for up to `s`
/// consecutive **same-kind** operations, skipping the random draws and
/// hint reads in between. Inserts and dequeues camp independently —
/// interleaving the two kinds does not disturb either camp.
///
/// Contention or an empty camped queue voids the camp early. The price
/// is rank quality: while a handle camps it may take up to `s` elements
/// in a row from one queue, so the expected dequeue rank degrades from
/// O(m) to **O(s·m)** — the shape of Theorem 7.1 with the relaxation
/// factor scaled by `s`. The workload layer verifies this envelope
/// empirically. With `s = 1` the policy is operation-for-operation
/// identical to [`TwoChoice`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Sticky {
    ops: usize,
    insert: Camp,
    dequeue: Camp,
    /// Whether the last dequeue choice was a fresh sample (a success
    /// then starts a camp) or a camp reuse (a success just continues).
    dequeue_was_fresh: bool,
    /// Fresh camps started since the last telemetry flush.
    camp_switches: u64,
}

impl Sticky {
    /// A policy keeping the chosen queue for `ops` consecutive
    /// same-kind operations; `0` is treated as `1` (no stickiness).
    pub fn new(ops: usize) -> Self {
        Sticky {
            ops: ops.max(1),
            ..Sticky::default()
        }
    }

    /// Consecutive same-kind operations per chosen queue.
    pub fn ops(&self) -> usize {
        self.ops
    }

    /// `true` if the policy actually changes behaviour.
    pub fn is_active(&self) -> bool {
        self.ops > 1
    }
}

impl ChoicePolicy for Sticky {
    fn choose_insert(&mut self, rng: &mut impl Rng64, view: &impl QueueView) -> usize {
        if self.insert.left > 0 {
            self.insert.left -= 1;
            return self.insert.queue;
        }
        let q = rng.bounded(view.num_queues() as u64) as usize;
        self.insert = Camp {
            queue: q,
            left: self.ops - 1,
        };
        if self.ops > 1 {
            self.camp_switches += 1;
        }
        q
    }

    fn choose_dequeue(&mut self, rng: &mut impl Rng64, view: &impl QueueView) -> Option<usize> {
        if self.dequeue.left > 0 {
            self.dequeue.left -= 1;
            self.dequeue_was_fresh = false;
            return Some(self.dequeue.queue);
        }
        self.dequeue_was_fresh = true;
        two_choice_sample(rng, view)
    }

    fn on_success(&mut self, op: ChoiceOp, queue: usize, _view: &impl QueueView) {
        // Dequeue camps start on a *successful* fresh sample (camping on
        // a queue that just proved empty would waste the whole camp);
        // insert camps were already started in `choose_insert`.
        if op == ChoiceOp::Dequeue && self.dequeue_was_fresh && self.ops > 1 {
            self.dequeue = Camp {
                queue,
                left: self.ops - 1,
            };
            self.camp_switches += 1;
        }
    }

    fn on_contention(&mut self, op: ChoiceOp, _queue: usize) {
        match op {
            ChoiceOp::Insert => self.insert.left = 0,
            ChoiceOp::Dequeue => self.dequeue.left = 0,
        }
    }

    fn on_poisoned(&mut self, _op: ChoiceOp, queue: usize) {
        // A quarantined queue refuses every lock: evict whichever camps
        // are pinned to it (both kinds — the queue is dead for inserts
        // and dequeues alike), but leave camps elsewhere untouched.
        if self.insert.queue == queue {
            self.insert.left = 0;
        }
        if self.dequeue.queue == queue {
            self.dequeue.left = 0;
        }
    }

    fn envelope_factor(&self) -> f64 {
        self.ops as f64
    }

    fn flush_telemetry(&mut self, stats: &mut ContentionStats) {
        stats.camp_switches += self.camp_switches;
        self.camp_switches = 0;
    }
}

/// How many consecutive uncontended fresh samples it takes an
/// [`AdaptiveSticky`] at `s = 1` to start camping again.
const ADAPTIVE_REARM: u32 = 8;

/// Adaptive stickiness: camps like [`Sticky`], but widens/narrows the
/// camp length `s` online from the packed-header **generation**
/// change-rate signal (see
/// [`QueueView::queue_generation`]).
///
/// When a dequeue camp ends, the policy compares the camped queue's
/// generation delta against its own completed operations there. Each of
/// our operations bumps the generation once, so any excess is foreign
/// traffic on the same queue:
///
/// * excess **> own ops** (the queue is shared) → halve `s`;
/// * little or no excess (the camp was quiet) → double `s`, up to
///   `s_max`.
///
/// Contention (a failed try-lock, a drained camp, a locked generation
/// read) halves `s` immediately. At `s = 1` the policy behaves as
/// [`TwoChoice`] and re-arms after a short streak of consecutive
/// uncontended operations, so it can recover from a contention burst.
///
/// The **insert side adapts independently**: inserts have no
/// generation measurement (nothing is read back), so their camp length
/// `s_insert` is driven purely by the try-lock failure rate — a failed
/// insert lock halves `s_insert`, and every `ADAPTIVE_REARM`
/// consecutive uncontended inserts double it. A dequeue-side congestion
/// collapse therefore does not shrink insert camps (and vice versa),
/// which matters under asymmetric load where one kind dominates.
/// [`current`](Self::current) reports the dequeue-side `s` (the one the
/// rank envelope cares about and the `adaptive_s` gauge exports);
/// [`current_insert`](Self::current_insert) reports the insert side.
///
/// Neither `s` ever exceeds the configured `s_max`, so the rank
/// envelope O(s_max·m) always holds a priori;
/// [`envelope_factor`](ChoicePolicy::envelope_factor) reports the
/// widest `s` either side actually reached, giving the tighter
/// observed-s envelope for the run.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveSticky {
    s_max: usize,
    s: usize,
    /// Insert-side camp length, adapted from try-lock failures alone.
    s_insert: usize,
    observed_max: usize,
    insert: Camp,
    dequeue: Camp,
    dequeue_was_fresh: bool,
    /// Generation of the dequeue camp's queue at camp start, if a camp
    /// is being measured.
    camp_gen: Option<u64>,
    /// Our completed dequeues in the measured camp.
    camp_ops: u64,
    /// Consecutive uncontended successes while `s == 1`.
    quiet_streak: u32,
    /// Consecutive uncontended insert successes (insert-side widening
    /// signal — inserts have no generation measurement to consume).
    insert_quiet: u32,
    /// Fresh camps started since the last telemetry flush.
    camp_switches: u64,
    /// `s`-doubling transitions since the last telemetry flush (both
    /// sides).
    widens: u64,
    /// `s`-halving transitions since the last telemetry flush (both
    /// sides).
    narrows: u64,
}

impl AdaptiveSticky {
    /// A policy that adapts its stickiness within `1..=s_max`
    /// (`s_max = 0` is treated as 1, i.e. never camp). Starts at
    /// `min(2, s_max)` so the first camps generate an adaptation
    /// signal immediately.
    pub fn new(s_max: usize) -> Self {
        let s_max = s_max.max(1);
        let s = s_max.min(2);
        AdaptiveSticky {
            s_max,
            s,
            s_insert: s,
            observed_max: s,
            insert: Camp::default(),
            dequeue: Camp::default(),
            dequeue_was_fresh: false,
            camp_gen: None,
            camp_ops: 0,
            quiet_streak: 0,
            insert_quiet: 0,
            camp_switches: 0,
            widens: 0,
            narrows: 0,
        }
    }

    /// The configured upper bound on stickiness.
    pub fn s_max(&self) -> usize {
        self.s_max
    }

    /// The current dequeue-side camp length (the `adaptive_s` gauge).
    pub fn current(&self) -> usize {
        self.s
    }

    /// The current insert-side camp length, adapted independently from
    /// the insert try-lock failure rate.
    pub fn current_insert(&self) -> usize {
        self.s_insert
    }

    /// The widest camp length the policy has used so far (either side).
    pub fn observed_max(&self) -> usize {
        self.observed_max
    }

    fn widen(&mut self) {
        let before = self.s;
        self.s = (self.s * 2).clamp(1, self.s_max);
        self.observed_max = self.observed_max.max(self.s);
        if self.s != before {
            self.widens += 1;
        }
    }

    fn narrow(&mut self) {
        let before = self.s;
        self.s = (self.s / 2).max(1);
        self.quiet_streak = 0;
        if self.s != before {
            self.narrows += 1;
        }
    }

    fn widen_insert(&mut self) {
        let before = self.s_insert;
        self.s_insert = (self.s_insert * 2).clamp(1, self.s_max);
        self.observed_max = self.observed_max.max(self.s_insert);
        if self.s_insert != before {
            self.widens += 1;
        }
    }

    fn narrow_insert(&mut self) {
        let before = self.s_insert;
        self.s_insert = (self.s_insert / 2).max(1);
        self.insert_quiet = 0;
        if self.s_insert != before {
            self.narrows += 1;
        }
    }

    /// Consumes the finished camp's generation measurement and adapts.
    fn adapt_from_camp(&mut self, view: &impl QueueView) {
        let Some(start) = self.camp_gen.take() else {
            return;
        };
        let own = self.camp_ops;
        self.camp_ops = 0;
        match view.queue_generation(self.dequeue.queue) {
            // Locked right now: someone else is inside our queue.
            None => self.narrow(),
            Some(now) => {
                let total = gen_delta(start, now);
                let foreign = total.saturating_sub(own);
                if foreign > own {
                    self.narrow();
                } else {
                    self.widen();
                }
            }
        }
    }
}

impl ChoicePolicy for AdaptiveSticky {
    fn choose_insert(&mut self, rng: &mut impl Rng64, view: &impl QueueView) -> usize {
        if self.insert.left > 0 {
            self.insert.left -= 1;
            return self.insert.queue;
        }
        let q = rng.bounded(view.num_queues() as u64) as usize;
        self.insert = Camp {
            queue: q,
            left: self.s_insert - 1,
        };
        if self.s_insert > 1 {
            self.camp_switches += 1;
        }
        q
    }

    fn choose_dequeue(&mut self, rng: &mut impl Rng64, view: &impl QueueView) -> Option<usize> {
        if self.dequeue.left > 0 {
            self.dequeue.left -= 1;
            self.dequeue_was_fresh = false;
            return Some(self.dequeue.queue);
        }
        self.adapt_from_camp(view);
        self.dequeue_was_fresh = true;
        two_choice_sample(rng, view)
    }

    fn on_success(&mut self, op: ChoiceOp, queue: usize, view: &impl QueueView) {
        match op {
            ChoiceOp::Insert => {
                // Inserts have no generation measurement: the only
                // signal is the try-lock failure rate, so a streak of
                // uncontended inserts is the widening condition.
                self.insert_quiet += 1;
                if self.insert_quiet >= ADAPTIVE_REARM {
                    self.insert_quiet = 0;
                    self.widen_insert();
                }
            }
            ChoiceOp::Dequeue if self.dequeue_was_fresh => {
                if self.s > 1 {
                    self.dequeue = Camp {
                        queue,
                        left: self.s - 1,
                    };
                    // The baseline generation is read *after* our
                    // successful dequeue bumped it, so it already
                    // accounts for that op: own bumps since the
                    // baseline start at 0 and foreign = delta - own
                    // is exact.
                    self.camp_gen = view.queue_generation(queue);
                    self.camp_ops = 0;
                    self.camp_switches += 1;
                } else {
                    self.quiet_streak += 1;
                    if self.quiet_streak >= ADAPTIVE_REARM {
                        self.quiet_streak = 0;
                        self.widen();
                    }
                }
            }
            ChoiceOp::Dequeue => self.camp_ops += 1,
        }
    }

    fn on_contention(&mut self, op: ChoiceOp, _queue: usize) {
        // Each kind narrows only its own side: an insert-lock pile-up
        // says nothing about dequeue congestion (and vice versa), so
        // under asymmetric load the two camp lengths diverge.
        match op {
            ChoiceOp::Insert => {
                self.insert.left = 0;
                self.narrow_insert();
            }
            ChoiceOp::Dequeue => {
                self.dequeue.left = 0;
                // The measurement is void: the camp ended abnormally.
                self.camp_gen = None;
                self.camp_ops = 0;
                self.narrow();
            }
        }
    }

    fn on_poisoned(&mut self, _op: ChoiceOp, queue: usize) {
        // Evict camps pinned to the quarantined queue; unlike
        // `on_contention`, do NOT narrow `s` — poison says nothing
        // about traffic, and adapting to it would punish the survivors.
        if self.insert.queue == queue {
            self.insert.left = 0;
        }
        if self.dequeue.queue == queue {
            self.dequeue.left = 0;
            // Any generation measurement of a dead queue is void.
            self.camp_gen = None;
            self.camp_ops = 0;
        }
    }

    fn envelope_factor(&self) -> f64 {
        self.observed_max as f64
    }

    fn flush_telemetry(&mut self, stats: &mut ContentionStats) {
        stats.camp_switches += self.camp_switches;
        stats.s_widens += self.widens;
        stats.s_narrows += self.narrows;
        self.camp_switches = 0;
        self.widens = 0;
        self.narrows = 0;
        stats.adaptive_s = self.s as u64;
    }
}

/// Declarative description of a choice policy — what a
/// [`MultiQueue`](crate::queue::MultiQueue) (or a workload scenario)
/// carries so each handle can [`build`](Self::build) its own
/// per-handle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyCfg {
    /// Fresh two-choice sampling every operation (Algorithm 2).
    #[default]
    TwoChoice,
    /// Best-of-`d` dequeue sampling.
    DChoice {
        /// Hints sampled per dequeue (≥ 1).
        d: usize,
    },
    /// Camp on the chosen queue for `ops` consecutive same-kind ops.
    Sticky {
        /// Consecutive same-kind operations per chosen queue (≥ 1).
        ops: usize,
    },
    /// Stickiness adapted online within `1..=s_max` from the
    /// generation change-rate signal.
    AdaptiveSticky {
        /// Upper bound on the adapted camp length.
        s_max: usize,
    },
}

impl PolicyCfg {
    /// Builds a fresh per-handle policy instance.
    pub fn build(self) -> AnyPolicy {
        match self {
            PolicyCfg::TwoChoice => AnyPolicy::TwoChoice(TwoChoice),
            PolicyCfg::DChoice { d } => AnyPolicy::DChoice(DChoice::new(d)),
            PolicyCfg::Sticky { ops } => AnyPolicy::Sticky(Sticky::new(ops)),
            PolicyCfg::AdaptiveSticky { s_max } => {
                AnyPolicy::AdaptiveSticky(AdaptiveSticky::new(s_max))
            }
        }
    }

    /// The a-priori rank-envelope factor (see
    /// [`ChoicePolicy::envelope_factor`]): the worst the policy can do
    /// before observing anything.
    pub fn envelope_factor(self) -> f64 {
        match self {
            PolicyCfg::TwoChoice => 1.0,
            PolicyCfg::DChoice { d } => {
                if d >= 2 {
                    1.0
                } else {
                    f64::INFINITY
                }
            }
            PolicyCfg::Sticky { ops } => ops.max(1) as f64,
            PolicyCfg::AdaptiveSticky { s_max } => s_max.max(1) as f64,
        }
    }

    /// `true` if the config does **not** deviate from plain two-choice
    /// sampling (the paper's Algorithm 2 behaviour).
    pub fn is_default(self) -> bool {
        matches!(
            self,
            PolicyCfg::TwoChoice
                | PolicyCfg::DChoice { d: 2 }
                | PolicyCfg::Sticky { ops: 1 }
                | PolicyCfg::AdaptiveSticky { s_max: 1 }
        )
    }

    /// Short human-readable label used in backend names and reports.
    pub fn label(self) -> String {
        match self {
            PolicyCfg::TwoChoice => "two-choice".to_string(),
            PolicyCfg::DChoice { d } => format!("d-choice(d={d})"),
            PolicyCfg::Sticky { ops } => format!("sticky(s={ops})"),
            PolicyCfg::AdaptiveSticky { s_max } => format!("adaptive(s_max={s_max})"),
        }
    }

    /// Parses a policy description — the inverse of [`label`](Self::label)
    /// plus the compact CLI forms:
    ///
    /// * `two-choice` (also `twochoice`, `2choice`)
    /// * `d-choice=4` (also `dchoice4`, `d-choice(d=4)`)
    /// * `sticky=16` (also `sticky16`, `sticky(s=16)`)
    /// * `adaptive=16` (also `adaptive16`, `adaptive(s_max=16)`)
    pub fn parse(s: &str) -> Result<PolicyCfg, String> {
        // Normalize the label round-trip forms down to `name=N`.
        let t = s
            .trim()
            .to_lowercase()
            .replace("(s_max=", "=")
            .replace("(s=", "=")
            .replace("(d=", "=")
            .replace(['(', ')'], "");
        let (name, num) = match t.find(|c: char| c.is_ascii_digit()) {
            Some(i) if i > 0 => (&t[..i], &t[i..]),
            _ => (t.as_str(), ""),
        };
        let name = name.trim_end_matches(['=', '-', '_']);
        let parse_num = |what: &str| -> Result<usize, String> {
            num.parse::<usize>()
                .map_err(|_| format!("policy '{s}': '{num}' is not a valid {what}"))
        };
        match name {
            "two-choice" | "twochoice" | "two_choice" | "2choice" => {
                if num.is_empty() {
                    Ok(PolicyCfg::TwoChoice)
                } else {
                    // A numeric suffix on a no-parameter policy is most
                    // likely a typo for sticky=N / d-choice=N — reject
                    // rather than silently drop it.
                    Err(format!("policy '{s}': two-choice takes no parameter"))
                }
            }
            "d-choice" | "dchoice" | "d" => Ok(PolicyCfg::DChoice { d: parse_num("d")? }),
            "sticky" | "s" => Ok(PolicyCfg::Sticky {
                ops: parse_num("camp length")?,
            }),
            "adaptive" | "adaptivesticky" | "adaptive-sticky" | "adaptive_sticky" => {
                Ok(PolicyCfg::AdaptiveSticky {
                    s_max: parse_num("s_max")?,
                })
            }
            _ => Err(format!(
                "unknown policy '{s}' (expected two-choice, d-choice=N, sticky=N or adaptive=N)"
            )),
        }
    }
}

impl std::str::FromStr for PolicyCfg {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicyCfg::parse(s)
    }
}

/// Runtime-dispatched policy: any [`PolicyCfg`] as a live instance.
/// This is what configuration-driven callers (the workload engine, the
/// default [`MultiQueue::handle`](crate::queue::MultiQueue::handle))
/// hold; monomorphizing callers use the concrete types directly and
/// pay no dispatch at all.
#[derive(Debug, Clone, Copy)]
pub enum AnyPolicy {
    /// See [`TwoChoice`].
    TwoChoice(TwoChoice),
    /// See [`DChoice`].
    DChoice(DChoice),
    /// See [`Sticky`].
    Sticky(Sticky),
    /// See [`AdaptiveSticky`].
    AdaptiveSticky(AdaptiveSticky),
}

impl ChoicePolicy for AnyPolicy {
    fn choose_insert(&mut self, rng: &mut impl Rng64, view: &impl QueueView) -> usize {
        match self {
            AnyPolicy::TwoChoice(p) => p.choose_insert(rng, view),
            AnyPolicy::DChoice(p) => p.choose_insert(rng, view),
            AnyPolicy::Sticky(p) => p.choose_insert(rng, view),
            AnyPolicy::AdaptiveSticky(p) => p.choose_insert(rng, view),
        }
    }

    fn choose_dequeue(&mut self, rng: &mut impl Rng64, view: &impl QueueView) -> Option<usize> {
        match self {
            AnyPolicy::TwoChoice(p) => p.choose_dequeue(rng, view),
            AnyPolicy::DChoice(p) => p.choose_dequeue(rng, view),
            AnyPolicy::Sticky(p) => p.choose_dequeue(rng, view),
            AnyPolicy::AdaptiveSticky(p) => p.choose_dequeue(rng, view),
        }
    }

    fn on_success(&mut self, op: ChoiceOp, queue: usize, view: &impl QueueView) {
        match self {
            AnyPolicy::TwoChoice(p) => p.on_success(op, queue, view),
            AnyPolicy::DChoice(p) => p.on_success(op, queue, view),
            AnyPolicy::Sticky(p) => p.on_success(op, queue, view),
            AnyPolicy::AdaptiveSticky(p) => p.on_success(op, queue, view),
        }
    }

    fn on_contention(&mut self, op: ChoiceOp, queue: usize) {
        match self {
            AnyPolicy::TwoChoice(p) => p.on_contention(op, queue),
            AnyPolicy::DChoice(p) => p.on_contention(op, queue),
            AnyPolicy::Sticky(p) => p.on_contention(op, queue),
            AnyPolicy::AdaptiveSticky(p) => p.on_contention(op, queue),
        }
    }

    fn on_poisoned(&mut self, op: ChoiceOp, queue: usize) {
        match self {
            AnyPolicy::TwoChoice(p) => p.on_poisoned(op, queue),
            AnyPolicy::DChoice(p) => p.on_poisoned(op, queue),
            AnyPolicy::Sticky(p) => p.on_poisoned(op, queue),
            AnyPolicy::AdaptiveSticky(p) => p.on_poisoned(op, queue),
        }
    }

    fn envelope_factor(&self) -> f64 {
        match self {
            AnyPolicy::TwoChoice(p) => p.envelope_factor(),
            AnyPolicy::DChoice(p) => p.envelope_factor(),
            AnyPolicy::Sticky(p) => p.envelope_factor(),
            AnyPolicy::AdaptiveSticky(p) => p.envelope_factor(),
        }
    }

    fn flush_telemetry(&mut self, stats: &mut ContentionStats) {
        match self {
            AnyPolicy::TwoChoice(p) => p.flush_telemetry(stats),
            AnyPolicy::DChoice(p) => p.flush_telemetry(stats),
            AnyPolicy::Sticky(p) => p.flush_telemetry(stats),
            AnyPolicy::AdaptiveSticky(p) => p.flush_telemetry(stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    /// A scriptable view: fixed m, programmable hints/generations.
    struct FakeView {
        hints: Vec<u64>,
        gens: Vec<Option<u64>>,
    }

    impl FakeView {
        fn new(hints: Vec<u64>) -> Self {
            let gens = vec![Some(0); hints.len()];
            FakeView { hints, gens }
        }
    }

    impl QueueView for FakeView {
        fn num_queues(&self) -> usize {
            self.hints.len()
        }
        fn queue_hint(&self, i: usize) -> u64 {
            self.hints[i]
        }
        fn queue_generation(&self, i: usize) -> Option<u64> {
            self.gens[i]
        }
    }

    #[test]
    fn two_choice_and_dchoice2_draw_identically() {
        let view = FakeView::new(vec![5, 3, 9, 7, EMPTY_HINT, 1, 2, 8]);
        for seed in 0..64 {
            let mut r1 = Xoshiro256::new(seed);
            let mut r2 = Xoshiro256::new(seed);
            let mut tc = TwoChoice;
            let mut dc = DChoice::new(2);
            for _ in 0..200 {
                assert_eq!(
                    tc.choose_dequeue(&mut r1, &view),
                    dc.choose_dequeue(&mut r2, &view)
                );
                assert_eq!(
                    tc.choose_insert(&mut r1, &view),
                    dc.choose_insert(&mut r2, &view)
                );
            }
        }
    }

    #[test]
    fn sticky_one_is_two_choice() {
        let view = FakeView::new(vec![5, 3, 9, EMPTY_HINT]);
        for seed in 0..64 {
            let mut r1 = Xoshiro256::new(seed);
            let mut r2 = Xoshiro256::new(seed);
            let mut tc = TwoChoice;
            let mut st = Sticky::new(1);
            for step in 0..200 {
                let a = tc.choose_dequeue(&mut r1, &view);
                let b = st.choose_dequeue(&mut r2, &view);
                assert_eq!(a, b);
                if let Some(q) = b {
                    // Successes must not start a camp at s = 1.
                    tc.on_success(ChoiceOp::Dequeue, q, &view);
                    st.on_success(ChoiceOp::Dequeue, q, &view);
                }
                if step % 3 == 0 {
                    assert_eq!(
                        tc.choose_insert(&mut r1, &view),
                        st.choose_insert(&mut r2, &view)
                    );
                }
            }
        }
    }

    #[test]
    fn sticky_camps_per_kind_independently() {
        // Interleaved inserts and dequeues: each kind keeps its own
        // camp; the other kind's operations must not disturb it.
        let view = FakeView::new(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mut rng = Xoshiro256::new(9);
        let s = 4;
        let mut p = Sticky::new(s);
        let iq = p.choose_insert(&mut rng, &view);
        let dq = p.choose_dequeue(&mut rng, &view).unwrap();
        p.on_success(ChoiceOp::Dequeue, dq, &view);
        // Strictly alternate kinds; both camps must hold for their
        // remaining s-1 operations despite the interleaving.
        for _ in 0..s - 1 {
            assert_eq!(p.choose_insert(&mut rng, &view), iq);
            assert_eq!(p.choose_dequeue(&mut rng, &view), Some(dq));
            p.on_success(ChoiceOp::Dequeue, dq, &view);
        }
    }

    #[test]
    fn sticky_contention_voids_only_that_kind() {
        let view = FakeView::new(vec![0, 1, 2, 3]);
        let mut rng = Xoshiro256::new(10);
        let mut p = Sticky::new(8);
        let iq = p.choose_insert(&mut rng, &view);
        let dq = p.choose_dequeue(&mut rng, &view).unwrap();
        p.on_success(ChoiceOp::Dequeue, dq, &view);
        p.on_contention(ChoiceOp::Dequeue, dq);
        // Insert camp survives a dequeue contention.
        assert_eq!(p.choose_insert(&mut rng, &view), iq);
        // Dequeue camp is gone: the next choice is a fresh sample
        // (which may or may not land on dq — but the camp counter is
        // zero, so it consults the hints again: observable through the
        // fresh-sample flag by camping anew on success).
        let fresh = p.choose_dequeue(&mut rng, &view).unwrap();
        p.on_success(ChoiceOp::Dequeue, fresh, &view);
        for _ in 0..7 {
            assert_eq!(p.choose_dequeue(&mut rng, &view), Some(fresh));
            p.on_success(ChoiceOp::Dequeue, fresh, &view);
        }
    }

    #[test]
    fn sticky_poison_evicts_only_camps_on_the_dead_queue() {
        let view = FakeView::new(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mut rng = Xoshiro256::new(21);
        let mut p = Sticky::new(8);
        let iq = p.choose_insert(&mut rng, &view);
        let dq = p.choose_dequeue(&mut rng, &view).unwrap();
        p.on_success(ChoiceOp::Dequeue, dq, &view);
        // Poison on an unrelated queue disturbs neither camp.
        let other = (0..8).find(|q| *q != iq && *q != dq).unwrap();
        p.on_poisoned(ChoiceOp::Dequeue, other);
        assert_eq!(p.choose_insert(&mut rng, &view), iq);
        assert_eq!(p.choose_dequeue(&mut rng, &view), Some(dq));
        p.on_success(ChoiceOp::Dequeue, dq, &view);
        // Poison on the camped dequeue queue evicts that camp; a camp
        // restarts on the next fresh success, never on the dead queue
        // implicitly.
        p.on_poisoned(ChoiceOp::Dequeue, dq);
        let fresh = p.choose_dequeue(&mut rng, &view).unwrap();
        p.on_success(ChoiceOp::Dequeue, fresh, &view);
        for _ in 0..7 {
            assert_eq!(p.choose_dequeue(&mut rng, &view), Some(fresh));
            p.on_success(ChoiceOp::Dequeue, fresh, &view);
        }
        // The insert camp (different queue) survived throughout.
        if iq != dq {
            assert_eq!(p.choose_insert(&mut rng, &view), iq);
        }
    }

    #[test]
    fn adaptive_poison_evicts_camp_without_narrowing() {
        let view = FakeView::new(vec![0, 1]);
        let mut rng = Xoshiro256::new(22);
        let mut p = AdaptiveSticky::new(8);
        // Quiet camps widen s first.
        for _ in 0..100 {
            let q = p.choose_dequeue(&mut rng, &view).unwrap();
            p.on_success(ChoiceOp::Dequeue, q, &view);
        }
        let wide = p.current();
        assert!(wide > 1);
        // Poison is not a congestion signal: s must be untouched.
        p.on_poisoned(ChoiceOp::Dequeue, 0);
        p.on_poisoned(ChoiceOp::Insert, 0);
        assert_eq!(p.current(), wide, "poison must not narrow s");
    }

    #[test]
    fn adaptive_never_exceeds_s_max_and_widens_when_quiet() {
        let mut view = FakeView::new(vec![0, 1, 2, 3]);
        let mut rng = Xoshiro256::new(11);
        let s_max = 16;
        let mut p = AdaptiveSticky::new(s_max);
        assert_eq!(p.current(), 2);
        // Quiet camps (generation advances exactly by our own ops):
        // s must widen to s_max and never beyond.
        for _ in 0..200 {
            let q = p.choose_dequeue(&mut rng, &view).unwrap();
            p.on_success(ChoiceOp::Dequeue, q, &view);
            // Each success = one unlock = one generation bump.
            view.gens[q] = view.gens[q].map(|g| g + 1);
            assert!(p.current() <= s_max, "s {} > s_max", p.current());
            assert!(p.observed_max() <= s_max);
        }
        assert_eq!(p.current(), s_max, "quiet run should widen to s_max");
        assert!(p.envelope_factor() <= s_max as f64);
    }

    #[test]
    fn adaptive_narrows_under_foreign_traffic_and_rearms() {
        let mut view = FakeView::new(vec![0, 1, 2, 3]);
        let mut rng = Xoshiro256::new(12);
        let mut p = AdaptiveSticky::new(32);
        // Foreign traffic: every generation jumps far beyond our ops.
        for _ in 0..200 {
            let q = p.choose_dequeue(&mut rng, &view).unwrap();
            p.on_success(ChoiceOp::Dequeue, q, &view);
            view.gens[q] = view.gens[q].map(|g| g + 100);
        }
        // The policy oscillates between the floor and a short-lived
        // re-armed camp; it must never stay wide under foreign traffic.
        assert!(p.current() <= 2, "contended run stuck at {}", p.current());
        // Re-arm: after enough quiet successes at s = 1 it widens again.
        for _ in 0..2 * ADAPTIVE_REARM {
            let q = p.choose_dequeue(&mut rng, &view).unwrap();
            p.on_success(ChoiceOp::Dequeue, q, &view);
        }
        assert!(p.current() > 1, "policy failed to re-arm");
    }

    #[test]
    fn insert_and_dequeue_stickiness_diverge_under_asymmetric_load() {
        let view = FakeView::new(vec![0, 1, 2, 3]);
        let mut rng = Xoshiro256::new(14);
        let mut p = AdaptiveSticky::new(32);
        assert_eq!(p.current(), p.current_insert(), "both sides start equal");
        // Asymmetric load, phase 1: every insert try-lock fails while
        // dequeues run quiet (static generations = no foreign traffic).
        for _ in 0..300 {
            let q = p.choose_insert(&mut rng, &view);
            p.on_contention(ChoiceOp::Insert, q);
            let q = p.choose_dequeue(&mut rng, &view).unwrap();
            p.on_success(ChoiceOp::Dequeue, q, &view);
        }
        assert_eq!(p.current_insert(), 1, "contended insert side must collapse");
        assert_eq!(p.current(), 32, "quiet dequeue side must widen to s_max");
        // Phase 2, roles reversed: quiet inserts re-widen their side via
        // the uncontended streak while dequeue contention collapses only
        // the dequeue camp length.
        for _ in 0..300 {
            let q = p.choose_insert(&mut rng, &view);
            p.on_success(ChoiceOp::Insert, q, &view);
            let q = p.choose_dequeue(&mut rng, &view).unwrap();
            p.on_contention(ChoiceOp::Dequeue, q);
        }
        assert_eq!(p.current_insert(), 32, "quiet insert side must re-widen");
        assert_eq!(p.current(), 1, "contended dequeue side must collapse");
        // The envelope covers the widest camp either side reached.
        assert_eq!(p.envelope_factor(), 32.0);
    }

    #[test]
    fn adaptive_contention_narrows_immediately() {
        let view = FakeView::new(vec![0, 1]);
        let mut rng = Xoshiro256::new(13);
        let mut p = AdaptiveSticky::new(8);
        // Force s wide first.
        for _ in 0..100 {
            let q = p.choose_dequeue(&mut rng, &view).unwrap();
            p.on_success(ChoiceOp::Dequeue, q, &view);
        }
        let before = p.current();
        p.on_contention(ChoiceOp::Dequeue, 0);
        assert!(p.current() < before.max(2));
    }

    #[test]
    fn policy_cfg_roundtrip_and_labels() {
        assert_eq!(PolicyCfg::default(), PolicyCfg::TwoChoice);
        assert!(PolicyCfg::TwoChoice.is_default());
        assert!(PolicyCfg::Sticky { ops: 1 }.is_default());
        assert!(!PolicyCfg::Sticky { ops: 8 }.is_default());
        assert!(!PolicyCfg::AdaptiveSticky { s_max: 4 }.is_default());
        assert_eq!(PolicyCfg::TwoChoice.label(), "two-choice");
        assert_eq!(PolicyCfg::Sticky { ops: 8 }.label(), "sticky(s=8)");
        assert_eq!(PolicyCfg::DChoice { d: 4 }.label(), "d-choice(d=4)");
        assert_eq!(
            PolicyCfg::AdaptiveSticky { s_max: 16 }.label(),
            "adaptive(s_max=16)"
        );
        assert_eq!(PolicyCfg::Sticky { ops: 8 }.envelope_factor(), 8.0);
        assert_eq!(PolicyCfg::TwoChoice.envelope_factor(), 1.0);
        assert!(PolicyCfg::DChoice { d: 1 }.envelope_factor().is_infinite());
        match (PolicyCfg::AdaptiveSticky { s_max: 0 }).build() {
            AnyPolicy::AdaptiveSticky(p) => assert_eq!(p.s_max(), 1),
            other => panic!("wrong build: {other:?}"),
        }
    }

    #[test]
    fn policy_parse_accepts_compact_and_label_forms() {
        for (text, want) in [
            ("two-choice", PolicyCfg::TwoChoice),
            ("twochoice", PolicyCfg::TwoChoice),
            ("2choice", PolicyCfg::TwoChoice),
            ("d-choice=4", PolicyCfg::DChoice { d: 4 }),
            ("dchoice4", PolicyCfg::DChoice { d: 4 }),
            ("sticky=16", PolicyCfg::Sticky { ops: 16 }),
            ("sticky16", PolicyCfg::Sticky { ops: 16 }),
            ("Sticky(s=8)", PolicyCfg::Sticky { ops: 8 }),
            ("adaptive=16", PolicyCfg::AdaptiveSticky { s_max: 16 }),
            ("adaptive8", PolicyCfg::AdaptiveSticky { s_max: 8 }),
        ] {
            assert_eq!(PolicyCfg::parse(text), Ok(want), "{text}");
            // FromStr delegates.
            assert_eq!(text.parse::<PolicyCfg>(), Ok(want));
        }
        // Every label round-trips through parse.
        for cfg in [
            PolicyCfg::TwoChoice,
            PolicyCfg::DChoice { d: 3 },
            PolicyCfg::Sticky { ops: 16 },
            PolicyCfg::AdaptiveSticky { s_max: 16 },
        ] {
            assert_eq!(PolicyCfg::parse(&cfg.label()), Ok(cfg), "{}", cfg.label());
        }
        for bad in [
            "",
            "sticky",
            "sticky=x",
            "frobnicate",
            "d-choice",
            // A numeric suffix on the parameterless policy is rejected,
            // not silently dropped.
            "two-choice16",
            "twochoice8",
        ] {
            assert!(PolicyCfg::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn any_policy_dispatches_like_the_concrete_type() {
        let view = FakeView::new(vec![4, 2, 9, EMPTY_HINT]);
        for cfg in [
            PolicyCfg::TwoChoice,
            PolicyCfg::DChoice { d: 3 },
            PolicyCfg::Sticky { ops: 4 },
            PolicyCfg::AdaptiveSticky { s_max: 8 },
        ] {
            let mut r1 = Xoshiro256::new(77);
            let mut r2 = Xoshiro256::new(77);
            let mut any = cfg.build();
            // Concrete twin driven through the same script.
            type Chooser = Box<dyn FnMut(&mut Xoshiro256, &FakeView) -> Option<usize>>;
            let mut concrete: Chooser = match cfg {
                PolicyCfg::TwoChoice => {
                    let mut p = TwoChoice;
                    Box::new(move |r, v| p.choose_dequeue(r, v))
                }
                PolicyCfg::DChoice { d } => {
                    let mut p = DChoice::new(d);
                    Box::new(move |r, v| p.choose_dequeue(r, v))
                }
                PolicyCfg::Sticky { ops } => {
                    let mut p = Sticky::new(ops);
                    Box::new(move |r, v| p.choose_dequeue(r, v))
                }
                PolicyCfg::AdaptiveSticky { s_max } => {
                    let mut p = AdaptiveSticky::new(s_max);
                    Box::new(move |r, v| p.choose_dequeue(r, v))
                }
            };
            for _ in 0..50 {
                assert_eq!(any.choose_dequeue(&mut r1, &view), concrete(&mut r2, &view));
            }
        }
    }
}
