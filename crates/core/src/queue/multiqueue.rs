//! The MultiQueue — Algorithm 2 of the paper.
//!
//! ```text
//! function Enqueue(e)
//!     p <- Clock.Read(); i <- random(1, m); PQs[i].Add(e, p)
//!
//! function Dequeue()
//!     i <- random(1, m); j <- random(1, m)
//!     (ei, pi) <- PQs[i].ReadMin(); (ej, pj) <- PQs[j].ReadMin()
//!     if pi > pj: i = j
//!     return PQs[i].DeleteMin()
//! ```
//!
//! This module implements the priority-queue core (explicit `u64`
//! priorities); [`RelaxedFifo`](crate::queue::RelaxedFifo) adds the
//! timestamping of the paper's queue semantics on top.
//!
//! The `ReadMin` step uses the lock-free hint published by
//! [`LockedPq`] — by the time the chosen queue is locked, its minimum
//! may have changed. That is not a bug: the rank analysis (Theorem 7.1)
//! is precisely about surviving such staleness, and the hint-based
//! implementation matches the practical MultiQueues the paper cites
//! (\[27\], \[3\]).

use std::sync::atomic::AtomicU64;

use dlz_pq::locked::EMPTY_HINT;
use dlz_pq::{BinaryHeap, ConcurrentPq, LockedPq, SeqPriorityQueue};

use crate::rng::{with_thread_rng, Rng64, Xoshiro256};

/// What a dequeue does when its chosen queue is contended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeleteMode {
    /// Lock the chosen queue unconditionally (Algorithm 2 as written).
    #[default]
    Strict,
    /// If the chosen queue's lock is taken, redraw two fresh queues
    /// instead of waiting (the Rihani-et-al. practical variant).
    TryLock,
}

/// A relaxed concurrent priority queue over `m` locked sequential queues.
///
/// # Example
/// ```
/// use dlz_core::{MultiQueue, DeleteMode};
/// use dlz_core::rng::Xoshiro256;
///
/// let mq: MultiQueue<&str> = MultiQueue::<&str>::builder().queues(4).build();
/// let mut rng = Xoshiro256::new(1);
/// mq.insert_with(&mut rng, 30, "c");
/// mq.insert_with(&mut rng, 10, "a");
/// mq.insert_with(&mut rng, 20, "b");
/// // Dequeues come out in *approximately* ascending priority order;
/// // every element is eventually returned exactly once.
/// let mut got: Vec<_> = (0..3).map(|_| mq.dequeue_with(&mut rng).unwrap()).collect();
/// got.sort();
/// assert_eq!(got, vec![(10, "a"), (20, "b"), (30, "c")]);
/// assert_eq!(mq.dequeue_with(&mut rng), None);
/// ```
#[derive(Debug)]
pub struct MultiQueue<V, Q = BinaryHeap<u64, V>>
where
    Q: SeqPriorityQueue<u64, V> + Send,
    V: Send,
{
    queues: Box<[LockedPq<V, Q>]>,
    mode: DeleteMode,
}

impl<V: Send> MultiQueue<V> {
    /// Starts building a binary-heap-backed MultiQueue.
    pub fn builder() -> MultiQueueBuilder {
        MultiQueueBuilder::default()
    }

    /// Creates a MultiQueue with `m` binary-heap queues, strict deletes.
    pub fn new(m: usize) -> Self {
        Self::with_queues(
            (0..m).map(|_| BinaryHeap::new()).collect(),
            DeleteMode::Strict,
        )
    }
}

impl<V: Send, Q: SeqPriorityQueue<u64, V> + Send> MultiQueue<V, Q> {
    /// Builds from explicit sequential queues (any substrate) and mode.
    ///
    /// # Panics
    /// If `queues` is empty.
    pub fn with_queues(queues: Vec<Q>, mode: DeleteMode) -> Self {
        assert!(!queues.is_empty(), "MultiQueue needs at least one queue");
        MultiQueue {
            queues: queues.into_iter().map(LockedPq::new).collect(),
            mode,
        }
    }

    /// Number of internal queues (the paper's `m`).
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// The configured delete mode.
    pub fn mode(&self) -> DeleteMode {
        self.mode
    }

    /// Total entries across queues. Exact when quiescent.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.approx_len()).sum()
    }

    /// `true` if no entries are observed. Exact when quiescent.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue with an explicit generator (Algorithm 2's Enqueue, with
    /// the priority supplied by the caller).
    pub fn insert_with(&self, rng: &mut impl Rng64, priority: u64, value: V) {
        let m = self.queues.len() as u64;
        match self.mode {
            DeleteMode::Strict => {
                let i = rng.bounded(m) as usize;
                self.queues[i].insert(priority, value);
            }
            DeleteMode::TryLock => {
                let mut p = priority;
                let mut v = value;
                loop {
                    let i = rng.bounded(m) as usize;
                    match self.queues[i].try_insert(p, v) {
                        Ok(()) => return,
                        Err((rp, rv)) => {
                            p = rp;
                            v = rv;
                        }
                    }
                }
            }
        }
    }

    /// Dequeue with an explicit generator (Algorithm 2's Dequeue).
    ///
    /// Returns `None` only after observing a globally empty structure;
    /// with concurrent enqueuers a `None` means "empty at some sample
    /// point", the strongest statement a relaxed queue can make.
    pub fn dequeue_with(&self, rng: &mut impl Rng64) -> Option<(u64, V)> {
        let m = self.queues.len() as u64;
        let recheck_period = (self.queues.len()).max(8);
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            if attempts.is_multiple_of(recheck_period) && self.is_empty() {
                return None;
            }
            let i = rng.bounded(m) as usize;
            let j = rng.bounded(m) as usize;
            // ReadMin via published hints (no locks).
            let hi = self.queues[i].min_hint();
            let hj = self.queues[j].min_hint();
            if hi == EMPTY_HINT && hj == EMPTY_HINT {
                continue;
            }
            // `if pi > pj: i = j` — ties stay with i.
            let k = if hi <= hj { i } else { j };
            match self.mode {
                DeleteMode::Strict => {
                    if let Some(out) = self.queues[k].remove_min() {
                        return Some(out);
                    }
                    // Hint was stale and the queue is now empty: retry.
                }
                DeleteMode::TryLock => {
                    match self.queues[k].try_remove_min() {
                        Ok(Some(out)) => return Some(out),
                        Ok(None) => {}                       // stale hint; retry
                        Err(dlz_pq::locked::Contended) => {} // contended; redraw
                    }
                }
            }
        }
    }

    /// Dequeue sampling the best of `k` queues instead of 2 — the
    /// d-choice generalization from the MultiQueue literature. `k = 1`
    /// removes from a single random queue (rank relaxation degrades to
    /// the divergent single-choice regime); `k = 2` is Algorithm 2;
    /// larger `k` tightens the rank distribution at the price of `k`
    /// hint reads per dequeue.
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn dequeue_k_with(&self, rng: &mut impl Rng64, k: usize) -> Option<(u64, V)> {
        assert!(k >= 1, "need at least one choice");
        let m = self.queues.len() as u64;
        let recheck_period = (self.queues.len()).max(8);
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            if attempts.is_multiple_of(recheck_period) && self.is_empty() {
                return None;
            }
            // Best hint among k samples (ties keep the earlier draw).
            let mut best = rng.bounded(m) as usize;
            let mut best_hint = self.queues[best].min_hint();
            for _ in 1..k {
                let c = rng.bounded(m) as usize;
                let h = self.queues[c].min_hint();
                if h < best_hint {
                    best = c;
                    best_hint = h;
                }
            }
            if best_hint == EMPTY_HINT {
                continue;
            }
            match self.mode {
                DeleteMode::Strict => {
                    if let Some(out) = self.queues[best].remove_min() {
                        return Some(out);
                    }
                }
                DeleteMode::TryLock => match self.queues[best].try_remove_min() {
                    Ok(Some(out)) => return Some(out),
                    Ok(None) => {}
                    Err(dlz_pq::locked::Contended) => {}
                },
            }
        }
    }

    /// Enqueue, stamping the operation's update point.
    ///
    /// The stamp is drawn from `stamper` *inside the queue's critical
    /// section*, i.e. at the operation's linearization point in the
    /// underlying linearizable queue. The distributional-linearizability
    /// checker replays histories in stamp order (Definition 5.2's
    /// mapping).
    pub fn insert_stamped(
        &self,
        rng: &mut impl Rng64,
        priority: u64,
        value: V,
        stamper: &AtomicU64,
    ) -> u64 {
        let m = self.queues.len() as u64;
        let i = rng.bounded(m) as usize;
        self.queues[i].with_locked(|q| {
            q.add(priority, value);
            stamper.fetch_add(1, std::sync::atomic::Ordering::AcqRel)
        })
    }

    /// Dequeue, stamping the operation's update point (see
    /// [`insert_stamped`](Self::insert_stamped)).
    pub fn dequeue_stamped(
        &self,
        rng: &mut impl Rng64,
        stamper: &AtomicU64,
    ) -> Option<(u64, V, u64)> {
        let m = self.queues.len() as u64;
        let recheck_period = (self.queues.len()).max(8);
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            if attempts.is_multiple_of(recheck_period) && self.is_empty() {
                return None;
            }
            let i = rng.bounded(m) as usize;
            let j = rng.bounded(m) as usize;
            let hi = self.queues[i].min_hint();
            let hj = self.queues[j].min_hint();
            if hi == EMPTY_HINT && hj == EMPTY_HINT {
                continue;
            }
            let k = if hi <= hj { i } else { j };
            let out = self.queues[k].with_locked(|q| {
                q.delete_min().map(|(p, v)| {
                    let s = stamper.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
                    (p, v, s)
                })
            });
            if out.is_some() {
                return out;
            }
        }
    }

    /// Drains everything into a sorted vector (sequential; for tests).
    pub fn drain_sorted(&self) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        for q in self.queues.iter() {
            q.with_locked(|inner| {
                while let Some(e) = inner.delete_min() {
                    out.push(e);
                }
            });
        }
        out.sort_by_key(|(p, _)| *p);
        out
    }

    /// Convenience enqueue using the thread-local generator.
    pub fn insert(&self, priority: u64, value: V) {
        with_thread_rng(|rng| self.insert_with(rng, priority, value));
    }

    /// Convenience dequeue using the thread-local generator.
    pub fn dequeue(&self) -> Option<(u64, V)> {
        with_thread_rng(|rng| self.dequeue_with(rng))
    }
}

/// MultiQueues are themselves concurrent priority queues, so they slot
/// into any code written against [`ConcurrentPq`] (e.g. the SSSP
/// example uses the exact [`CoarsePq`](dlz_pq::CoarsePq) and the
/// MultiQueue interchangeably). Randomness comes from the thread-local
/// generator.
impl<V: Send, Q: SeqPriorityQueue<u64, V> + Send> ConcurrentPq<V> for MultiQueue<V, Q> {
    fn insert(&self, priority: u64, value: V) {
        MultiQueue::insert(self, priority, value);
    }

    fn remove_min(&self) -> Option<(u64, V)> {
        self.dequeue()
    }

    fn min_hint(&self) -> u64 {
        self.queues
            .iter()
            .map(|q| q.min_hint())
            .min()
            .unwrap_or(EMPTY_HINT)
    }

    fn approx_len(&self) -> usize {
        self.len()
    }
}

/// Builder for binary-heap-backed [`MultiQueue`]s.
#[derive(Debug, Clone, Default)]
pub struct MultiQueueBuilder {
    queues: Option<usize>,
    ratio: Option<usize>,
    threads: Option<usize>,
    mode: DeleteMode,
    seed: Option<u64>,
}

impl MultiQueueBuilder {
    /// Sets the number of internal queues `m` explicitly.
    pub fn queues(mut self, m: usize) -> Self {
        self.queues = Some(m);
        self
    }

    /// Sets the ratio `C = m / n`; combine with [`threads`](Self::threads).
    pub fn ratio(mut self, c: usize) -> Self {
        self.ratio = Some(c);
        self
    }

    /// Sets the thread count `n` used with [`ratio`](Self::ratio).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Sets the delete mode (default [`DeleteMode::Strict`]).
    pub fn delete_mode(mut self, mode: DeleteMode) -> Self {
        self.mode = mode;
        self
    }

    /// Reseeds the calling thread's convenience RNG (see
    /// [`MultiCounterBuilder::seed`](crate::counter::MultiCounterBuilder::seed)).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Builds the MultiQueue.
    ///
    /// # Panics
    /// If neither `queues` nor (`ratio` and `threads`) was given.
    pub fn build<V: Send>(self) -> MultiQueue<V> {
        let m = match (self.queues, self.ratio, self.threads) {
            (Some(m), _, _) => m,
            (None, Some(c), Some(n)) => c * n,
            _ => panic!("MultiQueueBuilder: set .queues(m) or .ratio(c).threads(n)"),
        };
        if let Some(seed) = self.seed {
            crate::rng::reseed_thread_rng(seed);
        }
        MultiQueue::with_queues((0..m).map(|_| BinaryHeap::new()).collect(), self.mode)
    }
}

/// A deterministic handle: a MultiQueue reference plus a private RNG.
/// Convenient for per-thread use in benchmarks.
pub struct MqHandle<'a, V: Send, Q: SeqPriorityQueue<u64, V> + Send = BinaryHeap<u64, V>> {
    mq: &'a MultiQueue<V, Q>,
    rng: Xoshiro256,
}

impl<'a, V: Send, Q: SeqPriorityQueue<u64, V> + Send> MqHandle<'a, V, Q> {
    /// Creates a handle with its own seeded generator.
    pub fn new(mq: &'a MultiQueue<V, Q>, seed: u64) -> Self {
        MqHandle {
            mq,
            rng: Xoshiro256::new(seed),
        }
    }

    /// Enqueue through the handle.
    pub fn insert(&mut self, priority: u64, value: V) {
        self.mq.insert_with(&mut self.rng, priority, value);
    }

    /// Dequeue through the handle.
    pub fn dequeue(&mut self) -> Option<(u64, V)> {
        self.mq.dequeue_with(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_queue_returns_none() {
        let mq: MultiQueue<u32> = MultiQueue::new(4);
        let mut rng = Xoshiro256::new(1);
        assert_eq!(mq.dequeue_with(&mut rng), None);
        assert!(mq.is_empty());
    }

    #[test]
    fn conservation_sequential() {
        let mq: MultiQueue<u64> = MultiQueue::new(8);
        let mut rng = Xoshiro256::new(2);
        for p in 0..1000u64 {
            mq.insert_with(&mut rng, p, p * 10);
        }
        assert_eq!(mq.len(), 1000);
        let mut out = Vec::new();
        while let Some((p, v)) = mq.dequeue_with(&mut rng) {
            assert_eq!(v, p * 10);
            out.push(p);
        }
        assert_eq!(out.len(), 1000);
        out.sort_unstable();
        assert_eq!(out, (0..1000u64).collect::<Vec<_>>());
    }

    #[test]
    fn single_queue_is_exact() {
        // m = 1: both choices are the same queue, so dequeues are the
        // true minimum — the structure degenerates to an exact PQ.
        let mq: MultiQueue<()> = MultiQueue::new(1);
        let mut rng = Xoshiro256::new(3);
        for p in [5u64, 2, 9, 1, 7] {
            mq.insert_with(&mut rng, p, ());
        }
        let drained: Vec<u64> =
            std::iter::from_fn(|| mq.dequeue_with(&mut rng).map(|(p, _)| p)).collect();
        assert_eq!(drained, vec![1, 2, 5, 7, 9]);
    }

    #[test]
    fn rank_error_is_bounded_in_practice() {
        // Sequential use: dequeue rank should be O(m); test a generous
        // multiple. (Statistical, deterministic seed.)
        let m = 8usize;
        let mq: MultiQueue<()> = MultiQueue::new(m);
        let mut rng = Xoshiro256::new(4);
        let n = 10_000u64;
        for p in 0..n {
            mq.insert_with(&mut rng, p, ());
        }
        use std::collections::BTreeSet;
        let mut present: BTreeSet<u64> = (0..n).collect();
        let mut max_rank = 0usize;
        for _ in 0..n {
            let (p, ()) = mq.dequeue_with(&mut rng).unwrap();
            let rank = present.range(..p).count();
            max_rank = max_rank.max(rank);
            present.remove(&p);
        }
        // Theory: expected rank O(m), max over n steps O(m log n)-ish.
        assert!(max_rank <= 30 * m, "max rank {max_rank} too large");
    }

    #[test]
    fn trylock_mode_conserves() {
        let mq: MultiQueue<u64> = MultiQueue::with_queues(
            (0..4).map(|_| BinaryHeap::new()).collect(),
            DeleteMode::TryLock,
        );
        let mut rng = Xoshiro256::new(5);
        for p in 0..500u64 {
            mq.insert_with(&mut rng, p, p);
        }
        let mut n = 0;
        while mq.dequeue_with(&mut rng).is_some() {
            n += 1;
        }
        assert_eq!(n, 500);
    }

    #[test]
    fn concurrent_producers_consumers_conserve() {
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        const PER: u64 = 10_000;
        let mq: Arc<MultiQueue<u64>> = Arc::new(MultiQueue::new(16));
        let consumed: Vec<u64> = std::thread::scope(|s| {
            for t in 0..PRODUCERS {
                let mq = Arc::clone(&mq);
                s.spawn(move || {
                    let mut rng = Xoshiro256::new(100 + t as u64);
                    for i in 0..PER {
                        let p = (t as u64) * PER + i;
                        mq.insert_with(&mut rng, p, p);
                    }
                });
            }
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|t| {
                    let mq = Arc::clone(&mq);
                    s.spawn(move || {
                        let mut rng = Xoshiro256::new(200 + t as u64);
                        let mut got = Vec::new();
                        let target = PRODUCERS as u64 * PER / CONSUMERS as u64;
                        while (got.len() as u64) < target {
                            if let Some((_, v)) = mq.dequeue_with(&mut rng) {
                                got.push(v);
                            }
                        }
                        got
                    })
                })
                .collect();
            consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut all = consumed;
        all.sort_unstable();
        assert_eq!(all, (0..PRODUCERS as u64 * PER).collect::<Vec<_>>());
        assert!(mq.is_empty());
    }

    #[test]
    fn works_with_skiplist_substrate() {
        use dlz_pq::SkipListPq;
        let mq: MultiQueue<u64, SkipListPq<u64, u64>> = MultiQueue::with_queues(
            (0..4).map(|i| SkipListPq::with_seed(i as u64)).collect(),
            DeleteMode::Strict,
        );
        let mut rng = Xoshiro256::new(6);
        for p in 0..200u64 {
            mq.insert_with(&mut rng, p, p);
        }
        let mut n = 0;
        while mq.dequeue_with(&mut rng).is_some() {
            n += 1;
        }
        assert_eq!(n, 200);
    }

    #[test]
    fn stamped_ops_produce_unique_ordered_stamps() {
        let mq: MultiQueue<u64> = MultiQueue::new(4);
        let stamper = AtomicU64::new(0);
        let mut rng = Xoshiro256::new(7);
        let mut stamps = Vec::new();
        for p in 0..100u64 {
            stamps.push(mq.insert_stamped(&mut rng, p, p, &stamper));
        }
        while let Some((_, _, s)) = mq.dequeue_stamped(&mut rng, &stamper) {
            stamps.push(s);
        }
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 200, "stamps must be unique");
    }

    #[test]
    fn k_choice_dequeue_conserves_for_all_k() {
        for k in [1usize, 2, 4] {
            let mq: MultiQueue<u64> = MultiQueue::new(8);
            let mut rng = Xoshiro256::new(40 + k as u64);
            for p in 0..500u64 {
                mq.insert_with(&mut rng, p, p);
            }
            let mut n = 0;
            while mq.dequeue_k_with(&mut rng, k).is_some() {
                n += 1;
            }
            assert_eq!(n, 500, "k={k}");
        }
    }

    #[test]
    fn more_choices_tighten_rank_distribution() {
        use std::collections::BTreeSet;
        let rank_sum = |k: usize| {
            let m = 16;
            let mq: MultiQueue<u64> = MultiQueue::new(m);
            let mut rng = Xoshiro256::new(77);
            let n = 4_000u64;
            for p in 0..n {
                mq.insert_with(&mut rng, p, p);
            }
            let mut present: BTreeSet<u64> = (0..n).collect();
            let mut sum = 0usize;
            for _ in 0..n {
                let (p, _) = mq.dequeue_k_with(&mut rng, k).unwrap();
                sum += present.range(..p).count();
                present.remove(&p);
            }
            sum
        };
        let one = rank_sum(1);
        let two = rank_sum(2);
        let four = rank_sum(4);
        assert!(one > two, "k=1 total rank {one} should exceed k=2 {two}");
        assert!(two >= four, "k=2 total rank {two} should be >= k=4 {four}");
    }

    #[test]
    #[should_panic(expected = "at least one choice")]
    fn zero_choice_dequeue_rejected() {
        let mq: MultiQueue<u64> = MultiQueue::new(2);
        let mut rng = Xoshiro256::new(1);
        let _ = mq.dequeue_k_with(&mut rng, 0);
    }

    #[test]
    fn drain_sorted_collects_everything() {
        let mq: MultiQueue<char> = MultiQueue::new(4);
        let mut rng = Xoshiro256::new(8);
        mq.insert_with(&mut rng, 3, 'c');
        mq.insert_with(&mut rng, 1, 'a');
        mq.insert_with(&mut rng, 2, 'b');
        assert_eq!(mq.drain_sorted(), vec![(1, 'a'), (2, 'b'), (3, 'c')]);
        assert!(mq.is_empty());
    }

    #[test]
    fn builder_forms() {
        let a: MultiQueue<()> = MultiQueue::<()>::builder().queues(6).build();
        assert_eq!(a.num_queues(), 6);
        let b: MultiQueue<()> = MultiQueue::<()>::builder()
            .ratio(2)
            .threads(3)
            .delete_mode(DeleteMode::TryLock)
            .build();
        assert_eq!(b.num_queues(), 6);
        assert_eq!(b.mode(), DeleteMode::TryLock);
    }

    #[test]
    fn handle_wraps_rng() {
        let mq: MultiQueue<u64> = MultiQueue::new(4);
        let mut h = MqHandle::new(&mq, 9);
        for p in 0..50 {
            h.insert(p, p);
        }
        let mut n = 0;
        while h.dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, 50);
    }
}
