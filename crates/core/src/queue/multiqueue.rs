//! The MultiQueue — Algorithm 2 of the paper.
//!
//! ```text
//! function Enqueue(e)
//!     p <- Clock.Read(); i <- random(1, m); PQs[i].Add(e, p)
//!
//! function Dequeue()
//!     i <- random(1, m); j <- random(1, m)
//!     (ei, pi) <- PQs[i].ReadMin(); (ej, pj) <- PQs[j].ReadMin()
//!     if pi > pj: i = j
//!     return PQs[i].DeleteMin()
//! ```
//!
//! This module implements the priority-queue core (explicit `u64`
//! priorities); [`RelaxedFifo`](crate::queue::RelaxedFifo) adds the
//! timestamping of the paper's queue semantics on top.
//!
//! The `ReadMin` step uses the lock-free hint published by
//! [`LockedPq`] — by the time the chosen queue is locked, its minimum
//! may have changed. That is not a bug: the rank analysis (Theorem 7.1)
//! is precisely about surviving such staleness, and the hint-based
//! implementation matches the practical MultiQueues the paper cites
//! (\[27\], \[3\]).
//!
//! # Hot-path engineering
//!
//! Beyond the algorithm itself, the implementation is contention-
//! engineered:
//!
//! * Each [`LockedPq`] packs lock flag, generation and entry count into
//!   one cache-padded atomic header next to the min hint, so a `ReadMin`
//!   touches one line and adjacent queues never false-share.
//! * Emptiness on the dequeue retry path is gated by a single padded
//!   global approximate-size counter ([`MultiQueue::approx_size`]); the
//!   exact O(m) sweep ([`MultiQueue::len`]) runs only to *confirm* an
//!   empty observation, never per retry.
//! * Retry loops use [`Backoff`] instead of spinning hot on stale hints.
//! * A [`Sticky`] policy lets a thread keep its chosen queue for up to
//!   `s` consecutive same-kind operations (fewer random draws and hint
//!   reads), and [`MultiQueue::insert_batch`] /
//!   [`MultiQueue::dequeue_batch`] amortize one lock acquisition and one
//!   hint publish over a whole batch. Both trade rank quality for
//!   throughput within the expected O(s·m) envelope — see
//!   [`Sticky`] for the bound.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use dlz_pq::locked::EMPTY_HINT;
use dlz_pq::{Backoff, BinaryHeap, ConcurrentPq, LockedPq, SeqPriorityQueue};

use crate::padded::Padded;
use crate::rng::{with_thread_rng, Rng64, Xoshiro256};

/// What a dequeue does when its chosen queue is contended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeleteMode {
    /// Lock the chosen queue unconditionally (Algorithm 2 as written).
    #[default]
    Strict,
    /// If the chosen queue's lock is taken, redraw two fresh queues
    /// instead of waiting (the Rihani-et-al. practical variant).
    TryLock,
}

/// Stickiness policy: how many consecutive same-kind operations a
/// thread keeps its chosen queue for.
///
/// With `ops = 1` (the default) every operation draws fresh random
/// queues — Algorithm 2 as written. With `ops = s > 1` a thread reuses
/// its last chosen queue for up to `s` consecutive inserts (or
/// dequeues), skipping the random draws and hint reads in between;
/// contention or an empty queue voids the stickiness early.
///
/// The price is rank quality: while a thread camps on one queue it may
/// take up to `s` elements in a row from it, so the expected dequeue
/// rank degrades from O(m) to **O(s·m)** — the same shape of bound as
/// Theorem 7.1 with the relaxation factor scaled by `s`. The workload
/// layer's rank metrics verify this envelope empirically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sticky {
    /// Consecutive same-kind operations per chosen queue (≥ 1).
    pub ops: usize,
}

impl Default for Sticky {
    fn default() -> Self {
        Sticky { ops: 1 }
    }
}

impl Sticky {
    /// A policy keeping the chosen queue for `ops` consecutive
    /// operations; `0` is treated as `1` (no stickiness).
    pub fn new(ops: usize) -> Self {
        Sticky { ops: ops.max(1) }
    }

    /// `true` if the policy actually changes behaviour.
    pub fn is_active(&self) -> bool {
        self.ops > 1
    }
}

/// Per-thread stickiness state: which queue the thread is camped on and
/// how many operations of each kind it has left there. Lives outside
/// the shared [`MultiQueue`] (in a [`MqHandle`] or a worker) so the
/// queue itself stays `&self`-shared with no thread-local machinery.
#[derive(Debug, Clone, Copy, Default)]
pub struct StickyState {
    insert_queue: usize,
    insert_left: usize,
    dequeue_queue: usize,
    dequeue_left: usize,
}

impl StickyState {
    /// Fresh state: the first operation of each kind draws a queue.
    pub fn new() -> Self {
        StickyState::default()
    }

    /// Forgets both chosen queues (next ops draw fresh).
    pub fn reset(&mut self) {
        *self = StickyState::default();
    }
}

/// A relaxed concurrent priority queue over `m` locked sequential queues.
///
/// # Example
/// ```
/// use dlz_core::{MultiQueue, DeleteMode};
/// use dlz_core::rng::Xoshiro256;
///
/// let mq: MultiQueue<&str> = MultiQueue::<&str>::builder().queues(4).build();
/// let mut rng = Xoshiro256::new(1);
/// mq.insert_with(&mut rng, 30, "c");
/// mq.insert_with(&mut rng, 10, "a");
/// mq.insert_with(&mut rng, 20, "b");
/// // Dequeues come out in *approximately* ascending priority order;
/// // every element is eventually returned exactly once.
/// let mut got: Vec<_> = (0..3).map(|_| mq.dequeue_with(&mut rng).unwrap()).collect();
/// got.sort();
/// assert_eq!(got, vec![(10, "a"), (20, "b"), (30, "c")]);
/// assert_eq!(mq.dequeue_with(&mut rng), None);
/// ```
#[derive(Debug)]
pub struct MultiQueue<V, Q = BinaryHeap<u64, V>>
where
    Q: SeqPriorityQueue<u64, V> + Send,
    V: Send,
{
    /// Each `LockedPq` is 128-byte aligned (its hot slot is cache
    /// padded), so adjacent queues in this array never false-share.
    queues: Box<[LockedPq<V, Q>]>,
    mode: DeleteMode,
    sticky: Sticky,
    /// Padded global approximate size: one relaxed RMW per (batch of)
    /// operation(s). Replaces the O(m) per-queue sweep on the dequeue
    /// retry path; signed so transient reorderings cannot wrap.
    size: Padded<AtomicI64>,
}

impl<V: Send> MultiQueue<V> {
    /// Starts building a binary-heap-backed MultiQueue.
    pub fn builder() -> MultiQueueBuilder {
        MultiQueueBuilder::default()
    }

    /// Creates a MultiQueue with `m` binary-heap queues, strict deletes.
    pub fn new(m: usize) -> Self {
        Self::with_queues(
            (0..m).map(|_| BinaryHeap::new()).collect(),
            DeleteMode::Strict,
        )
    }
}

impl<V: Send, Q: SeqPriorityQueue<u64, V> + Send> MultiQueue<V, Q> {
    /// Builds from explicit sequential queues (any substrate) and mode.
    ///
    /// # Panics
    /// If `queues` is empty.
    pub fn with_queues(queues: Vec<Q>, mode: DeleteMode) -> Self {
        Self::with_config(queues, mode, Sticky::default())
    }

    /// Builds from explicit sequential queues, mode and stickiness.
    ///
    /// # Panics
    /// If `queues` is empty.
    pub fn with_config(queues: Vec<Q>, mode: DeleteMode, sticky: Sticky) -> Self {
        assert!(!queues.is_empty(), "MultiQueue needs at least one queue");
        let queues: Box<[LockedPq<V, Q>]> = queues.into_iter().map(LockedPq::new).collect();
        let size: i64 = queues.iter().map(|q| q.approx_len() as i64).sum();
        MultiQueue {
            queues,
            mode,
            sticky,
            size: Padded::new(AtomicI64::new(size)),
        }
    }

    /// Number of internal queues (the paper's `m`).
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// The configured delete mode.
    pub fn mode(&self) -> DeleteMode {
        self.mode
    }

    /// The configured stickiness policy.
    pub fn sticky(&self) -> Sticky {
        self.sticky
    }

    /// Total entries across queues, via an O(m) sweep of the per-queue
    /// headers. Exact when quiescent; transiently off by in-flight
    /// operations under concurrency. Hot paths should prefer
    /// [`approx_size`](Self::approx_size), which is a single load.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.approx_len()).sum()
    }

    /// `true` if no entries are observed (O(m) sweep; exact when
    /// quiescent, like [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate total entries from the padded global counter: one
    /// relaxed load, no sweep. Exact when quiescent; may lag in-flight
    /// operations by their count. This is what the dequeue retry loops
    /// consult — they fall back to the exact sweep only to *confirm* an
    /// empty observation before returning `None`.
    pub fn approx_size(&self) -> usize {
        self.size.load(Ordering::Relaxed).max(0) as usize
    }

    #[inline]
    fn note_inserted(&self, n: usize) {
        self.size.fetch_add(n as i64, Ordering::Relaxed);
    }

    #[inline]
    fn note_removed(&self, n: usize) {
        self.size.fetch_sub(n as i64, Ordering::Relaxed);
    }

    /// The dequeue loops' emptiness gate. Cheap path: one relaxed load
    /// of the global counter. The exact O(m) sweep runs only when the
    /// counter hints empty — or, as a drift safety net, once the
    /// backoff has escalated past pure spinning.
    #[inline]
    fn confirmed_empty(&self, backoff: &Backoff) -> bool {
        (self.size.load(Ordering::Relaxed) <= 0 || backoff.is_yielding()) && self.is_empty()
    }

    /// One two-choice sample (Algorithm 2's `ReadMin` pair): the chosen
    /// queue index, or `None` when both sampled hints read empty.
    /// `if pi > pj: i = j` — ties stay with `i`.
    #[inline]
    fn pick_two(&self, rng: &mut impl Rng64) -> Option<usize> {
        let m = self.queues.len() as u64;
        let i = rng.bounded(m) as usize;
        let j = rng.bounded(m) as usize;
        let hi = self.queues[i].min_hint();
        let hj = self.queues[j].min_hint();
        if hi == EMPTY_HINT && hj == EMPTY_HINT {
            return None;
        }
        Some(if hi <= hj { i } else { j })
    }

    /// Enqueue with an explicit generator (Algorithm 2's Enqueue, with
    /// the priority supplied by the caller).
    pub fn insert_with(&self, rng: &mut impl Rng64, priority: u64, value: V) {
        let m = self.queues.len() as u64;
        match self.mode {
            DeleteMode::Strict => {
                let i = rng.bounded(m) as usize;
                self.queues[i].insert(priority, value);
            }
            DeleteMode::TryLock => {
                let mut p = priority;
                let mut v = value;
                loop {
                    let i = rng.bounded(m) as usize;
                    match self.queues[i].try_insert(p, v) {
                        Ok(()) => break,
                        Err((rp, rv)) => {
                            p = rp;
                            v = rv;
                        }
                    }
                }
            }
        }
        self.note_inserted(1);
    }

    /// Dequeue with an explicit generator (Algorithm 2's Dequeue).
    ///
    /// Returns `None` only after observing a globally empty structure;
    /// with concurrent enqueuers a `None` means "empty at some sample
    /// point", the strongest statement a relaxed queue can make.
    pub fn dequeue_with(&self, rng: &mut impl Rng64) -> Option<(u64, V)> {
        self.dequeue_tracked(rng).map(|(_, out)| out)
    }

    /// The dequeue retry loop, reporting which queue served the entry
    /// (so sticky callers can camp on it).
    fn dequeue_tracked(&self, rng: &mut impl Rng64) -> Option<(usize, (u64, V))> {
        let mut backoff = Backoff::new();
        loop {
            if self.confirmed_empty(&backoff) {
                return None;
            }
            let Some(k) = self.pick_two(rng) else {
                backoff.snooze();
                continue;
            };
            match self.mode {
                DeleteMode::Strict => {
                    if let Some(out) = self.queues[k].remove_min() {
                        self.note_removed(1);
                        return Some((k, out));
                    }
                    // Stale hint and a now-empty queue: back off rather
                    // than hammering the hint lines.
                    backoff.snooze();
                }
                DeleteMode::TryLock => match self.queues[k].try_remove_min() {
                    Ok(Some(out)) => {
                        self.note_removed(1);
                        return Some((k, out));
                    }
                    Ok(None) => backoff.snooze(), // stale hint
                    Err(dlz_pq::locked::Contended) => {
                        // Redraw is the point of this mode; the snooze
                        // is near-free at first and escalates to
                        // yielding under sustained contention so the
                        // lock holder gets CPU (vital when
                        // oversubscribed).
                        backoff.snooze();
                    }
                },
            }
        }
    }

    /// Dequeue sampling the best of `k` queues instead of 2 — the
    /// d-choice generalization from the MultiQueue literature. `k = 1`
    /// removes from a single random queue (rank relaxation degrades to
    /// the divergent single-choice regime); `k = 2` is Algorithm 2;
    /// larger `k` tightens the rank distribution at the price of `k`
    /// hint reads per dequeue.
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn dequeue_k_with(&self, rng: &mut impl Rng64, k: usize) -> Option<(u64, V)> {
        assert!(k >= 1, "need at least one choice");
        let m = self.queues.len() as u64;
        let mut backoff = Backoff::new();
        loop {
            if self.confirmed_empty(&backoff) {
                return None;
            }
            // Best hint among k samples (ties keep the earlier draw).
            let mut best = rng.bounded(m) as usize;
            let mut best_hint = self.queues[best].min_hint();
            for _ in 1..k {
                let c = rng.bounded(m) as usize;
                let h = self.queues[c].min_hint();
                if h < best_hint {
                    best = c;
                    best_hint = h;
                }
            }
            if best_hint == EMPTY_HINT {
                backoff.snooze();
                continue;
            }
            match self.mode {
                DeleteMode::Strict => {
                    if let Some(out) = self.queues[best].remove_min() {
                        self.note_removed(1);
                        return Some(out);
                    }
                    backoff.snooze();
                }
                DeleteMode::TryLock => match self.queues[best].try_remove_min() {
                    Ok(Some(out)) => {
                        self.note_removed(1);
                        return Some(out);
                    }
                    Ok(None) => backoff.snooze(),
                    // Redraw after a near-free snooze that escalates to
                    // yielding under sustained contention (see
                    // dequeue_tracked).
                    Err(dlz_pq::locked::Contended) => backoff.snooze(),
                },
            }
        }
    }

    /// Sticky enqueue: keeps the queue chosen by `state` for up to
    /// `sticky.ops` consecutive inserts (one random draw per `s` ops).
    /// Falls back to [`insert_with`](Self::insert_with) when the policy
    /// is inactive. In `TryLock` mode contention voids the stickiness
    /// and redraws.
    pub fn insert_sticky(
        &self,
        state: &mut StickyState,
        rng: &mut impl Rng64,
        priority: u64,
        value: V,
    ) {
        let s = self.sticky.ops;
        if s <= 1 {
            return self.insert_with(rng, priority, value);
        }
        let m = self.queues.len() as u64;
        if state.insert_left == 0 {
            state.insert_queue = rng.bounded(m) as usize;
            state.insert_left = s;
        }
        state.insert_left -= 1;
        match self.mode {
            DeleteMode::Strict => {
                self.queues[state.insert_queue].insert(priority, value);
            }
            DeleteMode::TryLock => {
                let mut p = priority;
                let mut v = value;
                loop {
                    match self.queues[state.insert_queue].try_insert(p, v) {
                        Ok(()) => break,
                        Err((rp, rv)) => {
                            p = rp;
                            v = rv;
                            // Contention voids the stickiness: redraw
                            // and camp on the new queue instead.
                            state.insert_queue = rng.bounded(m) as usize;
                        }
                    }
                }
            }
        }
        self.note_inserted(1);
    }

    /// Sticky dequeue: keeps the last successful queue for up to
    /// `sticky.ops` consecutive dequeues, skipping the two hint reads
    /// and random draws in between. An empty or contended sticky queue
    /// voids the stickiness and falls back to the two-choice loop.
    /// Rank degrades within the O(s·m) envelope documented on
    /// [`Sticky`].
    pub fn dequeue_sticky(
        &self,
        state: &mut StickyState,
        rng: &mut impl Rng64,
    ) -> Option<(u64, V)> {
        let s = self.sticky.ops;
        if s <= 1 {
            return self.dequeue_with(rng);
        }
        if state.dequeue_left > 0 {
            state.dequeue_left -= 1;
            let q = &self.queues[state.dequeue_queue];
            let got = match self.mode {
                DeleteMode::Strict => q.remove_min(),
                // Err(Contended) → None: abandon the sticky queue.
                DeleteMode::TryLock => q.try_remove_min().unwrap_or_default(),
            };
            if let Some(out) = got {
                self.note_removed(1);
                return Some(out);
            }
            state.dequeue_left = 0;
        }
        let (k, out) = self.dequeue_tracked(rng)?;
        state.dequeue_queue = k;
        state.dequeue_left = s - 1;
        Some(out)
    }

    /// Inserts a whole batch into one randomly chosen queue under a
    /// single lock acquisition, with a single hint publish and one
    /// global-counter update. Returns the number of items inserted.
    ///
    /// Rank effect: like stickiness with `s = batch`, the batch lands
    /// in one queue, so dequeue rank degrades within the same O(s·m)
    /// envelope.
    pub fn insert_batch(
        &self,
        rng: &mut impl Rng64,
        items: impl IntoIterator<Item = (u64, V)>,
    ) -> usize {
        let m = self.queues.len() as u64;
        let mut guard = match self.mode {
            DeleteMode::Strict => self.queues[rng.bounded(m) as usize].lock(),
            DeleteMode::TryLock => {
                let mut backoff = Backoff::new();
                loop {
                    let i = rng.bounded(m) as usize;
                    if let Some(g) = self.queues[i].try_lock() {
                        break g;
                    }
                    backoff.snooze();
                }
            }
        };
        let mut n = 0usize;
        for (p, v) in items {
            guard.add(p, v);
            n += 1;
        }
        drop(guard); // publishes hint + count once
        self.note_inserted(n);
        n
    }

    /// Removes up to `max` entries from one two-choice-selected queue
    /// under a single lock acquisition, appending them to `out` in
    /// ascending (per-queue) priority order. Returns the number taken.
    ///
    /// Returns `0` only after observing a globally empty structure —
    /// the same emptiness contract as [`dequeue_with`](Self::dequeue_with).
    pub fn dequeue_batch(
        &self,
        rng: &mut impl Rng64,
        max: usize,
        out: &mut Vec<(u64, V)>,
    ) -> usize {
        if max == 0 {
            return 0;
        }
        let mut backoff = Backoff::new();
        loop {
            if self.confirmed_empty(&backoff) {
                return 0;
            }
            let Some(k) = self.pick_two(rng) else {
                backoff.snooze();
                continue;
            };
            let guard = match self.mode {
                DeleteMode::Strict => Some(self.queues[k].lock()),
                DeleteMode::TryLock => self.queues[k].try_lock(),
            };
            let Some(mut g) = guard else {
                backoff.snooze();
                continue;
            };
            let mut n = 0usize;
            while n < max {
                match g.delete_min() {
                    Some(e) => {
                        out.push(e);
                        n += 1;
                    }
                    None => break,
                }
            }
            drop(g); // single hint publish for the whole batch
            if n > 0 {
                self.note_removed(n);
                return n;
            }
            backoff.snooze(); // stale hint
        }
    }

    /// Enqueue, stamping the operation's update point.
    ///
    /// The stamp is drawn from `stamper` *inside the queue's critical
    /// section*, i.e. at the operation's linearization point in the
    /// underlying linearizable queue. The distributional-linearizability
    /// checker replays histories in stamp order (Definition 5.2's
    /// mapping).
    pub fn insert_stamped(
        &self,
        rng: &mut impl Rng64,
        priority: u64,
        value: V,
        stamper: &AtomicU64,
    ) -> u64 {
        let m = self.queues.len() as u64;
        let i = rng.bounded(m) as usize;
        let stamp = self.queues[i].with_locked(|q| {
            q.add(priority, value);
            stamper.fetch_add(1, Ordering::AcqRel)
        });
        self.note_inserted(1);
        stamp
    }

    /// Dequeue, stamping the operation's update point (see
    /// [`insert_stamped`](Self::insert_stamped)).
    pub fn dequeue_stamped(
        &self,
        rng: &mut impl Rng64,
        stamper: &AtomicU64,
    ) -> Option<(u64, V, u64)> {
        self.dequeue_stamped_tracked(rng, stamper)
            .map(|(_, out)| out)
    }

    fn dequeue_stamped_tracked(
        &self,
        rng: &mut impl Rng64,
        stamper: &AtomicU64,
    ) -> Option<(usize, (u64, V, u64))> {
        let mut backoff = Backoff::new();
        loop {
            if self.confirmed_empty(&backoff) {
                return None;
            }
            let Some(k) = self.pick_two(rng) else {
                backoff.snooze();
                continue;
            };
            let out = self.queues[k].with_locked(|q| {
                q.delete_min().map(|(p, v)| {
                    let s = stamper.fetch_add(1, Ordering::AcqRel);
                    (p, v, s)
                })
            });
            match out {
                Some(t) => {
                    self.note_removed(1);
                    return Some((k, t));
                }
                None => backoff.snooze(),
            }
        }
    }

    /// Sticky variant of [`insert_stamped`](Self::insert_stamped):
    /// identical stamping discipline, queue chosen by the sticky
    /// policy. Behaves exactly like `insert_stamped` when the policy is
    /// inactive, so history-recording workers can call it
    /// unconditionally.
    pub fn insert_sticky_stamped(
        &self,
        state: &mut StickyState,
        rng: &mut impl Rng64,
        priority: u64,
        value: V,
        stamper: &AtomicU64,
    ) -> u64 {
        let s = self.sticky.ops;
        if s <= 1 {
            return self.insert_stamped(rng, priority, value, stamper);
        }
        let m = self.queues.len() as u64;
        if state.insert_left == 0 {
            state.insert_queue = rng.bounded(m) as usize;
            state.insert_left = s;
        }
        state.insert_left -= 1;
        let stamp = self.queues[state.insert_queue].with_locked(|q| {
            q.add(priority, value);
            stamper.fetch_add(1, Ordering::AcqRel)
        });
        self.note_inserted(1);
        stamp
    }

    /// Sticky variant of [`dequeue_stamped`](Self::dequeue_stamped)
    /// (see [`dequeue_sticky`](Self::dequeue_sticky) for the policy).
    pub fn dequeue_sticky_stamped(
        &self,
        state: &mut StickyState,
        rng: &mut impl Rng64,
        stamper: &AtomicU64,
    ) -> Option<(u64, V, u64)> {
        let s = self.sticky.ops;
        if s <= 1 {
            return self.dequeue_stamped(rng, stamper);
        }
        if state.dequeue_left > 0 {
            state.dequeue_left -= 1;
            let out = self.queues[state.dequeue_queue].with_locked(|q| {
                q.delete_min().map(|(p, v)| {
                    let st = stamper.fetch_add(1, Ordering::AcqRel);
                    (p, v, st)
                })
            });
            if out.is_some() {
                self.note_removed(1);
                return out;
            }
            state.dequeue_left = 0;
        }
        let (k, out) = self.dequeue_stamped_tracked(rng, stamper)?;
        state.dequeue_queue = k;
        state.dequeue_left = s - 1;
        Some(out)
    }

    /// Drains everything into a sorted vector (sequential; for tests).
    pub fn drain_sorted(&self) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        for q in self.queues.iter() {
            q.with_locked(|inner| {
                while let Some(e) = inner.delete_min() {
                    out.push(e);
                }
            });
        }
        self.note_removed(out.len());
        out.sort_by_key(|(p, _)| *p);
        out
    }

    /// Convenience enqueue using the thread-local generator.
    pub fn insert(&self, priority: u64, value: V) {
        with_thread_rng(|rng| self.insert_with(rng, priority, value));
    }

    /// Convenience dequeue using the thread-local generator.
    pub fn dequeue(&self) -> Option<(u64, V)> {
        with_thread_rng(|rng| self.dequeue_with(rng))
    }
}

/// MultiQueues are themselves concurrent priority queues, so they slot
/// into any code written against [`ConcurrentPq`] (e.g. the SSSP
/// example uses the exact [`CoarsePq`](dlz_pq::CoarsePq) and the
/// MultiQueue interchangeably). Randomness comes from the thread-local
/// generator.
impl<V: Send, Q: SeqPriorityQueue<u64, V> + Send> ConcurrentPq<V> for MultiQueue<V, Q> {
    fn insert(&self, priority: u64, value: V) {
        MultiQueue::insert(self, priority, value);
    }

    fn remove_min(&self) -> Option<(u64, V)> {
        self.dequeue()
    }

    fn min_hint(&self) -> u64 {
        self.queues
            .iter()
            .map(|q| q.min_hint())
            .min()
            .unwrap_or(EMPTY_HINT)
    }

    fn approx_len(&self) -> usize {
        self.len()
    }
}

/// Builder for binary-heap-backed [`MultiQueue`]s.
#[derive(Debug, Clone, Default)]
pub struct MultiQueueBuilder {
    queues: Option<usize>,
    ratio: Option<usize>,
    threads: Option<usize>,
    mode: DeleteMode,
    sticky: Option<usize>,
    seed: Option<u64>,
}

impl MultiQueueBuilder {
    /// Sets the number of internal queues `m` explicitly.
    pub fn queues(mut self, m: usize) -> Self {
        self.queues = Some(m);
        self
    }

    /// Sets the ratio `C = m / n`; combine with [`threads`](Self::threads).
    pub fn ratio(mut self, c: usize) -> Self {
        self.ratio = Some(c);
        self
    }

    /// Sets the thread count `n` used with [`ratio`](Self::ratio).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Sets the delete mode (default [`DeleteMode::Strict`]).
    pub fn delete_mode(mut self, mode: DeleteMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the stickiness in consecutive same-kind ops per chosen
    /// queue (default 1 = no stickiness; see [`Sticky`]).
    pub fn sticky(mut self, ops: usize) -> Self {
        self.sticky = Some(ops);
        self
    }

    /// Reseeds the calling thread's convenience RNG (see
    /// [`MultiCounterBuilder::seed`](crate::counter::MultiCounterBuilder::seed)).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Builds the MultiQueue.
    ///
    /// # Panics
    /// If neither `queues` nor (`ratio` and `threads`) was given.
    pub fn build<V: Send>(self) -> MultiQueue<V> {
        let m = match (self.queues, self.ratio, self.threads) {
            (Some(m), _, _) => m,
            (None, Some(c), Some(n)) => c * n,
            _ => panic!("MultiQueueBuilder: set .queues(m) or .ratio(c).threads(n)"),
        };
        if let Some(seed) = self.seed {
            crate::rng::reseed_thread_rng(seed);
        }
        MultiQueue::with_config(
            (0..m).map(|_| BinaryHeap::new()).collect(),
            self.mode,
            Sticky::new(self.sticky.unwrap_or(1)),
        )
    }
}

/// A deterministic handle: a MultiQueue reference plus a private RNG
/// and the thread's [`StickyState`]. Convenient for per-thread use in
/// benchmarks — `insert`/`dequeue` honour the queue's sticky policy
/// automatically.
pub struct MqHandle<'a, V: Send, Q: SeqPriorityQueue<u64, V> + Send = BinaryHeap<u64, V>> {
    mq: &'a MultiQueue<V, Q>,
    rng: Xoshiro256,
    sticky: StickyState,
}

impl<'a, V: Send, Q: SeqPriorityQueue<u64, V> + Send> MqHandle<'a, V, Q> {
    /// Creates a handle with its own seeded generator.
    pub fn new(mq: &'a MultiQueue<V, Q>, seed: u64) -> Self {
        MqHandle {
            mq,
            rng: Xoshiro256::new(seed),
            sticky: StickyState::new(),
        }
    }

    /// Enqueue through the handle (sticky-aware).
    pub fn insert(&mut self, priority: u64, value: V) {
        self.mq
            .insert_sticky(&mut self.sticky, &mut self.rng, priority, value);
    }

    /// Dequeue through the handle (sticky-aware).
    pub fn dequeue(&mut self) -> Option<(u64, V)> {
        self.mq.dequeue_sticky(&mut self.sticky, &mut self.rng)
    }

    /// Batch enqueue through the handle (one lock acquisition).
    pub fn insert_batch(&mut self, items: impl IntoIterator<Item = (u64, V)>) -> usize {
        self.mq.insert_batch(&mut self.rng, items)
    }

    /// Batch dequeue through the handle (one lock acquisition).
    pub fn dequeue_batch(&mut self, max: usize, out: &mut Vec<(u64, V)>) -> usize {
        self.mq.dequeue_batch(&mut self.rng, max, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_queue_returns_none() {
        let mq: MultiQueue<u32> = MultiQueue::new(4);
        let mut rng = Xoshiro256::new(1);
        assert_eq!(mq.dequeue_with(&mut rng), None);
        assert!(mq.is_empty());
        assert_eq!(mq.approx_size(), 0);
    }

    #[test]
    fn conservation_sequential() {
        let mq: MultiQueue<u64> = MultiQueue::new(8);
        let mut rng = Xoshiro256::new(2);
        for p in 0..1000u64 {
            mq.insert_with(&mut rng, p, p * 10);
        }
        assert_eq!(mq.len(), 1000);
        assert_eq!(mq.approx_size(), 1000);
        let mut out = Vec::new();
        while let Some((p, v)) = mq.dequeue_with(&mut rng) {
            assert_eq!(v, p * 10);
            out.push(p);
        }
        assert_eq!(out.len(), 1000);
        out.sort_unstable();
        assert_eq!(out, (0..1000u64).collect::<Vec<_>>());
        assert_eq!(mq.approx_size(), 0);
    }

    #[test]
    fn single_queue_is_exact() {
        // m = 1: both choices are the same queue, so dequeues are the
        // true minimum — the structure degenerates to an exact PQ.
        let mq: MultiQueue<()> = MultiQueue::new(1);
        let mut rng = Xoshiro256::new(3);
        for p in [5u64, 2, 9, 1, 7] {
            mq.insert_with(&mut rng, p, ());
        }
        let drained: Vec<u64> =
            std::iter::from_fn(|| mq.dequeue_with(&mut rng).map(|(p, _)| p)).collect();
        assert_eq!(drained, vec![1, 2, 5, 7, 9]);
    }

    #[test]
    fn rank_error_is_bounded_in_practice() {
        // Sequential use: dequeue rank should be O(m); test a generous
        // multiple. (Statistical, deterministic seed.)
        let m = 8usize;
        let mq: MultiQueue<()> = MultiQueue::new(m);
        let mut rng = Xoshiro256::new(4);
        let n = 10_000u64;
        for p in 0..n {
            mq.insert_with(&mut rng, p, ());
        }
        use std::collections::BTreeSet;
        let mut present: BTreeSet<u64> = (0..n).collect();
        let mut max_rank = 0usize;
        for _ in 0..n {
            let (p, ()) = mq.dequeue_with(&mut rng).unwrap();
            let rank = present.range(..p).count();
            max_rank = max_rank.max(rank);
            present.remove(&p);
        }
        // Theory: expected rank O(m), max over n steps O(m log n)-ish.
        assert!(max_rank <= 30 * m, "max rank {max_rank} too large");
    }

    #[test]
    fn trylock_mode_conserves() {
        let mq: MultiQueue<u64> = MultiQueue::with_queues(
            (0..4).map(|_| BinaryHeap::new()).collect(),
            DeleteMode::TryLock,
        );
        let mut rng = Xoshiro256::new(5);
        for p in 0..500u64 {
            mq.insert_with(&mut rng, p, p);
        }
        let mut n = 0;
        while mq.dequeue_with(&mut rng).is_some() {
            n += 1;
        }
        assert_eq!(n, 500);
    }

    #[test]
    fn concurrent_producers_consumers_conserve() {
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        const PER: u64 = 10_000;
        let mq: Arc<MultiQueue<u64>> = Arc::new(MultiQueue::new(16));
        let consumed: Vec<u64> = std::thread::scope(|s| {
            for t in 0..PRODUCERS {
                let mq = Arc::clone(&mq);
                s.spawn(move || {
                    let mut rng = Xoshiro256::new(100 + t as u64);
                    for i in 0..PER {
                        let p = (t as u64) * PER + i;
                        mq.insert_with(&mut rng, p, p);
                    }
                });
            }
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|t| {
                    let mq = Arc::clone(&mq);
                    s.spawn(move || {
                        let mut rng = Xoshiro256::new(200 + t as u64);
                        let mut got = Vec::new();
                        let target = PRODUCERS as u64 * PER / CONSUMERS as u64;
                        while (got.len() as u64) < target {
                            if let Some((_, v)) = mq.dequeue_with(&mut rng) {
                                got.push(v);
                            }
                        }
                        got
                    })
                })
                .collect();
            consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut all = consumed;
        all.sort_unstable();
        assert_eq!(all, (0..PRODUCERS as u64 * PER).collect::<Vec<_>>());
        assert!(mq.is_empty());
        assert_eq!(mq.approx_size(), 0);
    }

    #[test]
    fn works_with_skiplist_substrate() {
        use dlz_pq::SkipListPq;
        let mq: MultiQueue<u64, SkipListPq<u64, u64>> = MultiQueue::with_queues(
            (0..4).map(|i| SkipListPq::with_seed(i as u64)).collect(),
            DeleteMode::Strict,
        );
        let mut rng = Xoshiro256::new(6);
        for p in 0..200u64 {
            mq.insert_with(&mut rng, p, p);
        }
        let mut n = 0;
        while mq.dequeue_with(&mut rng).is_some() {
            n += 1;
        }
        assert_eq!(n, 200);
    }

    #[test]
    fn stamped_ops_produce_unique_ordered_stamps() {
        let mq: MultiQueue<u64> = MultiQueue::new(4);
        let stamper = AtomicU64::new(0);
        let mut rng = Xoshiro256::new(7);
        let mut stamps = Vec::new();
        for p in 0..100u64 {
            stamps.push(mq.insert_stamped(&mut rng, p, p, &stamper));
        }
        while let Some((_, _, s)) = mq.dequeue_stamped(&mut rng, &stamper) {
            stamps.push(s);
        }
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 200, "stamps must be unique");
    }

    #[test]
    fn k_choice_dequeue_conserves_for_all_k() {
        for k in [1usize, 2, 4] {
            let mq: MultiQueue<u64> = MultiQueue::new(8);
            let mut rng = Xoshiro256::new(40 + k as u64);
            for p in 0..500u64 {
                mq.insert_with(&mut rng, p, p);
            }
            let mut n = 0;
            while mq.dequeue_k_with(&mut rng, k).is_some() {
                n += 1;
            }
            assert_eq!(n, 500, "k={k}");
        }
    }

    #[test]
    fn more_choices_tighten_rank_distribution() {
        use std::collections::BTreeSet;
        let rank_sum = |k: usize| {
            let m = 16;
            let mq: MultiQueue<u64> = MultiQueue::new(m);
            let mut rng = Xoshiro256::new(77);
            let n = 4_000u64;
            for p in 0..n {
                mq.insert_with(&mut rng, p, p);
            }
            let mut present: BTreeSet<u64> = (0..n).collect();
            let mut sum = 0usize;
            for _ in 0..n {
                let (p, _) = mq.dequeue_k_with(&mut rng, k).unwrap();
                sum += present.range(..p).count();
                present.remove(&p);
            }
            sum
        };
        let one = rank_sum(1);
        let two = rank_sum(2);
        let four = rank_sum(4);
        assert!(one > two, "k=1 total rank {one} should exceed k=2 {two}");
        assert!(two >= four, "k=2 total rank {two} should be >= k=4 {four}");
    }

    #[test]
    #[should_panic(expected = "at least one choice")]
    fn zero_choice_dequeue_rejected() {
        let mq: MultiQueue<u64> = MultiQueue::new(2);
        let mut rng = Xoshiro256::new(1);
        let _ = mq.dequeue_k_with(&mut rng, 0);
    }

    #[test]
    fn drain_sorted_collects_everything() {
        let mq: MultiQueue<char> = MultiQueue::new(4);
        let mut rng = Xoshiro256::new(8);
        mq.insert_with(&mut rng, 3, 'c');
        mq.insert_with(&mut rng, 1, 'a');
        mq.insert_with(&mut rng, 2, 'b');
        assert_eq!(mq.drain_sorted(), vec![(1, 'a'), (2, 'b'), (3, 'c')]);
        assert!(mq.is_empty());
        assert_eq!(mq.approx_size(), 0);
    }

    #[test]
    fn builder_forms() {
        let a: MultiQueue<()> = MultiQueue::<()>::builder().queues(6).build();
        assert_eq!(a.num_queues(), 6);
        assert_eq!(a.sticky(), Sticky { ops: 1 });
        let b: MultiQueue<()> = MultiQueue::<()>::builder()
            .ratio(2)
            .threads(3)
            .delete_mode(DeleteMode::TryLock)
            .sticky(8)
            .build();
        assert_eq!(b.num_queues(), 6);
        assert_eq!(b.mode(), DeleteMode::TryLock);
        assert_eq!(b.sticky(), Sticky { ops: 8 });
        assert!(b.sticky().is_active());
    }

    #[test]
    fn handle_wraps_rng() {
        let mq: MultiQueue<u64> = MultiQueue::new(4);
        let mut h = MqHandle::new(&mq, 9);
        for p in 0..50 {
            h.insert(p, p);
        }
        let mut n = 0;
        while h.dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, 50);
    }

    #[test]
    fn sticky_handle_conserves_in_both_modes() {
        for mode in [DeleteMode::Strict, DeleteMode::TryLock] {
            let mq: MultiQueue<u64> = MultiQueue::with_config(
                (0..8).map(|_| BinaryHeap::new()).collect(),
                mode,
                Sticky::new(6),
            );
            let mut h = MqHandle::new(&mq, 10);
            for p in 0..2_000u64 {
                h.insert(p, p);
            }
            assert_eq!(mq.approx_size(), 2_000);
            let mut n = 0;
            while h.dequeue().is_some() {
                n += 1;
            }
            assert_eq!(n, 2_000, "{mode:?}");
            assert_eq!(mq.approx_size(), 0);
        }
    }

    #[test]
    fn sticky_concurrent_producers_consumers_conserve() {
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        const PER: u64 = 8_000;
        for mode in [DeleteMode::Strict, DeleteMode::TryLock] {
            let mq: Arc<MultiQueue<u64>> = Arc::new(MultiQueue::with_config(
                (0..16).map(|_| BinaryHeap::new()).collect(),
                mode,
                Sticky::new(8),
            ));
            let consumed: Vec<u64> = std::thread::scope(|s| {
                for t in 0..PRODUCERS {
                    let mq = Arc::clone(&mq);
                    s.spawn(move || {
                        let mut h = MqHandle::new(&mq, 300 + t as u64);
                        for i in 0..PER {
                            let p = (t as u64) * PER + i;
                            h.insert(p, p);
                        }
                    });
                }
                let consumers: Vec<_> = (0..CONSUMERS)
                    .map(|t| {
                        let mq = Arc::clone(&mq);
                        s.spawn(move || {
                            let mut h = MqHandle::new(&mq, 400 + t as u64);
                            let mut got = Vec::new();
                            let target = PRODUCERS as u64 * PER / CONSUMERS as u64;
                            while (got.len() as u64) < target {
                                if let Some((_, v)) = h.dequeue() {
                                    got.push(v);
                                }
                            }
                            got
                        })
                    })
                    .collect();
                consumers
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
            let mut all = consumed;
            all.sort_unstable();
            assert_eq!(all, (0..PRODUCERS as u64 * PER).collect::<Vec<_>>());
            assert!(mq.is_empty(), "{mode:?}");
        }
    }

    #[test]
    fn sticky_stamped_ops_produce_unique_stamps() {
        let mq: MultiQueue<u64> = MultiQueue::with_config(
            (0..4).map(|_| BinaryHeap::new()).collect(),
            DeleteMode::Strict,
            Sticky::new(5),
        );
        let stamper = AtomicU64::new(0);
        let mut rng = Xoshiro256::new(11);
        let mut st = StickyState::new();
        let mut stamps = Vec::new();
        for p in 0..150u64 {
            stamps.push(mq.insert_sticky_stamped(&mut st, &mut rng, p, p, &stamper));
        }
        while let Some((_, _, s)) = mq.dequeue_sticky_stamped(&mut st, &mut rng, &stamper) {
            stamps.push(s);
        }
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 300, "stamps must be unique");
        assert!(mq.is_empty());
    }

    #[test]
    fn batch_ops_conserve_and_amortize() {
        for mode in [DeleteMode::Strict, DeleteMode::TryLock] {
            let mq: MultiQueue<u64> =
                MultiQueue::with_queues((0..8).map(|_| BinaryHeap::new()).collect(), mode);
            let mut rng = Xoshiro256::new(12);
            let mut inserted = 0usize;
            for chunk in 0..100u64 {
                let items: Vec<(u64, u64)> =
                    (0..7).map(|i| (chunk * 7 + i, chunk * 7 + i)).collect();
                inserted += mq.insert_batch(&mut rng, items);
            }
            assert_eq!(inserted, 700);
            assert_eq!(mq.approx_size(), 700);
            let mut out = Vec::new();
            loop {
                let n = mq.dequeue_batch(&mut rng, 16, &mut out);
                if n == 0 {
                    break;
                }
            }
            assert_eq!(out.len(), 700, "{mode:?}");
            let mut ps: Vec<u64> = out.iter().map(|(p, _)| *p).collect();
            ps.sort_unstable();
            ps.dedup();
            assert_eq!(ps.len(), 700, "batch dequeue duplicated or lost items");
            assert_eq!(mq.approx_size(), 0);
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mq: MultiQueue<u64> = MultiQueue::new(4);
        let mut rng = Xoshiro256::new(13);
        assert_eq!(mq.insert_batch(&mut rng, std::iter::empty()), 0);
        let mut out = Vec::new();
        assert_eq!(mq.dequeue_batch(&mut rng, 0, &mut out), 0);
        assert_eq!(mq.dequeue_batch(&mut rng, 8, &mut out), 0);
        assert!(out.is_empty());
        assert!(mq.is_empty());
    }

    #[test]
    fn sticky_rank_stays_within_s_times_m_envelope() {
        use std::collections::BTreeSet;
        // Sequential statistical check of the documented O(s·m) bound:
        // drain a prefilled queue through a sticky handle and compare
        // mean dequeue rank against C·s·m (generous C, fixed seed).
        let m = 8usize;
        let s = 8usize;
        let mq: MultiQueue<u64> = MultiQueue::with_config(
            (0..m).map(|_| BinaryHeap::new()).collect(),
            DeleteMode::Strict,
            Sticky::new(s),
        );
        let mut h = MqHandle::new(&mq, 14);
        let n = 8_000u64;
        for p in 0..n {
            h.insert(p, p);
        }
        let mut present: BTreeSet<u64> = (0..n).collect();
        let mut sum = 0usize;
        let mut max_rank = 0usize;
        for _ in 0..n {
            let (p, _) = h.dequeue().unwrap();
            let rank = present.range(..p).count();
            sum += rank;
            max_rank = max_rank.max(rank);
            present.remove(&p);
        }
        let mean = sum as f64 / n as f64;
        let bound = 30.0 * (s * m) as f64;
        assert!(
            mean <= bound,
            "mean sticky rank {mean} above O(s·m) {bound}"
        );
        assert!(
            (max_rank as f64) <= 30.0 * (s * m) as f64 * (n as f64).ln(),
            "max sticky rank {max_rank} implausibly large"
        );
    }

    #[test]
    fn approx_size_tracks_len_when_quiescent() {
        let mq: MultiQueue<u64> = MultiQueue::new(4);
        let mut rng = Xoshiro256::new(15);
        for p in 0..100u64 {
            mq.insert_with(&mut rng, p, p);
        }
        assert_eq!(mq.approx_size(), mq.len());
        for _ in 0..40 {
            mq.dequeue_with(&mut rng);
        }
        assert_eq!(mq.approx_size(), mq.len());
        assert_eq!(mq.approx_size(), 60);
    }

    #[test]
    fn preexisting_entries_seed_the_global_counter() {
        let mut a = BinaryHeap::new();
        a.add(1u64, 1u64);
        a.add(2, 2);
        let mut b = BinaryHeap::new();
        b.add(3u64, 3u64);
        let mq: MultiQueue<u64> = MultiQueue::with_queues(vec![a, b], DeleteMode::Strict);
        assert_eq!(mq.approx_size(), 3);
        assert_eq!(mq.len(), 3);
    }
}
