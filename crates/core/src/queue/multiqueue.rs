//! The MultiQueue — Algorithm 2 of the paper.
//!
//! ```text
//! function Enqueue(e)
//!     p <- Clock.Read(); i <- random(1, m); PQs[i].Add(e, p)
//!
//! function Dequeue()
//!     i <- random(1, m); j <- random(1, m)
//!     (ei, pi) <- PQs[i].ReadMin(); (ej, pj) <- PQs[j].ReadMin()
//!     if pi > pj: i = j
//!     return PQs[i].DeleteMin()
//! ```
//!
//! This module implements the priority-queue core (explicit `u64`
//! priorities); [`RelaxedFifo`](crate::queue::RelaxedFifo) adds the
//! timestamping of the paper's queue semantics on top.
//!
//! # Architecture: structure × choice policy × handle
//!
//! The paper's guarantee is a property of the **choice process** layered
//! over the `m` queues, not of one hard-coded method, so the selection
//! layer is a pluggable [`ChoicePolicy`] (two-choice, d-choice, static
//! and adaptive stickiness — see [`policy`](crate::queue::policy)).
//! The shared [`MultiQueue`] holds only the queues and a default
//! [`PolicyCfg`]; all per-thread state — the RNG and the policy
//! instance — lives in an [`MqHandle`], the operational surface:
//!
//! * [`MqHandle::insert`] / [`MqHandle::dequeue`] /
//!   [`MqHandle::dequeue_k`] / [`MqHandle::insert_batch`] /
//!   [`MqHandle::dequeue_batch`] — the five operations;
//! * [`MqHandle::stamped`] — the orthogonal history mode: the same five
//!   operations, each drawing an update-point stamp inside its critical
//!   section for the Section 5 checker, instead of `*_stamped` method
//!   clones.
//!
//! Callers that manage their own RNG (e.g. [`RelaxedFifo`]) use the
//! [`MultiQueue`] ops directly, passing a policy and generator.
//!
//! The `ReadMin` step uses the lock-free hint published by
//! [`LockedPq`] — by the time the chosen queue is locked, its minimum
//! may have changed. That is not a bug: the rank analysis (Theorem 7.1)
//! is precisely about surviving such staleness, and the hint-based
//! implementation matches the practical MultiQueues the paper cites
//! (\[27\], \[3\]).
//!
//! # Hot-path engineering
//!
//! * Each [`LockedPq`] packs lock flag, generation and entry count into
//!   one cache-padded atomic header next to the min hint, so a `ReadMin`
//!   touches one line and adjacent queues never false-share. The
//!   generation doubles as the change-rate signal
//!   [`AdaptiveSticky`](crate::queue::AdaptiveSticky) adapts from.
//! * Emptiness on the dequeue retry path is gated by a single padded
//!   global approximate-size counter ([`MultiQueue::approx_size`]); the
//!   exact O(m) sweep ([`MultiQueue::len`]) runs only to *confirm* an
//!   empty observation, never per retry.
//! * Retry loops use [`Backoff`] instead of spinning hot on stale hints.
//! * Sticky policies skip random draws and hint reads while camped, and
//!   the batch operations amortize one lock acquisition and one hint
//!   publish over a whole batch. Both trade rank quality for throughput
//!   within the policy's documented envelope (O(s·m) for stickiness).

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dlz_pq::locked::EMPTY_HINT;
use dlz_pq::{
    Backoff, BatchPop, BatchPush, BinaryHeap, ConcurrentPq, ContentionStats, DequeueOutcome,
    InsertOutcome, SeqPriorityQueue, Substrate, SubstrateCfg,
};

use crate::padded::Padded;
use crate::queue::policy::{
    AnyPolicy, ChoiceOp, ChoicePolicy, DChoice, PolicyCfg, QueueView, TwoChoice,
};
use crate::rng::{with_thread_rng, Rng64, Xoshiro256};

/// What a dequeue does when its chosen queue is contended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeleteMode {
    /// Lock the chosen queue unconditionally (Algorithm 2 as written).
    #[default]
    Strict,
    /// If the chosen queue's lock is taken, redraw two fresh queues
    /// instead of waiting (the Rihani-et-al. practical variant).
    TryLock,
}

/// A relaxed concurrent priority queue over `m` locked sequential queues.
///
/// # Example
/// ```
/// use dlz_core::MultiQueue;
///
/// let mq: MultiQueue<&str> = MultiQueue::<&str>::builder().queues(4).build();
/// let mut h = mq.handle(1);
/// h.insert(30, "c");
/// h.insert(10, "a");
/// h.insert(20, "b");
/// // Dequeues come out in *approximately* ascending priority order;
/// // every element is eventually returned exactly once.
/// let mut got: Vec<_> = (0..3).map(|_| h.dequeue().unwrap()).collect();
/// got.sort();
/// assert_eq!(got, vec![(10, "a"), (20, "b"), (30, "c")]);
/// assert_eq!(h.dequeue(), None);
/// ```
#[derive(Debug)]
pub struct MultiQueue<V, Q = BinaryHeap<u64, V>>
where
    Q: SeqPriorityQueue<u64, V> + Send,
    V: Send,
{
    /// Each per-queue substrate keeps its hot words cache padded, so
    /// adjacent queues in this array never false-share.
    queues: Box<[Substrate<V, Q>]>,
    mode: DeleteMode,
    /// Which substrate every queue runs on (uniform across the
    /// structure; mixing substrates within one MultiQueue would make
    /// the rank envelope unattributable).
    substrate: SubstrateCfg,
    /// Default choice policy; every [`handle`](Self::handle) builds its
    /// own per-handle instance from this config.
    policy: PolicyCfg,
    /// Padded global approximate size: one relaxed RMW per (batch of)
    /// operation(s). Replaces the O(m) per-queue sweep on the dequeue
    /// retry path; signed so transient reorderings cannot wrap.
    size: Padded<AtomicI64>,
    /// One flag per queue, set by the first operation that observes the
    /// queue poisoned. The winner of that CAS subtracts the dead
    /// queue's (stale) entry count from `size`, so the emptiness gate
    /// never spins waiting for items no operation can reach. Cleared by
    /// [`salvage`](Self::salvage) when the queue returns to service.
    quarantined: Box<[AtomicBool]>,
}

/// What a [`MultiQueue::salvage`] sweep recovered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SalvageOutcome {
    /// Poisoned queues that were drained and returned to service.
    pub queues_salvaged: usize,
    /// Entries recovered from those queues and reinserted into healthy
    /// ones.
    pub items_recovered: usize,
}

/// A bounded-retry [`MqHandle`] operation gave up: the deadline passed
/// without the operation landing (e.g. every lock it tried was held by
/// stalled threads, or all queues were poisoned).
///
/// This is the escape hatch from the blocking operations' "retry
/// forever" contract — fault-tolerant callers use
/// [`MqHandle::try_insert_for`] / [`MqHandle::try_dequeue_for`] and
/// turn this error into a diagnosis instead of hanging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MqOpTimeout {
    /// Which operation kind gave up.
    pub op: ChoiceOp,
    /// The bound that elapsed.
    pub timeout: Duration,
}

impl std::fmt::Display for MqOpTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.op {
            ChoiceOp::Insert => "insert",
            ChoiceOp::Dequeue => "dequeue",
        };
        write!(f, "{kind} did not complete within {:?}", self.timeout)
    }
}

impl std::error::Error for MqOpTimeout {}

/// Consecutive poisoned choices an insert loop tolerates before it
/// stops trusting the policy and linear-scans for a healthy queue.
const POISON_RECHOOSE_LIMIT: u32 = 4;

impl<V: Send> MultiQueue<V> {
    /// Starts building a binary-heap-backed MultiQueue.
    pub fn builder() -> MultiQueueBuilder {
        MultiQueueBuilder::default()
    }

    /// Creates a MultiQueue with `m` binary-heap queues, strict deletes,
    /// two-choice policy.
    pub fn new(m: usize) -> Self {
        Self::with_queues(
            (0..m).map(|_| BinaryHeap::new()).collect(),
            DeleteMode::Strict,
        )
    }
}

impl<V: Send, Q: SeqPriorityQueue<u64, V> + Send> MultiQueue<V, Q> {
    /// Builds from explicit sequential queues (any substrate) and mode.
    ///
    /// # Panics
    /// If `queues` is empty.
    pub fn with_queues(queues: Vec<Q>, mode: DeleteMode) -> Self {
        Self::with_config(queues, mode, PolicyCfg::TwoChoice)
    }

    /// Builds from explicit sequential queues, mode and default choice
    /// policy, on the default (packed-lock) substrate.
    ///
    /// # Panics
    /// If `queues` is empty.
    pub fn with_config(queues: Vec<Q>, mode: DeleteMode, policy: PolicyCfg) -> Self {
        Self::with_substrate(queues, mode, policy, SubstrateCfg::Locked)
    }

    /// Builds from explicit sequential queues, mode, default choice
    /// policy and per-queue substrate.
    ///
    /// # Panics
    /// If `queues` is empty.
    pub fn with_substrate(
        queues: Vec<Q>,
        mode: DeleteMode,
        policy: PolicyCfg,
        substrate: SubstrateCfg,
    ) -> Self {
        assert!(!queues.is_empty(), "MultiQueue needs at least one queue");
        let queues: Box<[Substrate<V, Q>]> =
            queues.into_iter().map(|q| substrate.wrap(q)).collect();
        let size: i64 = queues.iter().map(|q| q.approx_len() as i64).sum();
        let quarantined = (0..queues.len()).map(|_| AtomicBool::new(false)).collect();
        MultiQueue {
            queues,
            mode,
            substrate,
            policy,
            size: Padded::new(AtomicI64::new(size)),
            quarantined,
        }
    }

    /// Number of internal queues (the paper's `m`).
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// The configured delete mode.
    pub fn mode(&self) -> DeleteMode {
        self.mode
    }

    /// The per-queue substrate every queue runs on.
    pub fn substrate(&self) -> SubstrateCfg {
        self.substrate
    }

    /// Whether a contended operation blocks on its chosen queue
    /// (strict mode) or reports back for a redraw (try-lock mode).
    #[inline]
    fn blocking(&self) -> bool {
        matches!(self.mode, DeleteMode::Strict)
    }

    /// The structure's default choice policy (what [`handle`](Self::handle)
    /// builds instances from).
    pub fn policy(&self) -> PolicyCfg {
        self.policy
    }

    /// A deterministic operating handle using the structure's default
    /// policy. Equivalent to [`MqHandle::new`].
    pub fn handle(&self, seed: u64) -> MqHandle<'_, V, Q, AnyPolicy> {
        MqHandle::new(self, seed)
    }

    /// Total entries across queues, via an O(m) sweep of the per-queue
    /// headers. Exact when quiescent; transiently off by in-flight
    /// operations under concurrency. Hot paths should prefer
    /// [`approx_size`](Self::approx_size), which is a single load.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.approx_len()).sum()
    }

    /// `true` if no entries are observed (O(m) sweep; exact when
    /// quiescent, like [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate total entries from the padded global counter: one
    /// relaxed load, no sweep. Exact when quiescent; may lag in-flight
    /// operations by their count. This is what the dequeue retry loops
    /// consult — they fall back to the exact sweep only to *confirm* an
    /// empty observation before returning `None`.
    pub fn approx_size(&self) -> usize {
        self.size.load(Ordering::Relaxed).max(0) as usize
    }

    #[inline]
    fn note_inserted(&self, n: usize) {
        self.size.fetch_add(n as i64, Ordering::Relaxed);
    }

    #[inline]
    fn note_removed(&self, n: usize) {
        self.size.fetch_sub(n as i64, Ordering::Relaxed);
    }

    /// Entries reachable through operations: the O(m) sweep of
    /// [`len`](Self::len), minus poisoned queues — their items cannot
    /// be served until [`salvage`](Self::salvage) runs, so counting
    /// them would make the dequeue loops spin forever on a quarantined
    /// remainder.
    fn reachable_len(&self) -> usize {
        self.queues
            .iter()
            .filter(|q| !q.is_poisoned())
            .map(|q| q.approx_len())
            .sum()
    }

    /// Number of currently poisoned (quarantined) queues.
    pub fn poisoned_count(&self) -> usize {
        self.queues.iter().filter(|q| q.is_poisoned()).count()
    }

    /// Records queue `i`'s poisoning exactly once: the first observer
    /// wins the flag CAS and subtracts the dead queue's (stale) header
    /// count from the global size counter, so
    /// [`confirmed_empty`](Self::confirmed_empty) keeps working while
    /// the queue is out of service.
    fn quarantine(&self, i: usize) {
        if self.quarantined[i]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            self.size
                .fetch_sub(self.queues[i].approx_len() as i64, Ordering::Relaxed);
        }
    }

    /// First non-poisoned queue, if any — the insert loops' fallback
    /// when the policy keeps landing on quarantined queues.
    fn any_healthy_queue(&self) -> Option<usize> {
        (0..self.queues.len()).find(|&i| !self.queues[i].is_poisoned())
    }

    /// The dequeue loops' emptiness gate. Cheap path: one relaxed load
    /// of the global counter. The exact O(m) sweep runs only when the
    /// counter hints empty — or, as a drift safety net, once the
    /// backoff has escalated past pure spinning. Quarantined queues'
    /// items are unreachable, so they count as absent here.
    #[inline]
    fn confirmed_empty(&self, backoff: &Backoff) -> bool {
        (self.size.load(Ordering::Relaxed) <= 0 || backoff.is_yielding())
            && self.reachable_len() == 0
    }

    // -----------------------------------------------------------------
    // The five generic operations. Each takes the caller's policy and
    // generator; `MqHandle` packages those and is the usual way in.
    // -----------------------------------------------------------------

    /// Enqueue: the policy picks the queue (Algorithm 2's Enqueue with
    /// [`TwoChoice`]).
    pub fn insert(
        &self,
        policy: &mut impl ChoicePolicy,
        rng: &mut impl Rng64,
        priority: u64,
        value: V,
    ) {
        self.insert_one(
            policy,
            rng,
            priority,
            value,
            None,
            &mut ContentionStats::new(),
        );
    }

    /// Dequeue: the policy picks the queue (Algorithm 2's Dequeue with
    /// [`TwoChoice`]).
    ///
    /// Returns `None` only after observing a globally empty structure;
    /// with concurrent enqueuers a `None` means "empty at some sample
    /// point", the strongest statement a relaxed queue can make.
    pub fn dequeue(
        &self,
        policy: &mut impl ChoicePolicy,
        rng: &mut impl Rng64,
    ) -> Option<(u64, V)> {
        self.dequeue_one(policy, rng, None, &mut ContentionStats::new())
            .map(|(p, v, _)| (p, v))
    }

    /// Dequeue sampling the best of `k` queues — a one-off
    /// [`DChoice`] draw regardless of the caller's policy. `k = 1`
    /// removes from a single random queue (rank relaxation degrades to
    /// the divergent single-choice regime); `k = 2` is Algorithm 2;
    /// larger `k` tightens the rank distribution at the price of `k`
    /// hint reads per dequeue.
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn dequeue_k(&self, rng: &mut impl Rng64, k: usize) -> Option<(u64, V)> {
        assert!(k >= 1, "need at least one choice");
        self.dequeue_one(&mut DChoice::new(k), rng, None, &mut ContentionStats::new())
            .map(|(p, v, _)| (p, v))
    }

    /// Inserts a whole batch into one policy-chosen queue under a
    /// single lock acquisition, with a single hint publish and one
    /// global-counter update. Returns the number of items inserted.
    ///
    /// The batch counts as *one* operation for camping policies; its
    /// rank effect is like stickiness with `s = batch` (the batch lands
    /// in one queue), degrading within the same O(s·m) envelope.
    pub fn insert_batch(
        &self,
        policy: &mut impl ChoicePolicy,
        rng: &mut impl Rng64,
        items: impl IntoIterator<Item = (u64, V)>,
    ) -> usize {
        self.insert_batch_inner(policy, rng, items, None, &mut ContentionStats::new())
    }

    /// Removes up to `max` entries from one policy-chosen queue under a
    /// single lock acquisition, appending them to `out` in ascending
    /// (per-queue) priority order. Returns the number taken.
    ///
    /// Returns `0` only after observing a globally empty structure —
    /// the same emptiness contract as [`dequeue`](Self::dequeue).
    pub fn dequeue_batch(
        &self,
        policy: &mut impl ChoicePolicy,
        rng: &mut impl Rng64,
        max: usize,
        out: &mut Vec<(u64, V)>,
    ) -> usize {
        self.dequeue_batch_inner(
            policy,
            rng,
            max,
            None,
            |p, v, _| out.push((p, v)),
            &mut ContentionStats::new(),
        )
    }

    // -----------------------------------------------------------------
    // Internals: one implementation per operation, stamped or not.
    // -----------------------------------------------------------------

    /// The insert path. When `stamper` is given, the stamp is drawn
    /// *inside the queue's critical section*, i.e. at the operation's
    /// linearization point in the underlying linearizable queue, and
    /// returned (0 otherwise). Contention events land in `stats` (the
    /// wrappers without a counter-carrying handle pass a throwaway).
    fn insert_one(
        &self,
        policy: &mut impl ChoicePolicy,
        rng: &mut impl Rng64,
        priority: u64,
        value: V,
        stamper: Option<&AtomicU64>,
        stats: &mut ContentionStats,
    ) -> u64 {
        let mut poisoned_hits = 0u32;
        let mut entry = (priority, value);
        loop {
            // After enough consecutive poisoned choices, stop trusting
            // the policy's draw and take any healthy queue directly —
            // inserts must land somewhere, and a small-m structure with
            // most queues quarantined could otherwise redraw for a
            // long time.
            let i = if poisoned_hits >= POISON_RECHOOSE_LIMIT {
                self.any_healthy_queue()
                    .expect("every queue is poisoned; salvage() before inserting")
            } else {
                policy.choose_insert(rng, self)
            };
            match self.queues[i].insert(entry.0, entry.1, self.blocking(), stamper, stats) {
                InsertOutcome::Done(stamp) => {
                    self.note_inserted(1);
                    policy.on_success(ChoiceOp::Insert, i, self);
                    return stamp;
                }
                // Contention voids any camp; the next choice draws
                // elsewhere (redraw is this mode's point).
                InsertOutcome::Contended(p, v) => {
                    entry = (p, v);
                    policy.on_contention(ChoiceOp::Insert, i);
                }
                InsertOutcome::Poisoned(p, v) => {
                    entry = (p, v);
                    self.quarantine(i);
                    policy.on_poisoned(ChoiceOp::Insert, i);
                    poisoned_hits += 1;
                }
            }
        }
    }

    /// The dequeue retry loop (stamp drawn inside the critical section
    /// when `stamper` is given; third tuple field is 0 otherwise).
    fn dequeue_one(
        &self,
        policy: &mut impl ChoicePolicy,
        rng: &mut impl Rng64,
        stamper: Option<&AtomicU64>,
        stats: &mut ContentionStats,
    ) -> Option<(u64, V, u64)> {
        let mut backoff = Backoff::new();
        loop {
            if self.confirmed_empty(&backoff) {
                stats.empty_confirms += 1;
                return None;
            }
            let Some(k) = policy.choose_dequeue(rng, self) else {
                stats.note_snooze(backoff.is_yielding());
                backoff.snooze();
                continue;
            };
            match self.queues[k].dequeue(self.blocking(), stamper, stats) {
                DequeueOutcome::Served(p, v, s) => {
                    self.note_removed(1);
                    policy.on_success(ChoiceOp::Dequeue, k, self);
                    return Some((p, v, s));
                }
                // Poison is not contention: evict any camp on the dead
                // queue and re-choose immediately (the poisoned queue
                // publishes the empty hint, so fresh samples steer
                // clear — no snooze needed and none recorded).
                DequeueOutcome::Poisoned => {
                    self.quarantine(k);
                    policy.on_poisoned(ChoiceOp::Dequeue, k);
                }
                // Stale hint / drained camp (`Empty`) or a contended
                // acquisition (`Contended`): void any camp and back
                // off rather than hammering the hint lines — the snooze
                // is near-free at first and escalates to yielding under
                // sustained contention so lock holders get CPU (vital
                // when oversubscribed).
                DequeueOutcome::Empty | DequeueOutcome::Contended => {
                    policy.on_contention(ChoiceOp::Dequeue, k);
                    stats.note_snooze(backoff.is_yielding());
                    backoff.snooze();
                }
            }
        }
    }

    /// The batch-insert path: one lock acquisition, one hint publish,
    /// one counter update; per-item stamps when `stamped` is given.
    fn insert_batch_inner(
        &self,
        policy: &mut impl ChoicePolicy,
        rng: &mut impl Rng64,
        items: impl IntoIterator<Item = (u64, V)>,
        mut stamped: Option<(&AtomicU64, &mut Vec<u64>)>,
        stats: &mut ContentionStats,
    ) -> usize {
        let mut backoff = Backoff::new();
        let mut poisoned_hits = 0u32;
        // The iterator round-trips through the substrate: a contended
        // or poisoned attempt hands `items` back unconsumed, so the
        // retry loop rebinds it and redraws a queue.
        let mut items = items;
        loop {
            let i = if poisoned_hits >= POISON_RECHOOSE_LIMIT {
                self.any_healthy_queue()
                    .expect("every queue is poisoned; salvage() before inserting")
            } else {
                policy.choose_insert(rng, self)
            };
            let relend = stamped.as_mut().map(|(s, v)| (*s, &mut **v));
            match self.queues[i].insert_batch(items, self.blocking(), relend, stats) {
                BatchPush::Done(n) => {
                    self.note_inserted(n);
                    if n > 0 {
                        policy.on_success(ChoiceOp::Insert, i, self);
                    }
                    return n;
                }
                BatchPush::Contended(back) => {
                    items = back;
                    policy.on_contention(ChoiceOp::Insert, i);
                    stats.note_snooze(backoff.is_yielding());
                    backoff.snooze();
                }
                BatchPush::Poisoned(back) => {
                    items = back;
                    self.quarantine(i);
                    policy.on_poisoned(ChoiceOp::Insert, i);
                    poisoned_hits += 1;
                }
            }
        }
    }

    /// The batch-dequeue path; `sink` receives `(priority, value,
    /// stamp)` per entry (stamp 0 when unstamped).
    fn dequeue_batch_inner(
        &self,
        policy: &mut impl ChoicePolicy,
        rng: &mut impl Rng64,
        max: usize,
        stamper: Option<&AtomicU64>,
        mut sink: impl FnMut(u64, V, u64),
        stats: &mut ContentionStats,
    ) -> usize {
        if max == 0 {
            return 0;
        }
        let mut backoff = Backoff::new();
        loop {
            if self.confirmed_empty(&backoff) {
                stats.empty_confirms += 1;
                return 0;
            }
            let Some(k) = policy.choose_dequeue(rng, self) else {
                stats.note_snooze(backoff.is_yielding());
                backoff.snooze();
                continue;
            };
            match self.queues[k].dequeue_batch(max, self.blocking(), stamper, &mut sink, stats) {
                BatchPop::Served(n) => {
                    self.note_removed(n);
                    policy.on_success(ChoiceOp::Dequeue, k, self);
                    return n;
                }
                BatchPop::Poisoned => {
                    self.quarantine(k);
                    policy.on_poisoned(ChoiceOp::Dequeue, k);
                }
                // Stale hint (acquired an empty queue) or a contended
                // acquisition: back off before redrawing.
                BatchPop::Empty | BatchPop::Contended => {
                    policy.on_contention(ChoiceOp::Dequeue, k);
                    stats.note_snooze(backoff.is_yielding());
                    backoff.snooze();
                }
            }
        }
    }

    /// Best-effort recovery of quarantined queues: for every poisoned
    /// queue, acquires it past the poison, drains whatever entries the
    /// underlying sequential queue still serves consistently, returns
    /// the queue to service under a fresh generation (the normal guard
    /// release recounts, republishes the hint and clears the poison
    /// bit), and reinserts the recovered entries into healthy queues.
    ///
    /// "Still consistent" is the sequential queue's own view: a panic
    /// in the middle of `add`/`delete_min` leaves whatever state that
    /// structure's panic safety left behind, and salvage trusts
    /// `delete_min` until it reports empty. Entries the panicked
    /// critical section had half-removed may be lost — hence
    /// *best-effort* — but everything recovered is re-served exactly
    /// once and the global size accounting ends exact for the
    /// recovered set.
    ///
    /// Safe to call concurrently with operations and with other
    /// salvagers (the sweep is per-queue idempotent). Returns what was
    /// recovered.
    pub fn salvage(&self) -> SalvageOutcome {
        let mut out = SalvageOutcome::default();
        let mut recovered: Vec<(u64, V)> = Vec::new();
        for (i, q) in self.queues.iter().enumerate() {
            if !q.is_poisoned() {
                continue;
            }
            // Ensure the quarantine accounting ran even if no operation
            // observed the poison before us: the reinsertions below go
            // through the normal counted insert path, so the stale
            // count must be gone from `size` first.
            self.quarantine(i);
            // The substrate drains everything still consistently served
            // (including a lock-free queue's unclaimed pending stack)
            // and releases under a fresh generation with the poison bit
            // cleared.
            q.salvage_into(&mut recovered);
            self.quarantined[i].store(false, Ordering::Release);
            out.queues_salvaged += 1;
        }
        out.items_recovered = recovered.len();
        // Re-home the survivors through the normal insert path (which
        // re-adds them to `size` and skips any queue poisoned since).
        // Fresh two-choice with a fixed seed: salvage is a recovery
        // sweep, deterministic given the drained set.
        let mut policy = TwoChoice;
        let mut rng = Xoshiro256::new(0x5a17a9e);
        let mut stats = ContentionStats::new();
        for (p, v) in recovered {
            self.insert_one(&mut policy, &mut rng, p, v, None, &mut stats);
        }
        out
    }

    /// The bounded-retry insert loop behind
    /// [`MqHandle::try_insert_for`]. Uses try-lock acquisition
    /// regardless of mode — the point is to never block on a lock a
    /// stalled thread may hold — and gives up at `deadline`.
    fn insert_one_for(
        &self,
        policy: &mut impl ChoicePolicy,
        rng: &mut impl Rng64,
        priority: u64,
        value: V,
        deadline: Instant,
        stats: &mut ContentionStats,
    ) -> Result<(), ()> {
        let mut backoff = Backoff::new();
        let mut entry = (priority, value);
        loop {
            if Instant::now() >= deadline {
                return Err(());
            }
            let i = policy.choose_insert(rng, self);
            // Non-blocking regardless of mode: the point is to never
            // wait on an acquisition a stalled thread may hold.
            match self.queues[i].insert(entry.0, entry.1, false, None, stats) {
                InsertOutcome::Done(_) => {
                    self.note_inserted(1);
                    policy.on_success(ChoiceOp::Insert, i, self);
                    return Ok(());
                }
                InsertOutcome::Contended(p, v) => {
                    entry = (p, v);
                    policy.on_contention(ChoiceOp::Insert, i);
                    stats.note_snooze(backoff.is_yielding());
                    backoff.snooze();
                }
                InsertOutcome::Poisoned(p, v) => {
                    entry = (p, v);
                    self.quarantine(i);
                    policy.on_poisoned(ChoiceOp::Insert, i);
                }
            }
        }
    }

    /// The bounded-retry dequeue loop behind
    /// [`MqHandle::try_dequeue_for`]: try-lock only, deadline-bounded.
    /// `Ok(None)` is a *confirmed-empty* observation, exactly like the
    /// blocking dequeue's `None`.
    fn dequeue_one_for(
        &self,
        policy: &mut impl ChoicePolicy,
        rng: &mut impl Rng64,
        deadline: Instant,
        stats: &mut ContentionStats,
    ) -> Result<Option<(u64, V)>, ()> {
        let mut backoff = Backoff::new();
        loop {
            if self.confirmed_empty(&backoff) {
                stats.empty_confirms += 1;
                return Ok(None);
            }
            if Instant::now() >= deadline {
                return Err(());
            }
            let Some(k) = policy.choose_dequeue(rng, self) else {
                stats.note_snooze(backoff.is_yielding());
                backoff.snooze();
                continue;
            };
            // Non-blocking regardless of mode, like `insert_one_for`.
            match self.queues[k].dequeue(false, None, stats) {
                DequeueOutcome::Served(p, v, _) => {
                    self.note_removed(1);
                    policy.on_success(ChoiceOp::Dequeue, k, self);
                    return Ok(Some((p, v)));
                }
                DequeueOutcome::Poisoned => {
                    self.quarantine(k);
                    policy.on_poisoned(ChoiceOp::Dequeue, k);
                }
                DequeueOutcome::Empty | DequeueOutcome::Contended => {
                    policy.on_contention(ChoiceOp::Dequeue, k);
                    stats.note_snooze(backoff.is_yielding());
                    backoff.snooze();
                }
            }
        }
    }

    /// Drains everything into a sorted vector (sequential; for tests).
    pub fn drain_sorted(&self) -> Vec<(u64, V)> {
        let mut out = Vec::new();
        for q in self.queues.iter() {
            q.salvage_into(&mut out);
        }
        self.note_removed(out.len());
        out.sort_by_key(|(p, _)| *p);
        out
    }
}

/// Policies observe the structure through this read-only view: hint
/// reads are Algorithm 2's lock-free `ReadMin`, and the generation is
/// the packed header's change-rate signal.
impl<V: Send, Q: SeqPriorityQueue<u64, V> + Send> QueueView for MultiQueue<V, Q> {
    fn num_queues(&self) -> usize {
        self.queues.len()
    }

    fn queue_hint(&self, i: usize) -> u64 {
        self.queues[i].min_hint()
    }

    fn queue_generation(&self, i: usize) -> Option<u64> {
        self.queues[i].generation()
    }

    fn queue_poisoned(&self, i: usize) -> bool {
        self.queues[i].is_poisoned()
    }
}

/// MultiQueues are themselves concurrent priority queues, so they slot
/// into any code written against [`ConcurrentPq`] (e.g. the SSSP
/// example uses the exact [`CoarsePq`](dlz_pq::CoarsePq) and the
/// MultiQueue interchangeably). Randomness comes from the thread-local
/// generator; the choice process is fresh two-choice sampling.
impl<V: Send, Q: SeqPriorityQueue<u64, V> + Send> ConcurrentPq<V> for MultiQueue<V, Q> {
    fn insert(&self, priority: u64, value: V) {
        with_thread_rng(|rng| MultiQueue::insert(self, &mut TwoChoice, rng, priority, value));
    }

    fn remove_min(&self) -> Option<(u64, V)> {
        with_thread_rng(|rng| MultiQueue::dequeue(self, &mut TwoChoice, rng))
    }

    fn min_hint(&self) -> u64 {
        self.queues
            .iter()
            .map(|q| q.min_hint())
            .min()
            .unwrap_or(EMPTY_HINT)
    }

    fn approx_len(&self) -> usize {
        self.len()
    }
}

/// Builder for binary-heap-backed [`MultiQueue`]s.
#[derive(Debug, Clone, Default)]
pub struct MultiQueueBuilder {
    queues: Option<usize>,
    ratio: Option<usize>,
    threads: Option<usize>,
    mode: DeleteMode,
    policy: PolicyCfg,
    substrate: SubstrateCfg,
    seed: Option<u64>,
}

impl MultiQueueBuilder {
    /// Sets the number of internal queues `m` explicitly.
    pub fn queues(mut self, m: usize) -> Self {
        self.queues = Some(m);
        self
    }

    /// Sets the ratio `C = m / n`; combine with [`threads`](Self::threads).
    pub fn ratio(mut self, c: usize) -> Self {
        self.ratio = Some(c);
        self
    }

    /// Sets the thread count `n` used with [`ratio`](Self::ratio).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Sets the delete mode (default [`DeleteMode::Strict`]).
    pub fn delete_mode(mut self, mode: DeleteMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the default choice policy (default
    /// [`PolicyCfg::TwoChoice`]); handles built from the structure
    /// inherit it, and [`MqHandle::with_policy`] overrides it per
    /// handle.
    pub fn policy(mut self, policy: PolicyCfg) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the per-queue substrate (default [`SubstrateCfg::Locked`],
    /// the packed-lock heap).
    pub fn substrate(mut self, substrate: SubstrateCfg) -> Self {
        self.substrate = substrate;
        self
    }

    /// Reseeds the calling thread's convenience RNG (see
    /// [`MultiCounterBuilder::seed`](crate::counter::MultiCounterBuilder::seed)).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Builds the MultiQueue.
    ///
    /// # Panics
    /// If neither `queues` nor (`ratio` and `threads`) was given.
    pub fn build<V: Send>(self) -> MultiQueue<V> {
        let m = match (self.queues, self.ratio, self.threads) {
            (Some(m), _, _) => m,
            (None, Some(c), Some(n)) => c * n,
            _ => panic!("MultiQueueBuilder: set .queues(m) or .ratio(c).threads(n)"),
        };
        if let Some(seed) = self.seed {
            crate::rng::reseed_thread_rng(seed);
        }
        MultiQueue::with_substrate(
            (0..m).map(|_| BinaryHeap::new()).collect(),
            self.mode,
            self.policy,
            self.substrate,
        )
    }
}

/// The MultiQueue's operational surface: a structure reference plus the
/// per-thread state the choice process needs — a private seeded RNG and
/// a [`ChoicePolicy`] instance.
///
/// [`MqHandle::new`] builds the structure's default policy (runtime
/// dispatched [`AnyPolicy`]); [`MqHandle::with_policy`] overrides it
/// with any concrete policy, monomorphized — per-handle policies by
/// construction, no thread-local machinery.
///
/// # Example
/// ```
/// use dlz_core::queue::{MqHandle, MultiQueue, Sticky};
///
/// let mq: MultiQueue<u64> = MultiQueue::new(8);
/// // This handle camps on its chosen queues for 4 same-kind ops...
/// let mut sticky = MqHandle::with_policy(&mq, 1, Sticky::new(4));
/// // ...while this one keeps the structure's fresh two-choice default.
/// let mut fresh = mq.handle(2);
/// sticky.insert(10, 10);
/// assert_eq!(fresh.dequeue(), Some((10, 10)));
/// ```
pub struct MqHandle<'a, V, Q = BinaryHeap<u64, V>, P = AnyPolicy>
where
    V: Send,
    Q: SeqPriorityQueue<u64, V> + Send,
    P: ChoicePolicy,
{
    mq: &'a MultiQueue<V, Q>,
    rng: Xoshiro256,
    policy: P,
    /// Hot-path contention counters, accumulated without atomics (the
    /// handle is single-owner) and drained by
    /// [`take_contention`](Self::take_contention).
    stats: ContentionStats,
}

impl<'a, V: Send, Q: SeqPriorityQueue<u64, V> + Send> MqHandle<'a, V, Q, AnyPolicy> {
    /// Creates a handle with its own seeded generator and an instance
    /// of the structure's default policy.
    pub fn new(mq: &'a MultiQueue<V, Q>, seed: u64) -> Self {
        MqHandle::with_policy(mq, seed, mq.policy().build())
    }
}

impl<'a, V: Send, Q: SeqPriorityQueue<u64, V> + Send, P: ChoicePolicy> MqHandle<'a, V, Q, P> {
    /// Creates a handle with its own seeded generator and an explicit
    /// per-handle policy (overriding the structure's default).
    pub fn with_policy(mq: &'a MultiQueue<V, Q>, seed: u64, policy: P) -> Self {
        MqHandle {
            mq,
            rng: Xoshiro256::new(seed),
            policy,
            stats: ContentionStats::new(),
        }
    }

    /// The underlying structure.
    pub fn multiqueue(&self) -> &'a MultiQueue<V, Q> {
        self.mq
    }

    /// The handle's policy instance (e.g. to read an adaptive policy's
    /// observed stickiness after a run).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The contention counters accumulated by this handle's operations
    /// since creation (or the last [`take_contention`]), with the
    /// policy's own counters (camp switches, adaptive-`s` transitions)
    /// flushed in.
    ///
    /// [`take_contention`]: Self::take_contention
    pub fn contention(&mut self) -> &ContentionStats {
        self.policy.flush_telemetry(&mut self.stats);
        &self.stats
    }

    /// Drains the handle's contention counters for one telemetry
    /// interval: flushes the policy's counters, returns the totals and
    /// resets the event counts (the adaptive-`s` gauge is kept — it is
    /// state, not an event).
    pub fn take_contention(&mut self) -> ContentionStats {
        self.policy.flush_telemetry(&mut self.stats);
        self.stats.take()
    }

    /// Enqueue through the handle's policy.
    pub fn insert(&mut self, priority: u64, value: V) {
        self.mq.insert_one(
            &mut self.policy,
            &mut self.rng,
            priority,
            value,
            None,
            &mut self.stats,
        );
    }

    /// Dequeue through the handle's policy (see
    /// [`MultiQueue::dequeue`] for the emptiness contract).
    pub fn dequeue(&mut self) -> Option<(u64, V)> {
        self.mq
            .dequeue_one(&mut self.policy, &mut self.rng, None, &mut self.stats)
            .map(|(p, v, _)| (p, v))
    }

    /// Dequeue sampling the best of `k` queues, regardless of the
    /// handle's policy (see [`MultiQueue::dequeue_k`]).
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn dequeue_k(&mut self, k: usize) -> Option<(u64, V)> {
        assert!(k >= 1, "need at least one choice");
        self.mq
            .dequeue_one(&mut DChoice::new(k), &mut self.rng, None, &mut self.stats)
            .map(|(p, v, _)| (p, v))
    }

    /// Batch enqueue under one lock acquisition (see
    /// [`MultiQueue::insert_batch`]).
    pub fn insert_batch(&mut self, items: impl IntoIterator<Item = (u64, V)>) -> usize {
        self.mq.insert_batch_inner(
            &mut self.policy,
            &mut self.rng,
            items,
            None,
            &mut self.stats,
        )
    }

    /// Bounded-retry insert: like [`insert`](Self::insert) but never
    /// blocks on a held lock (try-lock acquisition regardless of the
    /// structure's [`DeleteMode`]) and gives up with a structured
    /// [`MqOpTimeout`] once `timeout` elapses — e.g. when stalled
    /// threads hold every lock the policy samples, or every queue is
    /// poisoned. On `Err` the value is dropped, not inserted.
    pub fn try_insert_for(
        &mut self,
        priority: u64,
        value: V,
        timeout: Duration,
    ) -> Result<(), MqOpTimeout> {
        let deadline = Instant::now() + timeout;
        self.mq
            .insert_one_for(
                &mut self.policy,
                &mut self.rng,
                priority,
                value,
                deadline,
                &mut self.stats,
            )
            .map_err(|()| MqOpTimeout {
                op: ChoiceOp::Insert,
                timeout,
            })
    }

    /// Bounded-retry dequeue: like [`dequeue`](Self::dequeue) but never
    /// blocks on a held lock and gives up with a structured
    /// [`MqOpTimeout`] once `timeout` elapses. `Ok(None)` is the same
    /// confirmed-empty observation as the blocking dequeue's `None`;
    /// `Err` means the structure could not be served in time (not that
    /// it is empty).
    pub fn try_dequeue_for(&mut self, timeout: Duration) -> Result<Option<(u64, V)>, MqOpTimeout> {
        let deadline = Instant::now() + timeout;
        self.mq
            .dequeue_one_for(&mut self.policy, &mut self.rng, deadline, &mut self.stats)
            .map_err(|()| MqOpTimeout {
                op: ChoiceOp::Dequeue,
                timeout,
            })
    }

    /// Batch dequeue under one lock acquisition (see
    /// [`MultiQueue::dequeue_batch`]).
    pub fn dequeue_batch(&mut self, max: usize, out: &mut Vec<(u64, V)>) -> usize {
        self.mq.dequeue_batch_inner(
            &mut self.policy,
            &mut self.rng,
            max,
            None,
            |p, v, _| out.push((p, v)),
            &mut self.stats,
        )
    }

    /// Switches the handle into **history mode**: the same five
    /// operations, each drawing an update-point stamp from `stamper`
    /// inside its critical section — i.e. at the operation's
    /// linearization point in the underlying linearizable queue. The
    /// distributional-linearizability checker replays histories in
    /// stamp order (Definition 5.2's mapping).
    ///
    /// # Example
    /// ```
    /// use std::sync::atomic::AtomicU64;
    /// use dlz_core::MultiQueue;
    ///
    /// let mq: MultiQueue<u64> = MultiQueue::new(4);
    /// let stamper = AtomicU64::new(0);
    /// let mut h = mq.handle(7);
    /// let s0 = h.stamped(&stamper).insert(10, 10);
    /// let (p, _, s1) = h.stamped(&stamper).dequeue().unwrap();
    /// assert_eq!(p, 10);
    /// assert!(s1 > s0);
    /// ```
    pub fn stamped<'s>(&'s mut self, stamper: &'s AtomicU64) -> Stamped<'s, 'a, V, Q, P> {
        Stamped {
            handle: self,
            stamper,
        }
    }
}

/// The handle's history mode — see [`MqHandle::stamped`]. Same policy,
/// same RNG, same five operations; every operation returns the update
/// stamp drawn inside its critical section.
pub struct Stamped<'s, 'a, V, Q = BinaryHeap<u64, V>, P = AnyPolicy>
where
    V: Send,
    Q: SeqPriorityQueue<u64, V> + Send,
    P: ChoicePolicy,
{
    handle: &'s mut MqHandle<'a, V, Q, P>,
    stamper: &'s AtomicU64,
}

impl<V: Send, Q: SeqPriorityQueue<u64, V> + Send, P: ChoicePolicy> Stamped<'_, '_, V, Q, P> {
    /// Stamped enqueue; returns the update stamp.
    pub fn insert(&mut self, priority: u64, value: V) -> u64 {
        self.handle.mq.insert_one(
            &mut self.handle.policy,
            &mut self.handle.rng,
            priority,
            value,
            Some(self.stamper),
            &mut self.handle.stats,
        )
    }

    /// Stamped dequeue; returns `(priority, value, update stamp)`.
    pub fn dequeue(&mut self) -> Option<(u64, V, u64)> {
        self.handle.mq.dequeue_one(
            &mut self.handle.policy,
            &mut self.handle.rng,
            Some(self.stamper),
            &mut self.handle.stats,
        )
    }

    /// Stamped best-of-`k` dequeue (see [`MqHandle::dequeue_k`]).
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn dequeue_k(&mut self, k: usize) -> Option<(u64, V, u64)> {
        assert!(k >= 1, "need at least one choice");
        self.handle.mq.dequeue_one(
            &mut DChoice::new(k),
            &mut self.handle.rng,
            Some(self.stamper),
            &mut self.handle.stats,
        )
    }

    /// Stamped batch enqueue: one lock acquisition, one stamp per item
    /// (pushed onto `stamps` in insertion order). Returns the count.
    pub fn insert_batch(
        &mut self,
        items: impl IntoIterator<Item = (u64, V)>,
        stamps: &mut Vec<u64>,
    ) -> usize {
        self.handle.mq.insert_batch_inner(
            &mut self.handle.policy,
            &mut self.handle.rng,
            items,
            Some((self.stamper, stamps)),
            &mut self.handle.stats,
        )
    }

    /// Stamped batch dequeue: one lock acquisition, one stamp per
    /// entry, appended to `out` as `(priority, value, stamp)`.
    pub fn dequeue_batch(&mut self, max: usize, out: &mut Vec<(u64, V, u64)>) -> usize {
        self.handle.mq.dequeue_batch_inner(
            &mut self.handle.policy,
            &mut self.handle.rng,
            max,
            Some(self.stamper),
            |p, v, s| out.push((p, v, s)),
            &mut self.handle.stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::policy::{AdaptiveSticky, Sticky};
    use std::sync::Arc;

    #[test]
    fn handle_contention_counters_drain_and_conserve() {
        let mq: MultiQueue<u64> = MultiQueue::new(4);
        let mut h = MqHandle::with_policy(&mq, 1, Sticky::new(4));
        // A dequeue on an empty structure ends in a confirmed-empty sweep.
        assert_eq!(h.dequeue(), None);
        assert_eq!(h.contention().empty_confirms, 1);
        // 100 inserts at s=4 start exactly 25 insert camps.
        for p in 0..100u64 {
            h.insert(p, p);
        }
        let drained = h.take_contention();
        assert_eq!(drained.camp_switches, 25);
        assert_eq!(drained.empty_confirms, 1);
        // The drain reset everything; nothing new happened since.
        assert!(h.contention().is_empty());
    }

    #[test]
    fn adaptive_handle_reports_gauge_and_transitions() {
        let mq: MultiQueue<u64> = MultiQueue::new(4);
        let mut h = MqHandle::with_policy(&mq, 3, AdaptiveSticky::new(8));
        for p in 0..200u64 {
            h.insert(p, p);
        }
        while h.dequeue().is_some() {}
        let current = h.policy().current() as u64;
        let c = h.take_contention();
        assert_eq!(c.adaptive_s, current, "gauge mirrors the live s");
        assert!(c.camp_switches > 0, "camps were started");
        // Solo camps are quiet, so the policy widened at least once
        // (s starts at 2 with s_max = 8).
        assert!(c.s_widens >= 1, "quiet camps widen s");
        // The gauge survives a drain even when no new events arrive.
        assert_eq!(h.take_contention().adaptive_s, current);
    }

    #[test]
    fn empty_queue_returns_none() {
        let mq: MultiQueue<u32> = MultiQueue::new(4);
        let mut h = mq.handle(1);
        assert_eq!(h.dequeue(), None);
        assert!(mq.is_empty());
        assert_eq!(mq.approx_size(), 0);
    }

    #[test]
    fn conservation_sequential() {
        let mq: MultiQueue<u64> = MultiQueue::new(8);
        let mut h = mq.handle(2);
        for p in 0..1000u64 {
            h.insert(p, p * 10);
        }
        assert_eq!(mq.len(), 1000);
        assert_eq!(mq.approx_size(), 1000);
        let mut out = Vec::new();
        while let Some((p, v)) = h.dequeue() {
            assert_eq!(v, p * 10);
            out.push(p);
        }
        assert_eq!(out.len(), 1000);
        out.sort_unstable();
        assert_eq!(out, (0..1000u64).collect::<Vec<_>>());
        assert_eq!(mq.approx_size(), 0);
    }

    #[test]
    fn single_queue_is_exact() {
        // m = 1: both choices are the same queue, so dequeues are the
        // true minimum — the structure degenerates to an exact PQ.
        let mq: MultiQueue<()> = MultiQueue::new(1);
        let mut h = mq.handle(3);
        for p in [5u64, 2, 9, 1, 7] {
            h.insert(p, ());
        }
        let drained: Vec<u64> = std::iter::from_fn(|| h.dequeue().map(|(p, _)| p)).collect();
        assert_eq!(drained, vec![1, 2, 5, 7, 9]);
    }

    #[test]
    fn rank_error_is_bounded_in_practice() {
        // Sequential use: dequeue rank should be O(m); test a generous
        // multiple. (Statistical, deterministic seed.)
        let m = 8usize;
        let mq: MultiQueue<()> = MultiQueue::new(m);
        let mut h = mq.handle(4);
        let n = 10_000u64;
        for p in 0..n {
            h.insert(p, ());
        }
        use std::collections::BTreeSet;
        let mut present: BTreeSet<u64> = (0..n).collect();
        let mut max_rank = 0usize;
        for _ in 0..n {
            let (p, ()) = h.dequeue().unwrap();
            let rank = present.range(..p).count();
            max_rank = max_rank.max(rank);
            present.remove(&p);
        }
        // Theory: expected rank O(m), max over n steps O(m log n)-ish.
        assert!(max_rank <= 30 * m, "max rank {max_rank} too large");
    }

    #[test]
    fn trylock_mode_conserves() {
        let mq: MultiQueue<u64> = MultiQueue::with_queues(
            (0..4).map(|_| BinaryHeap::new()).collect(),
            DeleteMode::TryLock,
        );
        let mut h = mq.handle(5);
        for p in 0..500u64 {
            h.insert(p, p);
        }
        let mut n = 0;
        while h.dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, 500);
    }

    #[test]
    fn concurrent_producers_consumers_conserve() {
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        const PER: u64 = 10_000;
        let mq: Arc<MultiQueue<u64>> = Arc::new(MultiQueue::new(16));
        let consumed: Vec<u64> = std::thread::scope(|s| {
            for t in 0..PRODUCERS {
                let mq = Arc::clone(&mq);
                s.spawn(move || {
                    let mut h = mq.handle(100 + t as u64);
                    for i in 0..PER {
                        let p = (t as u64) * PER + i;
                        h.insert(p, p);
                    }
                });
            }
            let consumers: Vec<_> = (0..CONSUMERS)
                .map(|t| {
                    let mq = Arc::clone(&mq);
                    s.spawn(move || {
                        let mut h = mq.handle(200 + t as u64);
                        let mut got = Vec::new();
                        let target = PRODUCERS as u64 * PER / CONSUMERS as u64;
                        while (got.len() as u64) < target {
                            if let Some((_, v)) = h.dequeue() {
                                got.push(v);
                            }
                        }
                        got
                    })
                })
                .collect();
            consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut all = consumed;
        all.sort_unstable();
        assert_eq!(all, (0..PRODUCERS as u64 * PER).collect::<Vec<_>>());
        assert!(mq.is_empty());
        assert_eq!(mq.approx_size(), 0);
    }

    #[test]
    fn works_with_skiplist_substrate() {
        use dlz_pq::SkipListPq;
        let mq: MultiQueue<u64, SkipListPq<u64, u64>> = MultiQueue::with_queues(
            (0..4).map(|i| SkipListPq::with_seed(i as u64)).collect(),
            DeleteMode::Strict,
        );
        let mut h = mq.handle(6);
        for p in 0..200u64 {
            h.insert(p, p);
        }
        let mut n = 0;
        while h.dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, 200);
    }

    #[test]
    fn stamped_ops_produce_unique_ordered_stamps() {
        let mq: MultiQueue<u64> = MultiQueue::new(4);
        let stamper = AtomicU64::new(0);
        let mut h = mq.handle(7);
        let mut stamps = Vec::new();
        for p in 0..100u64 {
            stamps.push(h.stamped(&stamper).insert(p, p));
        }
        while let Some((_, _, s)) = h.stamped(&stamper).dequeue() {
            stamps.push(s);
        }
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 200, "stamps must be unique");
    }

    #[test]
    fn k_choice_dequeue_conserves_for_all_k() {
        for k in [1usize, 2, 4] {
            let mq: MultiQueue<u64> = MultiQueue::new(8);
            let mut h = mq.handle(40 + k as u64);
            for p in 0..500u64 {
                h.insert(p, p);
            }
            let mut n = 0;
            while h.dequeue_k(k).is_some() {
                n += 1;
            }
            assert_eq!(n, 500, "k={k}");
        }
    }

    #[test]
    fn more_choices_tighten_rank_distribution() {
        use std::collections::BTreeSet;
        let rank_sum = |k: usize| {
            let m = 16;
            let mq: MultiQueue<u64> = MultiQueue::new(m);
            let mut h = mq.handle(77);
            let n = 4_000u64;
            for p in 0..n {
                h.insert(p, p);
            }
            let mut present: BTreeSet<u64> = (0..n).collect();
            let mut sum = 0usize;
            for _ in 0..n {
                let (p, _) = h.dequeue_k(k).unwrap();
                sum += present.range(..p).count();
                present.remove(&p);
            }
            sum
        };
        let one = rank_sum(1);
        let two = rank_sum(2);
        let four = rank_sum(4);
        assert!(one > two, "k=1 total rank {one} should exceed k=2 {two}");
        assert!(two >= four, "k=2 total rank {two} should be >= k=4 {four}");
    }

    #[test]
    #[should_panic(expected = "at least one choice")]
    fn zero_choice_dequeue_rejected() {
        let mq: MultiQueue<u64> = MultiQueue::new(2);
        let mut h = mq.handle(1);
        let _ = h.dequeue_k(0);
    }

    #[test]
    fn drain_sorted_collects_everything() {
        let mq: MultiQueue<char> = MultiQueue::new(4);
        let mut h = mq.handle(8);
        h.insert(3, 'c');
        h.insert(1, 'a');
        h.insert(2, 'b');
        assert_eq!(mq.drain_sorted(), vec![(1, 'a'), (2, 'b'), (3, 'c')]);
        assert!(mq.is_empty());
        assert_eq!(mq.approx_size(), 0);
    }

    #[test]
    fn builder_forms() {
        let a: MultiQueue<()> = MultiQueue::<()>::builder().queues(6).build();
        assert_eq!(a.num_queues(), 6);
        assert_eq!(a.policy(), PolicyCfg::TwoChoice);
        let b: MultiQueue<()> = MultiQueue::<()>::builder()
            .ratio(2)
            .threads(3)
            .delete_mode(DeleteMode::TryLock)
            .policy(PolicyCfg::Sticky { ops: 8 })
            .build();
        assert_eq!(b.num_queues(), 6);
        assert_eq!(b.mode(), DeleteMode::TryLock);
        assert_eq!(b.policy(), PolicyCfg::Sticky { ops: 8 });
        assert!(!b.policy().is_default());
    }

    #[test]
    fn handle_wraps_rng() {
        let mq: MultiQueue<u64> = MultiQueue::new(4);
        let mut h = MqHandle::new(&mq, 9);
        for p in 0..50 {
            h.insert(p, p);
        }
        let mut n = 0;
        while h.dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, 50);
        assert_eq!(h.multiqueue().num_queues(), 4);
    }

    #[test]
    fn sticky_one_and_dchoice_two_equal_two_choice_op_for_op() {
        // Policy equivalence on the real structure: under a fixed seed,
        // `Sticky { ops: 1 }` and `DChoice { d: 2 }` must replay the
        // exact operation sequence of the two-choice path.
        for seed in 0..16u64 {
            let reference: MultiQueue<u64> = MultiQueue::new(8);
            let sticky1: MultiQueue<u64> = MultiQueue::new(8);
            let dchoice2: MultiQueue<u64> = MultiQueue::new(8);
            let mut hr = MqHandle::with_policy(&reference, seed, TwoChoice);
            let mut hs = MqHandle::with_policy(&sticky1, seed, Sticky::new(1));
            let mut hd = MqHandle::with_policy(&dchoice2, seed, DChoice::new(2));
            // Interleave inserts and dequeues so choices depend on the
            // evolving hint state, not just the RNG stream.
            for step in 0..600u64 {
                if step % 3 < 2 {
                    hr.insert(step, step);
                    hs.insert(step, step);
                    hd.insert(step, step);
                } else {
                    let a = hr.dequeue();
                    assert_eq!(a, hs.dequeue(), "sticky(1) diverged at {step}, seed {seed}");
                    assert_eq!(
                        a,
                        hd.dequeue(),
                        "dchoice(2) diverged at {step}, seed {seed}"
                    );
                }
            }
            let mut a = reference.drain_sorted();
            a.sort_unstable();
            let mut b = sticky1.drain_sorted();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sticky_camps_per_kind_on_the_structure() {
        // Regression for per-kind sticky state: with interleaved
        // inserts and dequeues on the *real structure*, every s-run of
        // inserts must land on a single queue — dequeue successes (or
        // stale-hint contentions) must not move or reset the insert
        // camp. A spy policy wrapping `Sticky` records the chosen
        // insert queues; the old shared-camp bug broke the run
        // structure because dequeue successes re-camped the shared
        // state.
        struct Spy {
            inner: Sticky,
            insert_choices: Vec<usize>,
        }
        impl ChoicePolicy for Spy {
            fn choose_insert(&mut self, rng: &mut impl Rng64, view: &impl QueueView) -> usize {
                let q = self.inner.choose_insert(rng, view);
                self.insert_choices.push(q);
                q
            }
            fn choose_dequeue(
                &mut self,
                rng: &mut impl Rng64,
                view: &impl QueueView,
            ) -> Option<usize> {
                self.inner.choose_dequeue(rng, view)
            }
            fn on_success(&mut self, op: ChoiceOp, queue: usize, view: &impl QueueView) {
                self.inner.on_success(op, queue, view);
            }
            fn on_contention(&mut self, op: ChoiceOp, queue: usize) {
                self.inner.on_contention(op, queue);
            }
        }

        let m = 8;
        let s = 6usize;
        let mq: MultiQueue<u64> = MultiQueue::new(m);
        // Prefill through a separate handle so the spy sees only the
        // measured phase, and dequeues always succeed.
        let mut prefill = mq.handle(10);
        for p in 0..1_000u64 {
            prefill.insert(p, p);
        }
        let spy = Spy {
            inner: Sticky::new(s),
            insert_choices: Vec::new(),
        };
        let mut h = MqHandle::with_policy(&mq, 11, spy);
        // Strict alternation: insert, dequeue, insert, dequeue, ...
        for p in 1_000..1_000 + 10 * s as u64 {
            h.insert(p, p);
            assert!(h.dequeue().is_some());
        }
        // Exactly s consecutive equal choices per run (strict mode:
        // nothing voids an insert camp early).
        let choices = &h.policy().insert_choices;
        assert_eq!(choices.len(), 10 * s);
        for run in choices.chunks(s) {
            assert!(
                run.iter().all(|&q| q == run[0]),
                "insert camp disturbed by interleaved dequeues: {run:?}"
            );
        }
        // Conservation still holds.
        let mut n = mq.approx_size();
        assert_eq!(n, 1_000);
        while h.dequeue().is_some() {
            n -= 1;
        }
        assert_eq!(n, 0);
    }

    #[test]
    fn sticky_handle_conserves_in_both_modes() {
        for mode in [DeleteMode::Strict, DeleteMode::TryLock] {
            let mq: MultiQueue<u64> = MultiQueue::with_config(
                (0..8).map(|_| BinaryHeap::new()).collect(),
                mode,
                PolicyCfg::Sticky { ops: 6 },
            );
            let mut h = MqHandle::new(&mq, 10);
            for p in 0..2_000u64 {
                h.insert(p, p);
            }
            assert_eq!(mq.approx_size(), 2_000);
            let mut n = 0;
            while h.dequeue().is_some() {
                n += 1;
            }
            assert_eq!(n, 2_000, "{mode:?}");
            assert_eq!(mq.approx_size(), 0);
        }
    }

    #[test]
    fn sticky_concurrent_producers_consumers_conserve() {
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        const PER: u64 = 8_000;
        for mode in [DeleteMode::Strict, DeleteMode::TryLock] {
            let mq: Arc<MultiQueue<u64>> = Arc::new(MultiQueue::with_config(
                (0..16).map(|_| BinaryHeap::new()).collect(),
                mode,
                PolicyCfg::Sticky { ops: 8 },
            ));
            let consumed: Vec<u64> = std::thread::scope(|s| {
                for t in 0..PRODUCERS {
                    let mq = Arc::clone(&mq);
                    s.spawn(move || {
                        let mut h = MqHandle::new(&mq, 300 + t as u64);
                        for i in 0..PER {
                            let p = (t as u64) * PER + i;
                            h.insert(p, p);
                        }
                    });
                }
                let consumers: Vec<_> = (0..CONSUMERS)
                    .map(|t| {
                        let mq = Arc::clone(&mq);
                        s.spawn(move || {
                            let mut h = MqHandle::new(&mq, 400 + t as u64);
                            let mut got = Vec::new();
                            let target = PRODUCERS as u64 * PER / CONSUMERS as u64;
                            while (got.len() as u64) < target {
                                if let Some((_, v)) = h.dequeue() {
                                    got.push(v);
                                }
                            }
                            got
                        })
                    })
                    .collect();
                consumers
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
            let mut all = consumed;
            all.sort_unstable();
            assert_eq!(all, (0..PRODUCERS as u64 * PER).collect::<Vec<_>>());
            assert!(mq.is_empty(), "{mode:?}");
        }
    }

    #[test]
    fn adaptive_concurrent_conserves_and_respects_s_max() {
        const THREADS: usize = 4;
        const PER: u64 = 6_000;
        let s_max = 16;
        let mq: Arc<MultiQueue<u64>> = Arc::new(MultiQueue::with_config(
            (0..16).map(|_| BinaryHeap::new()).collect(),
            DeleteMode::Strict,
            PolicyCfg::AdaptiveSticky { s_max },
        ));
        let observed: Vec<usize> = std::thread::scope(|s| {
            let hs: Vec<_> = (0..THREADS)
                .map(|t| {
                    let mq = Arc::clone(&mq);
                    s.spawn(move || {
                        let mut h =
                            MqHandle::with_policy(&mq, 500 + t as u64, AdaptiveSticky::new(s_max));
                        for i in 0..PER {
                            h.insert(t as u64 * PER + i, i);
                            if i % 2 == 1 {
                                let _ = h.dequeue();
                            }
                        }
                        h.policy().observed_max()
                    })
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for s in observed {
            assert!(s <= s_max, "adaptive stickiness {s} exceeded s_max {s_max}");
            assert!(s >= 1);
        }
        // Drain and verify conservation.
        let mut h = mq.handle(999);
        let mut left = 0u64;
        while h.dequeue().is_some() {
            left += 1;
        }
        assert_eq!(left, THREADS as u64 * PER - THREADS as u64 * PER / 2);
    }

    #[test]
    fn sticky_stamped_ops_produce_unique_stamps() {
        let mq: MultiQueue<u64> = MultiQueue::with_config(
            (0..4).map(|_| BinaryHeap::new()).collect(),
            DeleteMode::Strict,
            PolicyCfg::Sticky { ops: 5 },
        );
        let stamper = AtomicU64::new(0);
        let mut h = mq.handle(11);
        let mut stamps = Vec::new();
        for p in 0..150u64 {
            stamps.push(h.stamped(&stamper).insert(p, p));
        }
        while let Some((_, _, s)) = h.stamped(&stamper).dequeue() {
            stamps.push(s);
        }
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 300, "stamps must be unique");
        assert!(mq.is_empty());
    }

    #[test]
    fn batch_ops_conserve_and_amortize() {
        for mode in [DeleteMode::Strict, DeleteMode::TryLock] {
            let mq: MultiQueue<u64> =
                MultiQueue::with_queues((0..8).map(|_| BinaryHeap::new()).collect(), mode);
            let mut h = mq.handle(12);
            let mut inserted = 0usize;
            for chunk in 0..100u64 {
                let items: Vec<(u64, u64)> =
                    (0..7).map(|i| (chunk * 7 + i, chunk * 7 + i)).collect();
                inserted += h.insert_batch(items);
            }
            assert_eq!(inserted, 700);
            assert_eq!(mq.approx_size(), 700);
            let mut out = Vec::new();
            loop {
                let n = h.dequeue_batch(16, &mut out);
                if n == 0 {
                    break;
                }
            }
            assert_eq!(out.len(), 700, "{mode:?}");
            let mut ps: Vec<u64> = out.iter().map(|(p, _)| *p).collect();
            ps.sort_unstable();
            ps.dedup();
            assert_eq!(ps.len(), 700, "batch dequeue duplicated or lost items");
            assert_eq!(mq.approx_size(), 0);
        }
    }

    #[test]
    fn stamped_batch_ops_stamp_every_item_uniquely() {
        let mq: MultiQueue<u64> = MultiQueue::new(4);
        let stamper = AtomicU64::new(0);
        let mut h = mq.handle(13);
        let mut stamps = Vec::new();
        let items: Vec<(u64, u64)> = (0..50).map(|i| (i, i)).collect();
        assert_eq!(h.stamped(&stamper).insert_batch(items, &mut stamps), 50);
        assert_eq!(stamps.len(), 50);
        let mut out = Vec::new();
        while h.stamped(&stamper).dequeue_batch(8, &mut out) > 0 {}
        assert_eq!(out.len(), 50);
        stamps.extend(out.iter().map(|&(_, _, s)| s));
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 100, "stamps must be unique");
        assert!(mq.is_empty());
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mq: MultiQueue<u64> = MultiQueue::new(4);
        let mut h = mq.handle(13);
        assert_eq!(h.insert_batch(std::iter::empty()), 0);
        let mut out = Vec::new();
        assert_eq!(h.dequeue_batch(0, &mut out), 0);
        assert_eq!(h.dequeue_batch(8, &mut out), 0);
        assert!(out.is_empty());
        assert!(mq.is_empty());
    }

    #[test]
    fn sticky_rank_stays_within_s_times_m_envelope() {
        use std::collections::BTreeSet;
        // Sequential statistical check of the documented O(s·m) bound:
        // drain a prefilled queue through a sticky handle and compare
        // mean dequeue rank against C·s·m (generous C, fixed seed).
        let m = 8usize;
        let s = 8usize;
        let mq: MultiQueue<u64> = MultiQueue::with_config(
            (0..m).map(|_| BinaryHeap::new()).collect(),
            DeleteMode::Strict,
            PolicyCfg::Sticky { ops: s },
        );
        let mut h = MqHandle::new(&mq, 14);
        let n = 8_000u64;
        for p in 0..n {
            h.insert(p, p);
        }
        let mut present: BTreeSet<u64> = (0..n).collect();
        let mut sum = 0usize;
        let mut max_rank = 0usize;
        for _ in 0..n {
            let (p, _) = h.dequeue().unwrap();
            let rank = present.range(..p).count();
            sum += rank;
            max_rank = max_rank.max(rank);
            present.remove(&p);
        }
        let mean = sum as f64 / n as f64;
        let bound = 30.0 * (s * m) as f64;
        assert!(
            mean <= bound,
            "mean sticky rank {mean} above O(s·m) {bound}"
        );
        assert!(
            (max_rank as f64) <= 30.0 * (s * m) as f64 * (n as f64).ln(),
            "max sticky rank {max_rank} implausibly large"
        );
    }

    #[test]
    fn adaptive_rank_stays_within_observed_envelope() {
        use std::collections::BTreeSet;
        let m = 8usize;
        let s_max = 8usize;
        let mq: MultiQueue<u64> = MultiQueue::with_config(
            (0..m).map(|_| BinaryHeap::new()).collect(),
            DeleteMode::Strict,
            PolicyCfg::AdaptiveSticky { s_max },
        );
        let mut h = MqHandle::with_policy(&mq, 15, AdaptiveSticky::new(s_max));
        let n = 8_000u64;
        for p in 0..n {
            h.insert(p, p);
        }
        let mut present: BTreeSet<u64> = (0..n).collect();
        let mut sum = 0usize;
        for _ in 0..n {
            let (p, _) = h.dequeue().unwrap();
            sum += present.range(..p).count();
            present.remove(&p);
        }
        let mean = sum as f64 / n as f64;
        let observed = h.policy().envelope_factor();
        assert!(observed >= 1.0 && observed <= s_max as f64);
        let bound = 30.0 * observed * m as f64;
        assert!(mean <= bound, "mean adaptive rank {mean} above {bound}");
    }

    #[test]
    fn approx_size_tracks_len_when_quiescent() {
        let mq: MultiQueue<u64> = MultiQueue::new(4);
        let mut h = mq.handle(15);
        for p in 0..100u64 {
            h.insert(p, p);
        }
        assert_eq!(mq.approx_size(), mq.len());
        for _ in 0..40 {
            h.dequeue();
        }
        assert_eq!(mq.approx_size(), mq.len());
        assert_eq!(mq.approx_size(), 60);
    }

    /// Panics inside queue `i`'s critical section (before mutating it),
    /// leaving the queue poisoned with its entries intact.
    fn poison_queue(mq: &MultiQueue<u64>, i: usize) {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mq.queues[i]
                .as_locked()
                .expect("default substrate is the packed lock")
                .with_locked(|_| -> () { panic!("injected fault") })
        }));
        assert!(r.is_err(), "the injected panic must propagate");
        assert!(mq.queues[i].is_poisoned(), "queue {i} should be poisoned");
    }

    #[test]
    fn poisoned_queue_is_quarantined_and_salvage_conserves_under_every_policy() {
        for cfg in [
            PolicyCfg::TwoChoice,
            PolicyCfg::DChoice { d: 3 },
            PolicyCfg::Sticky { ops: 6 },
            PolicyCfg::AdaptiveSticky { s_max: 8 },
        ] {
            let mq: MultiQueue<u64> = MultiQueue::with_config(
                (0..4).map(|_| BinaryHeap::new()).collect(),
                DeleteMode::Strict,
                cfg,
            );
            let mut h = mq.handle(31);
            for p in 0..200u64 {
                h.insert(p, p);
            }
            let stranded = mq.queues[0].approx_len();
            assert!(stranded > 0, "seed 31 should land items on queue 0");
            poison_queue(&mq, 0);
            assert_eq!(mq.poisoned_count(), 1);
            // Inserts route around the quarantined queue (the policy's
            // random draw will hit it; `on_poisoned` re-chooses).
            for p in 200..300u64 {
                h.insert(p, p);
            }
            // The blocking dequeue drains every reachable item and then
            // confirms empty — no deadlock, no spin on the stranded
            // remainder.
            let mut got: Vec<u64> = Vec::new();
            while let Some((_, v)) = h.dequeue() {
                got.push(v);
            }
            assert_eq!(got.len(), 300 - stranded, "{cfg:?}");
            // Salvage returns the queue to service with its entries.
            let out = mq.salvage();
            assert_eq!(out.queues_salvaged, 1, "{cfg:?}");
            assert_eq!(out.items_recovered, stranded, "{cfg:?}");
            assert_eq!(mq.poisoned_count(), 0);
            while let Some((_, v)) = h.dequeue() {
                got.push(v);
            }
            got.sort_unstable();
            assert_eq!(got, (0..300u64).collect::<Vec<_>>(), "{cfg:?}");
            assert_eq!(mq.approx_size(), 0, "{cfg:?}");
            assert!(mq.is_empty(), "{cfg:?}");
        }
    }

    #[test]
    fn trylock_mode_routes_around_poison_too() {
        let mq: MultiQueue<u64> = MultiQueue::with_queues(
            (0..4).map(|_| BinaryHeap::new()).collect(),
            DeleteMode::TryLock,
        );
        let mut h = mq.handle(32);
        for p in 0..200u64 {
            h.insert(p, p);
        }
        let stranded = mq.queues[1].approx_len();
        poison_queue(&mq, 1);
        let mut n = 0usize;
        while h.dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, 200 - stranded);
        assert_eq!(mq.salvage().items_recovered, stranded);
        while h.dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, 200);
    }

    #[test]
    fn try_ops_time_out_instead_of_blocking_on_held_locks() {
        let mq: MultiQueue<u64> = MultiQueue::new(2);
        let mut h = mq.handle(33);
        h.insert(5, 5);
        // Emulate stalled lock holders: both locks held indefinitely.
        let g0 = mq.queues[0].as_locked().unwrap().lock();
        let g1 = mq.queues[1].as_locked().unwrap().lock();
        let short = Duration::from_millis(20);
        assert_eq!(
            h.try_dequeue_for(short),
            Err(MqOpTimeout {
                op: ChoiceOp::Dequeue,
                timeout: short,
            })
        );
        let err = h.try_insert_for(7, 7, short).unwrap_err();
        assert_eq!(err.op, ChoiceOp::Insert);
        assert!(err.to_string().contains("did not complete"));
        drop(g0);
        drop(g1);
        // Locks released: the bounded ops serve normally.
        assert_eq!(h.try_insert_for(7, 7, Duration::from_secs(5)), Ok(()));
        let mut seen = Vec::new();
        while let Ok(Some((p, _))) = h.try_dequeue_for(Duration::from_secs(5)) {
            seen.push(p);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![5, 7]);
        // Confirmed empty is Ok(None), not a timeout.
        assert_eq!(h.try_dequeue_for(short), Ok(None));
    }

    #[test]
    fn fully_poisoned_insert_panics_with_salvage_hint_and_recovers() {
        let mq: MultiQueue<u64> = MultiQueue::new(2);
        let mut h = mq.handle(34);
        h.insert(1, 1);
        h.insert(2, 2);
        poison_queue(&mq, 0);
        poison_queue(&mq, 1);
        // A blocking dequeue still terminates: nothing is reachable.
        assert_eq!(h.dequeue(), None);
        // A blocking insert cannot land anywhere — it fails loudly with
        // the recovery hint rather than redrawing forever.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut h2 = mq.handle(35);
            h2.insert(3, 3);
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("salvage() before inserting"), "got: {msg}");
        // The bounded insert reports a timeout instead of panicking.
        assert!(h.try_insert_for(4, 4, Duration::from_millis(20)).is_err());
        // Salvage restores service and recovers both stranded items.
        let out = mq.salvage();
        assert_eq!(out.queues_salvaged, 2);
        assert_eq!(out.items_recovered, 2);
        let mut got = Vec::new();
        while let Some((p, _)) = h.dequeue() {
            got.push(p);
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn queue_view_reports_poison() {
        let mq: MultiQueue<u64> = MultiQueue::new(2);
        assert!(!QueueView::queue_poisoned(&mq, 0));
        poison_queue(&mq, 0);
        assert!(QueueView::queue_poisoned(&mq, 0));
        assert!(!QueueView::queue_poisoned(&mq, 1));
        mq.salvage();
        assert!(!QueueView::queue_poisoned(&mq, 0));
    }

    #[test]
    fn preexisting_entries_seed_the_global_counter() {
        let mut a = BinaryHeap::new();
        a.add(1u64, 1u64);
        a.add(2, 2);
        let mut b = BinaryHeap::new();
        b.add(3u64, 3u64);
        let mq: MultiQueue<u64> = MultiQueue::with_queues(vec![a, b], DeleteMode::Strict);
        assert_eq!(mq.approx_size(), 3);
        assert_eq!(mq.len(), 3);
    }

    /// A MultiQueue over every substrate, for the cross-substrate tests.
    fn mq_on(substrate: SubstrateCfg, m: usize, mode: DeleteMode) -> MultiQueue<u64> {
        MultiQueue::with_substrate(
            (0..m).map(|_| BinaryHeap::new()).collect(),
            mode,
            PolicyCfg::TwoChoice,
            substrate,
        )
    }

    #[test]
    fn builder_selects_the_substrate() {
        for cfg in SubstrateCfg::all() {
            let mq: MultiQueue<u64> = MultiQueueBuilder::default()
                .queues(4)
                .substrate(cfg)
                .build();
            assert_eq!(mq.substrate(), cfg);
            let mut h = mq.handle(7);
            h.insert(3, 30);
            assert_eq!(h.dequeue(), Some((3, 30)));
        }
    }

    #[test]
    fn every_substrate_conserves_under_concurrency() {
        for cfg in SubstrateCfg::all() {
            for mode in [DeleteMode::Strict, DeleteMode::TryLock] {
                let mq = Arc::new(mq_on(cfg, 4, mode));
                let threads = 4usize;
                let per = 2_000u64;
                let popped: u64 = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let mq = Arc::clone(&mq);
                            s.spawn(move || {
                                let mut h = mq.handle(t as u64 + 1);
                                let mut got = 0u64;
                                for i in 0..per {
                                    h.insert(i, i);
                                    if i % 3 == 0 && h.dequeue().is_some() {
                                        got += 1;
                                    }
                                }
                                got
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).sum()
                });
                let left = mq.drain_sorted().len() as u64;
                assert_eq!(
                    popped + left,
                    threads as u64 * per,
                    "lost or duplicated entries on {cfg} / {mode:?}"
                );
                assert!(mq.is_empty());
            }
        }
    }

    #[test]
    fn every_policy_runs_on_every_substrate() {
        let policies = [
            PolicyCfg::TwoChoice,
            PolicyCfg::DChoice { d: 4 },
            PolicyCfg::Sticky { ops: 4 },
            PolicyCfg::AdaptiveSticky { s_max: 8 },
        ];
        for cfg in SubstrateCfg::all() {
            for policy in policies {
                let mq: MultiQueue<u64> = MultiQueue::with_substrate(
                    (0..4).map(|_| BinaryHeap::new()).collect(),
                    DeleteMode::Strict,
                    policy,
                    cfg,
                );
                let mut h = mq.handle(9);
                for p in 0..500u64 {
                    h.insert(p, p);
                }
                let mut n = 0usize;
                while h.dequeue().is_some() {
                    n += 1;
                }
                assert_eq!(n, 500, "policy {policy:?} on {cfg} lost entries");
            }
        }
    }

    #[test]
    fn stamps_are_unique_and_complete_on_every_substrate() {
        use std::collections::BTreeSet;
        for cfg in SubstrateCfg::all() {
            let mq = Arc::new(mq_on(cfg, 4, DeleteMode::Strict));
            let stamper = AtomicU64::new(0);
            let threads = 4usize;
            let per = 500u64;
            let mut all: Vec<(u64, u64)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let mq = Arc::clone(&mq);
                        let stamper = &stamper;
                        s.spawn(move || {
                            let mut h = mq.handle(t as u64 + 11);
                            let mut st = h.stamped(stamper);
                            let mut out = Vec::new();
                            for i in 0..per {
                                let ins = st.insert(i, i);
                                out.push((ins, 0));
                                if let Some((_, _, deq)) = st.dequeue() {
                                    out.push((deq, 1));
                                }
                            }
                            while let Some((_, _, deq)) = st.dequeue() {
                                out.push((deq, 1));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
            let inserts = all.iter().filter(|(_, k)| *k == 0).count() as u64;
            let dequeues = all.iter().filter(|(_, k)| *k == 1).count() as u64;
            assert_eq!(
                inserts,
                threads as u64 * per,
                "all inserts stamped on {cfg}"
            );
            assert_eq!(dequeues, inserts, "drain served everything on {cfg}");
            all.sort_unstable();
            let stamps: BTreeSet<u64> = all.iter().map(|(s, _)| *s).collect();
            assert_eq!(stamps.len(), all.len(), "duplicate stamps issued on {cfg}");
        }
    }

    /// Poisons queue `i` of `mq` through the substrate-appropriate
    /// guard (panic inside the critical section / drain window).
    fn poison_substrate_queue(mq: &MultiQueue<u64>, i: usize) {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &mq.queues[i] {
            dlz_pq::Substrate::Locked(q) => q.with_locked(|_| -> () { panic!("injected fault") }),
            dlz_pq::Substrate::LockFree(q) => {
                let mut stats = ContentionStats::new();
                let _g = q
                    .drain_lock(true, &mut stats)
                    .expect("not yet poisoned")
                    .expect("blocking acquire");
                panic!("injected fault")
            }
            dlz_pq::Substrate::Combining(q) => {
                let _g = q.core().lock();
                panic!("injected fault")
            }
        }));
        assert!(r.is_err(), "the injected panic must propagate");
        assert!(mq.queues[i].is_poisoned(), "queue {i} should be poisoned");
    }

    #[test]
    fn salvage_recovers_poisoned_queues_on_every_substrate() {
        for cfg in SubstrateCfg::all() {
            let mq = mq_on(cfg, 4, DeleteMode::Strict);
            let mut h = mq.handle(21);
            for p in 0..200u64 {
                h.insert(p, p);
            }
            poison_substrate_queue(&mq, 0);
            poison_substrate_queue(&mq, 2);
            let outcome = mq.salvage();
            assert_eq!(outcome.queues_salvaged, 2, "on {cfg}");
            assert!(!mq.queues[0].is_poisoned());
            assert!(!mq.queues[2].is_poisoned());
            // Every entry survives: the panics were injected before any
            // mutation, so salvage re-homes the full contents.
            let mut n = 0usize;
            while h.dequeue().is_some() {
                n += 1;
            }
            assert_eq!(n, 200, "entries lost through salvage on {cfg}");
            assert!(mq.is_empty());
        }
    }
}
