//! Relaxed concurrent queues (Section 7 of the paper).
//!
//! * [`MultiQueue`] — Algorithm 2: `m` lock-protected sequential
//!   priority queues; a pluggable [`ChoicePolicy`] decides which queue
//!   each operation touches (fresh two-choice sampling by default).
//! * [`MqHandle`] — the operational surface: per-thread RNG + policy
//!   state, the five generic operations, and the orthogonal
//!   [`stamped`](MqHandle::stamped) history mode.
//! * [`policy`] — the choice processes: [`TwoChoice`], [`DChoice`],
//!   [`Sticky`], [`AdaptiveSticky`], plus the declarative
//!   [`PolicyCfg`].
//! * [`RelaxedFifo`] — the queue-like façade: priorities are timestamps
//!   drawn from a [`Clock`](crate::clock::Clock), so dequeues return an
//!   element among the roughly O(m log m) oldest (Theorem 7.1).

mod multiqueue;
pub mod policy;
mod relaxed_fifo;

pub use multiqueue::{
    DeleteMode, MqHandle, MqOpTimeout, MultiQueue, MultiQueueBuilder, SalvageOutcome, Stamped,
};
pub use policy::{
    AdaptiveSticky, AnyPolicy, ChoiceOp, ChoicePolicy, DChoice, PolicyCfg, QueueView, Sticky,
    TwoChoice,
};
pub use relaxed_fifo::RelaxedFifo;
