//! Relaxed concurrent queues (Section 7 of the paper).
//!
//! * [`MultiQueue`] — Algorithm 2: `m` lock-protected sequential
//!   priority queues; enqueue to one random queue, dequeue from the
//!   apparently-better of two random queues.
//! * [`RelaxedFifo`] — the queue-like façade: priorities are timestamps
//!   drawn from a [`Clock`](crate::clock::Clock), so dequeues return an
//!   element among the roughly O(m log m) oldest (Theorem 7.1).

mod multiqueue;
mod relaxed_fifo;

pub use multiqueue::{DeleteMode, MqHandle, MultiQueue, MultiQueueBuilder, Sticky, StickyState};
pub use relaxed_fifo::RelaxedFifo;
