//! Cache-line padding to prevent false sharing.
//!
//! The MultiCounter's whole point is to spread contention over `m`
//! independent atomic words. If those words shared cache lines, hardware
//! would re-serialize them: every increment would invalidate its
//! neighbours' lines and the structure would scale no better than a
//! single counter. [`Padded<T>`] aligns each value to 128 bytes — two
//! 64-byte lines — because Intel's adjacent-line prefetcher pairs lines,
//! so 64-byte alignment alone still exhibits false sharing in practice.
//!
//! The definition lives in `dlz-pq` ([`dlz_pq::CachePadded`]) so the
//! per-queue packed header and this crate's counters share a single
//! type; `Padded` is that type under its historical name.

pub use dlz_pq::padded::CachePadded;

/// Aligns (and pads) `T` to 128 bytes. Alias of [`CachePadded`].
///
/// # Example
/// ```
/// use dlz_core::padded::Padded;
/// use std::sync::atomic::AtomicU64;
///
/// let cell = Padded::new(AtomicU64::new(0));
/// assert_eq!(std::mem::align_of_val(&cell), 128);
/// assert!(std::mem::size_of_val(&cell) >= 128);
/// ```
pub type Padded<T> = CachePadded<T>;

#[cfg(test)]
mod tests {
    use super::*;

    // The behaviour itself is tested where the type lives
    // (crates/pq/src/padded.rs); here only the alias contract matters.
    #[test]
    fn alias_resolves_to_the_shared_padded_type() {
        let p: Padded<u64> = Padded::new(7);
        assert_eq!(*p, 7);
        assert_eq!(std::mem::align_of::<Padded<u8>>(), 128);
        fn same_type(_: &CachePadded<u64>) {}
        same_type(&p);
    }
}
