//! Cache-line padding to prevent false sharing.
//!
//! The MultiCounter's whole point is to spread contention over `m`
//! independent atomic words. If those words shared cache lines, hardware
//! would re-serialize them: every increment would invalidate its
//! neighbours' lines and the structure would scale no better than a
//! single counter. `Padded<T>` aligns each value to 128 bytes — two
//! 64-byte lines — because Intel's adjacent-line prefetcher pairs lines,
//! so 64-byte alignment alone still exhibits false sharing in practice.

use std::ops::{Deref, DerefMut};

/// Aligns (and pads) `T` to 128 bytes.
///
/// # Example
/// ```
/// use dlz_core::padded::Padded;
/// use std::sync::atomic::AtomicU64;
///
/// let cell = Padded::new(AtomicU64::new(0));
/// assert_eq!(std::mem::align_of_val(&cell), 128);
/// assert!(std::mem::size_of_val(&cell) >= 128);
/// ```
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct Padded<T> {
    value: T,
}

impl<T> Padded<T> {
    /// Wraps `value` in a padded cell.
    pub const fn new(value: T) -> Self {
        Padded { value }
    }

    /// Unwraps the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for Padded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for Padded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for Padded<T> {
    fn from(value: T) -> Self {
        Padded::new(value)
    }
}

impl<T: Clone> Clone for Padded<T> {
    fn clone(&self) -> Self {
        Padded::new(self.value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn alignment_and_size() {
        assert_eq!(std::mem::align_of::<Padded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<Padded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<Padded<[u8; 200]>>(), 256);
    }

    #[test]
    fn adjacent_array_cells_do_not_share_lines() {
        let cells: Vec<Padded<AtomicU64>> =
            (0..4).map(|_| Padded::new(AtomicU64::new(0))).collect();
        let a = &*cells[0] as *const AtomicU64 as usize;
        let b = &*cells[1] as *const AtomicU64 as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_and_into_inner() {
        let mut p = Padded::new(5u64);
        *p += 1;
        assert_eq!(*p, 6);
        assert_eq!(p.into_inner(), 6);
    }

    #[test]
    fn atomic_through_padding() {
        let p = Padded::new(AtomicU64::new(0));
        p.fetch_add(3, Ordering::Relaxed);
        assert_eq!(p.load(Ordering::Relaxed), 3);
    }
}
