//! Property-based tests for dlz-core: counter conservation, RNG
//! contracts, MultiQueue multiset semantics, and the algebraic laws of
//! the spec framework.

use dlz_core::rng::{Rng64, SplitMix64, Xoshiro256};
use dlz_core::spec::relaxation::quantitative_path;
use dlz_core::spec::{CounterOp, CounterSpec, FifoOp, FifoSpec, Lts, PqOp, PqSpec, SequentialSpec};
use dlz_core::{MultiCounter, MultiQueue, RelaxedCounter, TwoChoice};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bounded_is_uniform_range(seed in any::<u64>(), n in 1u64..10_000) {
        let mut rng = Xoshiro256::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.bounded(n) < n);
        }
    }

    #[test]
    fn splitmix_and_xoshiro_are_deterministic(seed in any::<u64>()) {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(seed);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(seed);
            (0..16).map(|_| r.next_u64()).collect()
        };
        prop_assert_eq!(a, b);
        let x: Vec<u64> = {
            let mut r = Xoshiro256::new(seed);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let y: Vec<u64> = {
            let mut r = Xoshiro256::new(seed);
            (0..16).map(|_| r.next_u64()).collect()
        };
        prop_assert_eq!(x, y);
    }

    #[test]
    fn multicounter_conserves_any_m(seed in any::<u64>(), m in 1usize..64, k in 1u64..2_000) {
        let c = MultiCounter::new(m);
        let mut rng = Xoshiro256::new(seed);
        for _ in 0..k {
            c.increment_with(&mut rng);
        }
        prop_assert_eq!(c.read_exact(), k);
        // Conservation at cell level too.
        prop_assert_eq!(c.cell_values().iter().sum::<u64>(), k);
        // Reads are always a multiple of m.
        prop_assert_eq!(c.read_with(&mut rng) % m as u64, 0);
    }

    #[test]
    fn multiqueue_drain_returns_exact_multiset(
        seed in any::<u64>(),
        m in 1usize..16,
        priorities in proptest::collection::vec(0u64..1_000, 1..200),
    ) {
        let mq: MultiQueue<u64> = MultiQueue::new(m);
        let mut rng = Xoshiro256::new(seed);
        for (i, &p) in priorities.iter().enumerate() {
            mq.insert(&mut TwoChoice, &mut rng, p, i as u64);
        }
        let mut got_p = Vec::new();
        let mut got_v = Vec::new();
        while let Some((p, v)) = mq.dequeue(&mut TwoChoice, &mut rng) {
            got_p.push(p);
            got_v.push(v);
        }
        let mut want_p = priorities.clone();
        want_p.sort_unstable();
        got_p.sort_unstable();
        prop_assert_eq!(got_p, want_p);
        got_v.sort_unstable();
        prop_assert_eq!(got_v, (0..priorities.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn counter_relaxation_cost_law(ops in proptest::collection::vec(0u8..3, 0..100)) {
        // cost == 0  iff  the transition is legal in the exact spec.
        let spec = CounterSpec;
        let mut state = 0u64;
        for op in ops {
            let label = match op {
                0 => CounterOp::Inc,
                1 => CounterOp::Read { returned: state },      // legal read
                _ => CounterOp::Read { returned: state + 7 },  // illegal read
            };
            let legal = SequentialSpec::step(&spec, &state, &label).is_some();
            let (next, cost) =
                dlz_core::spec::QuantitativeRelaxation::apply(&spec, &state, &label);
            prop_assert_eq!(legal, cost == 0.0);
            prop_assert!(cost >= 0.0);
            state = next;
        }
    }

    #[test]
    fn pq_relaxation_rank_cost_is_exact_rank(
        inserts in proptest::collection::vec(0u64..100, 1..50),
        pick in any::<prop::sample::Index>(),
    ) {
        // Insert a set, delete one arbitrary element: the cost must be
        // exactly its rank among those present.
        let mut labels: Vec<PqOp> = inserts
            .iter()
            .map(|&p| PqOp::Insert { priority: p })
            .collect();
        let chosen = inserts[pick.index(inserts.len())];
        labels.push(PqOp::DeleteMin { removed: chosen });
        let (_, costs) = quantitative_path(&PqSpec, &labels);
        let expected_rank = inserts.iter().filter(|&&p| p < chosen).count() as f64;
        prop_assert_eq!(*costs.last().unwrap(), expected_rank);
    }

    #[test]
    fn apply_and_apply_mut_agree(ops in proptest::collection::vec((0u8..2, 0u64..30), 0..120)) {
        // Trait law: the in-place fast path must be observationally
        // identical to the pure apply, on both specs with custom
        // apply_mut implementations.
        use dlz_core::spec::QuantitativeRelaxation;
        let pq = PqSpec;
        let mut s_pure = QuantitativeRelaxation::initial(&pq);
        let mut s_mut = QuantitativeRelaxation::initial(&pq);
        for (kind, p) in &ops {
            let label = if *kind == 0 {
                PqOp::Insert { priority: *p }
            } else {
                PqOp::DeleteMin { removed: *p }
            };
            let (next, c1) = pq.apply(&s_pure, &label);
            let c2 = pq.apply_mut(&mut s_mut, &label);
            s_pure = next;
            prop_assert!(c1 == c2 || (c1.is_infinite() && c2.is_infinite()));
            prop_assert_eq!(&s_pure, &s_mut);
        }

        let fifo = FifoSpec;
        let mut f_pure = QuantitativeRelaxation::initial(&fifo);
        let mut f_mut = QuantitativeRelaxation::initial(&fifo);
        for (kind, id) in &ops {
            let label = if *kind == 0 {
                FifoOp::Enqueue { id: *id }
            } else {
                FifoOp::Dequeue { id: *id }
            };
            let (next, c1) = fifo.apply(&f_pure, &label);
            let c2 = fifo.apply_mut(&mut f_mut, &label);
            f_pure = next;
            prop_assert!(c1 == c2 || (c1.is_infinite() && c2.is_infinite()));
            prop_assert_eq!(&f_pure, &f_mut);
        }
    }

    #[test]
    fn fifo_exact_histories_cost_zero(k in 1usize..60) {
        // Enqueue 0..k then dequeue 0..k: perfectly FIFO, all costs 0.
        let mut labels: Vec<FifoOp> = (0..k as u64).map(|id| FifoOp::Enqueue { id }).collect();
        labels.extend((0..k as u64).map(|id| FifoOp::Dequeue { id }));
        let (_, costs) = quantitative_path(&FifoSpec, &labels);
        prop_assert!(costs.iter().all(|&c| c == 0.0));
        // And the exact LTS accepts the same history.
        prop_assert!(Lts::new(&FifoSpec).accepts(&labels));
    }

    #[test]
    fn fifo_reversed_dequeues_cost_positions(k in 2usize..40) {
        // Dequeue in reverse order: the i-th dequeue removes the element
        // at the back, whose position is (remaining - 1).
        let mut labels: Vec<FifoOp> = (0..k as u64).map(|id| FifoOp::Enqueue { id }).collect();
        labels.extend((0..k as u64).rev().map(|id| FifoOp::Dequeue { id }));
        let (_, costs) = quantitative_path(&FifoSpec, &labels);
        let dequeue_costs = &costs[k..];
        for (i, &c) in dequeue_costs.iter().enumerate() {
            prop_assert_eq!(c, (k - 1 - i) as f64);
        }
    }
}
