//! # dlz-bench — figure regeneration harness
//!
//! Shared machinery for the binaries that regenerate every figure of
//! the paper (see `src/bin/`) and for the criterion micro-benchmarks
//! (see `benches/`):
//!
//! * [`harness`] — multi-threaded timed throughput runs (barrier start,
//!   stop flag, per-thread op counts).
//! * [`tables`] — aligned-column table / CSV output.
//! * [`config`] — tiny CLI/env configuration shared by all binaries
//!   (`--threads 1,2,4`, `--duration-ms 300`, `--quick`, ...).
//!
//! Every binary runs with laptop-scale defaults and prints the same
//! series the corresponding figure in the paper plots:
//!
//! ```text
//! cargo run -p dlz-bench --release --bin fig1a -- --threads 1,2,4 --duration-ms 500
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod harness;
pub mod tables;

pub use config::Config;
pub use harness::{count_until_stopped, run_throughput, Throughput};
pub use tables::Table;
