//! # dlz-bench — figure regeneration harness
//!
//! Shared machinery for the binaries that regenerate every figure of
//! the paper (see `src/bin/`) and for the criterion micro-benchmarks
//! (see `benches/`):
//!
//! * [`harness`] — multi-threaded timed throughput runs (barrier start,
//!   stop flag, per-thread op counts); a façade over
//!   [`dlz_workload::driver`].
//! * [`tables`] — aligned-column table / CSV output.
//! * [`config`] — tiny CLI/env configuration shared by all binaries
//!   (`--threads 1,2,4`, `--duration-ms 300`, `--quick`, ...).
//!
//! The figure binaries (`fig1a`, `fig1b`, `fig1cde`, `mq_rank`) are
//! thin wrappers over the `dlz-workload` scenario engine; the
//! `scenarios` binary runs the whole named catalog and emits JSON:
//!
//! ```text
//! cargo run -p dlz-bench --release --bin scenarios -- --list
//! cargo run -p dlz-bench --release --bin fig1a -- --threads 1,2,4 --duration-ms 500
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod harness;
pub mod tables;

pub use config::Config;
pub use harness::{count_until_stopped, run_throughput, Throughput};
pub use tables::Table;
