//! Aligned table output for the figure binaries.
//!
//! Prints right-aligned columns to stdout, or CSV when the environment
//! variable `DLZ_CSV=1` is set (for piping into a plotting script).

/// A simple column-aligned table builder.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table (aligned text, or CSV when `DLZ_CSV=1`).
    pub fn render(&self) -> String {
        if std::env::var("DLZ_CSV").as_deref() == Ok("1") {
            return self.render_csv();
        }
        self.render_aligned()
    }

    fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }

    fn render_aligned(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 significant decimals (table cells).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_rendering() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000".into()]);
        let s = t.render_aligned();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].ends_with("20000"));
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(&["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.render_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["only-one"]);
        t.row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert!(Table::new(&["h"]).is_empty());
    }
}
