//! Minimal CLI/env configuration shared by the figure binaries and the
//! scenario runner.
//!
//! No external argument parser: the binaries take a handful of
//! `--key value` pairs plus environment fallbacks, so `cargo run` with
//! no arguments always produces a sensible laptop-scale run.
//!
//! | flag | env | meaning |
//! |---|---|---|
//! | `--threads 1,2,4` | `DLZ_THREADS` | thread counts to sweep |
//! | `--duration-ms 300` | `DLZ_DURATION_MS` | per-point duration |
//! | `--objects N` | `DLZ_OBJECTS` | TL2 array size(s) |
//! | `--quick` | `DLZ_QUICK=1` | shrink everything for CI smoke |
//! | `--seed S` | `DLZ_SEED` | base RNG seed |
//! | `--list` | | `scenarios`: list the catalog and exit |
//! | `--scenario NAME` | | `scenarios`: run one named scenario |
//! | `--backends a,b` | | `scenarios`: substring filter on backends |
//! | `--json FILE` | | `scenarios`: also write the JSON to FILE |

use std::time::Duration;

/// Parsed configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Per-measurement duration.
    pub duration: Duration,
    /// TL2 object counts (fig1cde only).
    pub objects: Vec<usize>,
    /// Quick mode: shrink runs for smoke-testing.
    pub quick: bool,
    /// Base seed for deterministic components.
    pub seed: u64,
    /// `scenarios`: list the catalog and exit.
    pub list: bool,
    /// `scenarios`: run only this named scenario.
    pub scenario: Option<String>,
    /// `scenarios`: case-insensitive substring filter on backend names.
    pub backends: Vec<String>,
    /// `scenarios`: also write the JSON report array to this file.
    pub json: Option<String>,
    /// Names of flags/envs explicitly set (so binaries can distinguish
    /// "defaulted" from "requested").
    set_flags: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        // Sweep 1..=2·hw in powers of two (oversubscription shows the
        // contention cliff even on small boxes).
        let mut threads = vec![1usize];
        while *threads.last().expect("non-empty") < 2 * hw {
            let next = threads.last().unwrap() * 2;
            threads.push(next);
        }
        Config {
            threads,
            duration: Duration::from_millis(300),
            objects: vec![10_000, 100_000, 1_000_000],
            quick: false,
            seed: 0xd15f1e1d,
            list: false,
            scenario: None,
            backends: Vec::new(),
            json: None,
            set_flags: Vec::new(),
        }
    }
}

impl Config {
    /// Parses `std::env::args` plus environment fallbacks.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1).collect())
    }

    /// `true` if the flag (or its env fallback) was explicitly set.
    pub fn was_set(&self, flag: &str) -> bool {
        self.set_flags.iter().any(|f| f == flag)
    }

    /// Parses an explicit argument vector (tests).
    pub fn parse(args: Vec<String>) -> Self {
        let mut cfg = Config::default();
        // Environment first, flags override.
        if let Ok(v) = std::env::var("DLZ_THREADS") {
            cfg.threads = parse_list(&v);
            cfg.set_flags.push("threads".into());
        }
        if let Ok(v) = std::env::var("DLZ_DURATION_MS") {
            if let Ok(ms) = v.parse::<u64>() {
                cfg.duration = Duration::from_millis(ms);
                cfg.set_flags.push("duration-ms".into());
            }
        }
        if let Ok(v) = std::env::var("DLZ_OBJECTS") {
            cfg.objects = parse_list(&v);
            cfg.set_flags.push("objects".into());
        }
        if std::env::var("DLZ_QUICK").as_deref() == Ok("1") {
            cfg.quick = true;
        }
        if let Ok(v) = std::env::var("DLZ_SEED") {
            if let Ok(s) = v.parse::<u64>() {
                cfg.seed = s;
                cfg.set_flags.push("seed".into());
            }
        }
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--threads" => {
                    let v = it.next().expect("--threads needs a value");
                    cfg.threads = parse_list(&v);
                    cfg.set_flags.push("threads".into());
                }
                "--duration-ms" => {
                    let v = it.next().expect("--duration-ms needs a value");
                    cfg.duration = Duration::from_millis(v.parse().expect("ms"));
                    cfg.set_flags.push("duration-ms".into());
                }
                "--objects" => {
                    let v = it.next().expect("--objects needs a value");
                    cfg.objects = parse_list(&v);
                    cfg.set_flags.push("objects".into());
                }
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    cfg.seed = v.parse().expect("seed");
                    cfg.set_flags.push("seed".into());
                }
                "--quick" => cfg.quick = true,
                "--list" => cfg.list = true,
                "--scenario" => {
                    let v = it.next().expect("--scenario needs a name");
                    cfg.scenario = Some(v);
                }
                "--backends" => {
                    let v = it.next().expect("--backends needs a value");
                    cfg.backends = v
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(|p| p.trim().to_lowercase())
                        .collect();
                }
                "--json" => {
                    let v = it.next().expect("--json needs a path");
                    cfg.json = Some(v);
                }
                other => panic!("unknown flag {other}; see crates/bench/src/config.rs"),
            }
        }
        if cfg.quick {
            cfg.duration = cfg.duration.min(Duration::from_millis(50));
            cfg.threads.truncate(2);
            cfg.objects = cfg.objects.iter().map(|&o| o.min(10_000)).collect();
        }
        cfg
    }

    /// Scales a step count down in quick mode.
    pub fn steps(&self, full: u64) -> u64 {
        if self.quick {
            (full / 50).max(1_000)
        } else {
            full
        }
    }

    /// `true` if `backend_name` passes the `--backends` filter.
    pub fn backend_selected(&self, backend_name: &str) -> bool {
        if self.backends.is_empty() {
            return true;
        }
        let lower = backend_name.to_lowercase();
        self.backends.iter().any(|f| lower.contains(f))
    }
}

fn parse_list<T: std::str::FromStr>(s: &str) -> Vec<T>
where
    T::Err: std::fmt::Debug,
{
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| p.trim().parse().expect("list element"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Config::default();
        assert!(!c.threads.is_empty());
        assert_eq!(c.threads[0], 1);
        assert!(c.duration >= Duration::from_millis(1));
        assert_eq!(c.objects.len(), 3);
        assert!(!c.list);
        assert!(c.scenario.is_none());
    }

    #[test]
    fn flags_override() {
        let c = Config::parse(vec![
            "--threads".into(),
            "1,3,5".into(),
            "--duration-ms".into(),
            "42".into(),
            "--objects".into(),
            "100".into(),
            "--seed".into(),
            "7".into(),
        ]);
        assert_eq!(c.threads, vec![1, 3, 5]);
        assert_eq!(c.duration, Duration::from_millis(42));
        assert_eq!(c.objects, vec![100]);
        assert_eq!(c.seed, 7);
        assert!(c.was_set("threads"));
        assert!(c.was_set("duration-ms"));
        assert!(!c.was_set("nonsense"));
    }

    #[test]
    fn quick_mode_shrinks() {
        let c = Config::parse(vec!["--quick".into()]);
        assert!(c.quick);
        assert!(c.duration <= Duration::from_millis(50));
        assert!(c.threads.len() <= 2);
        assert_eq!(c.steps(1_000_000), 20_000);
    }

    #[test]
    fn scenario_flags_parse() {
        let c = Config::parse(vec![
            "--list".into(),
            "--scenario".into(),
            "queue-balanced".into(),
            "--backends".into(),
            "MultiQueue,coarse".into(),
            "--json".into(),
            "out.json".into(),
        ]);
        assert!(c.list);
        assert_eq!(c.scenario.as_deref(), Some("queue-balanced"));
        assert_eq!(c.json.as_deref(), Some("out.json"));
        assert!(c.backend_selected("multiqueue-heap(m=8,strict)"));
        assert!(c.backend_selected("coarse-pq"));
        assert!(!c.backend_selected("stm-exact(slots=65536)"));
    }

    #[test]
    fn empty_backend_filter_selects_all() {
        let c = Config::parse(vec![]);
        assert!(c.backend_selected("anything"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = Config::parse(vec!["--bogus".into()]);
    }
}
