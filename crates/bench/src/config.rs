//! Minimal CLI/env configuration shared by the figure binaries and the
//! scenario runner.
//!
//! No external argument parser: the binaries take a handful of
//! `--key value` pairs plus environment fallbacks, so `cargo run` with
//! no arguments always produces a sensible laptop-scale run.
//!
//! | flag | env | meaning |
//! |---|---|---|
//! | `--threads 1,2,4` | `DLZ_THREADS` | thread counts to sweep |
//! | `--duration-ms 300` | `DLZ_DURATION_MS` | per-point duration |
//! | `--objects N` | `DLZ_OBJECTS` | TL2 array size(s) |
//! | `--quick` | `DLZ_QUICK=1` | shrink everything *not explicitly set* for CI smoke |
//! | `--seed S` | `DLZ_SEED` | base RNG seed |
//! | `--list` | | `scenarios`: list the catalog and exit |
//! | `--scenario NAME` | | `scenarios`: run one named scenario |
//! | `--backends a,b` | | `scenarios`: substring filter on backends |
//! | `--json FILE` | | `scenarios`: also write the JSON to FILE |
//! | `--sweep` | `DLZ_SWEEP=1` | `scenarios`: expand the full sweep grid |
//! | `--policies a,b` | `DLZ_POLICIES` | choice-policy axis (`two-choice,sticky=16,...`) |
//! | `--substrates a,b` | `DLZ_SUBSTRATES` | per-queue substrate axis (`locked,lockfree,combining`) |
//! | `--mixes a,b` | `DLZ_MIXES` | op-mix axis (`50/50/0,90/0/10,...`) |
//! | `--keys a,b` | | key-distribution axis (`uniform:1024,zipf:16384:0.9,...`) |
//! | `--prios a,b` | | priority-distribution axis (same grammar) |
//! | `--zipf 0.6,0.9` | | skew shorthand: a Zipf axis over the listed thetas |
//! | `--export-histories DIR` | | `scenarios`: serialize each history run's artifact under DIR |
//! | `--telemetry` | `DLZ_TELEMETRY=1` | `scenarios`: per-interval snapshots in each report (100ms default) |
//! | `--telemetry-interval-ms N` | `DLZ_TELEMETRY_MS` | snapshot interval; implies `--telemetry` |
//! | `--faults SPEC` | `DLZ_FAULTS` | `scenarios`: inject a fault plan (`panic:1@200;slow:3:5..20`) |
//! | `--clients N[,M]` | `DLZ_CLIENTS` | simulated-client population axis (`0` = plain per-worker driver) |
//! | `--arrival-shape a,b` | `DLZ_ARRIVAL_SHAPE` | per-client arrival shapes (`poisson:50,diurnal:20:200,...`) |
//!
//! The `Dist` grammar for `--keys`/`--prios`: `uniform:N`, `zipf:N:THETA`
//! (or `zipf:THETA` with the default 65536-key space), `fixed:V`,
//! `monotonic`.
//!
//! Malformed flags are **usage errors**: [`Config::from_args`] prints
//! the message to stderr and exits with status 2 (it never panics);
//! [`Config::try_parse`] returns the error for tests and embedders.

use std::time::Duration;

use dlz_core::{PolicyCfg, SubstrateCfg};
use dlz_workload::{ArrivalShape, Dist, FaultPlan, OpMix};

/// Default key space for `--zipf` and `zipf:THETA` shorthands.
pub const DEFAULT_DIST_N: u64 = 1 << 16;

/// Parsed configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Per-measurement duration.
    pub duration: Duration,
    /// TL2 object counts (fig1cde only).
    pub objects: Vec<usize>,
    /// Quick mode: shrink runs for smoke-testing. Only dimensions the
    /// user did **not** explicitly set are shrunk — `--quick
    /// --threads 8` runs 8 threads.
    pub quick: bool,
    /// Base seed for deterministic components.
    pub seed: u64,
    /// `scenarios`: list the catalog and exit.
    pub list: bool,
    /// `scenarios`: run only this named scenario.
    pub scenario: Option<String>,
    /// `scenarios`: case-insensitive substring filter on backend names.
    pub backends: Vec<String>,
    /// `scenarios`: also write the JSON report array to this file.
    pub json: Option<String>,
    /// `scenarios`: expand the full sweep grid (threads × policies ×
    /// mixes) instead of a single point per scenario.
    pub sweep: bool,
    /// Choice-policy axis values (`--policies two-choice,sticky=16`).
    pub policies: Vec<PolicyCfg>,
    /// Per-queue substrate axis values
    /// (`--substrates locked,lockfree,combining`).
    pub substrates: Vec<SubstrateCfg>,
    /// Op-mix axis values (`--mixes 50/50/0,90/0/10`).
    pub mixes: Vec<OpMix>,
    /// Key-distribution axis values (`--keys uniform:1024,zipf:16384:0.9`).
    pub keys: Vec<Dist>,
    /// Priority-distribution axis values (`--prios monotonic,zipf:0.9`).
    pub prios: Vec<Dist>,
    /// Zipf-skew shorthand (`--zipf 0.6,0.9,0.99`): a Zipf axis over
    /// the listed thetas with the default key space, applied to the
    /// family's natural skew dimension (priorities for queue scenarios,
    /// keys otherwise). Mutually exclusive with `--keys`/`--prios`.
    pub zipf: Vec<f64>,
    /// `scenarios`: directory to serialize history artifacts into.
    pub export_histories: Option<String>,
    /// `scenarios`: enable time-resolved telemetry (interval snapshots
    /// in every report; `.prom` exports next to exported histories).
    pub telemetry: bool,
    /// Telemetry snapshot interval (only meaningful with
    /// [`telemetry`](Self::telemetry); setting it via
    /// `--telemetry-interval-ms` implies `--telemetry`).
    pub telemetry_interval: Duration,
    /// `scenarios`: fault plan injected into every selected scenario
    /// (`--faults 'panic:1@200;slow:3:5..20'`). Malformed specs are
    /// usage errors at parse time, not mid-sweep panics.
    pub faults: Option<FaultPlan>,
    /// Simulated-client population values (`--clients 100000`): each
    /// selected scenario runs with this many open-loop clients driven
    /// over the worker pool; more than one value becomes a sweep axis.
    /// `0` means the plain per-worker driver.
    pub clients: Vec<usize>,
    /// Per-client arrival shapes (`--arrival-shape poisson:50`); more
    /// than one value becomes a sweep axis. Only meaningful together
    /// with a non-zero client population.
    pub arrival_shapes: Vec<ArrivalShape>,
    /// Names of flags/envs explicitly set (so binaries can distinguish
    /// "defaulted" from "requested").
    set_flags: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        // Sweep 1..=2·hw in powers of two (oversubscription shows the
        // contention cliff even on small boxes).
        let mut threads = vec![1usize];
        while *threads.last().expect("non-empty") < 2 * hw {
            let next = threads.last().unwrap() * 2;
            threads.push(next);
        }
        Config {
            threads,
            duration: Duration::from_millis(300),
            objects: vec![10_000, 100_000, 1_000_000],
            quick: false,
            seed: 0xd15f1e1d,
            list: false,
            scenario: None,
            backends: Vec::new(),
            json: None,
            sweep: false,
            policies: Vec::new(),
            substrates: Vec::new(),
            mixes: Vec::new(),
            keys: Vec::new(),
            prios: Vec::new(),
            zipf: Vec::new(),
            export_histories: None,
            telemetry: false,
            telemetry_interval: Duration::from_millis(100),
            faults: None,
            clients: Vec::new(),
            arrival_shapes: Vec::new(),
            set_flags: Vec::new(),
        }
    }
}

impl Config {
    /// Parses `std::env::args` plus environment fallbacks. A malformed
    /// flag is a usage error: the message goes to stderr and the
    /// process exits with status 2.
    pub fn from_args() -> Self {
        match Self::try_parse(std::env::args().skip(1).collect()) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("see crates/bench/src/config.rs for the flag table");
                std::process::exit(2);
            }
        }
    }

    /// `true` if the flag (or its env fallback) was explicitly set.
    pub fn was_set(&self, flag: &str) -> bool {
        self.set_flags.iter().any(|f| f == flag)
    }

    /// Parses an explicit argument vector, panicking on malformed input
    /// (tests and embedders that want the old behaviour; binaries use
    /// [`Config::from_args`], which exits 2 instead).
    pub fn parse(args: Vec<String>) -> Self {
        Self::try_parse(args).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Parses an explicit argument vector plus environment fallbacks,
    /// returning a usage-error message on malformed input.
    pub fn try_parse(args: Vec<String>) -> Result<Self, String> {
        let mut cfg = Config::default();
        // Environment first, flags override.
        if let Ok(v) = std::env::var("DLZ_THREADS") {
            cfg.threads = parse_list(&v, "DLZ_THREADS", "a thread count")?;
            if cfg.threads.contains(&0) {
                return Err("DLZ_THREADS values must be >= 1".into());
            }
            cfg.set_flags.push("threads".into());
        }
        if let Ok(v) = std::env::var("DLZ_DURATION_MS") {
            if let Ok(ms) = v.parse::<u64>() {
                cfg.duration = Duration::from_millis(ms);
                cfg.set_flags.push("duration-ms".into());
            }
        }
        if let Ok(v) = std::env::var("DLZ_OBJECTS") {
            cfg.objects = parse_list(&v, "DLZ_OBJECTS", "an object count")?;
            cfg.set_flags.push("objects".into());
        }
        if std::env::var("DLZ_QUICK").as_deref() == Ok("1") {
            cfg.quick = true;
        }
        if std::env::var("DLZ_SWEEP").as_deref() == Ok("1") {
            cfg.sweep = true;
        }
        if let Ok(v) = std::env::var("DLZ_SEED") {
            if let Ok(s) = v.parse::<u64>() {
                cfg.seed = s;
                cfg.set_flags.push("seed".into());
            }
        }
        if let Ok(v) = std::env::var("DLZ_POLICIES") {
            cfg.policies = parse_policies(&v)?;
            cfg.set_flags.push("policies".into());
        }
        if let Ok(v) = std::env::var("DLZ_SUBSTRATES") {
            cfg.substrates = parse_substrates(&v, "DLZ_SUBSTRATES")?;
            cfg.set_flags.push("substrates".into());
        }
        if let Ok(v) = std::env::var("DLZ_MIXES") {
            cfg.mixes = parse_mixes(&v)?;
            cfg.set_flags.push("mixes".into());
        }
        if std::env::var("DLZ_TELEMETRY").as_deref() == Ok("1") {
            cfg.telemetry = true;
        }
        if let Ok(v) = std::env::var("DLZ_FAULTS") {
            cfg.faults = Some(FaultPlan::parse(&v).map_err(|e| format!("DLZ_FAULTS: {e}"))?);
            cfg.set_flags.push("faults".into());
        }
        if let Ok(v) = std::env::var("DLZ_CLIENTS") {
            cfg.clients = parse_list(&v, "DLZ_CLIENTS", "a client count")?;
            cfg.set_flags.push("clients".into());
        }
        if let Ok(v) = std::env::var("DLZ_ARRIVAL_SHAPE") {
            cfg.arrival_shapes = parse_shapes(&v, "DLZ_ARRIVAL_SHAPE")?;
            cfg.set_flags.push("arrival-shape".into());
        }
        if let Ok(v) = std::env::var("DLZ_TELEMETRY_MS") {
            if let Ok(ms) = v.parse::<u64>() {
                cfg.telemetry = true;
                cfg.telemetry_interval = Duration::from_millis(ms.max(1));
                cfg.set_flags.push("telemetry-interval-ms".into());
            }
        }
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--threads" => {
                    let v = need(&mut it, "--threads")?;
                    cfg.threads = parse_list(&v, "--threads", "a thread count")?;
                    if cfg.threads.contains(&0) {
                        return Err("--threads values must be >= 1".into());
                    }
                    cfg.set_flags.push("threads".into());
                }
                "--duration-ms" => {
                    let v = need(&mut it, "--duration-ms")?;
                    let ms: u64 = v.parse().map_err(|_| {
                        format!("--duration-ms expects a whole number of milliseconds, got '{v}'")
                    })?;
                    cfg.duration = Duration::from_millis(ms);
                    cfg.set_flags.push("duration-ms".into());
                }
                "--objects" => {
                    let v = need(&mut it, "--objects")?;
                    cfg.objects = parse_list(&v, "--objects", "an object count")?;
                    cfg.set_flags.push("objects".into());
                }
                "--seed" => {
                    let v = need(&mut it, "--seed")?;
                    cfg.seed = v
                        .parse()
                        .map_err(|_| format!("--seed expects an unsigned integer, got '{v}'"))?;
                    cfg.set_flags.push("seed".into());
                }
                "--quick" => cfg.quick = true,
                "--sweep" => cfg.sweep = true,
                "--list" => cfg.list = true,
                "--scenario" => {
                    let v = need(&mut it, "--scenario")?;
                    cfg.scenario = Some(v);
                }
                "--backends" => {
                    let v = need(&mut it, "--backends")?;
                    cfg.backends = v
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(|p| p.trim().to_lowercase())
                        .collect();
                }
                "--policies" => {
                    let v = need(&mut it, "--policies")?;
                    cfg.policies = parse_policies(&v)?;
                    cfg.set_flags.push("policies".into());
                }
                "--substrates" | "--substrate" => {
                    let v = need(&mut it, "--substrates")?;
                    cfg.substrates = parse_substrates(&v, "--substrates")?;
                    cfg.set_flags.push("substrates".into());
                }
                "--mixes" => {
                    let v = need(&mut it, "--mixes")?;
                    cfg.mixes = parse_mixes(&v)?;
                    cfg.set_flags.push("mixes".into());
                }
                "--keys" => {
                    let v = need(&mut it, "--keys")?;
                    cfg.keys = parse_dists(&v, "--keys")?;
                    cfg.set_flags.push("keys".into());
                }
                "--prios" => {
                    let v = need(&mut it, "--prios")?;
                    cfg.prios = parse_dists(&v, "--prios")?;
                    cfg.set_flags.push("prios".into());
                }
                "--zipf" => {
                    let v = need(&mut it, "--zipf")?;
                    cfg.zipf = parse_thetas(&v)?;
                    cfg.set_flags.push("zipf".into());
                }
                "--export-histories" => {
                    let v = need(&mut it, "--export-histories")?;
                    cfg.export_histories = Some(v);
                }
                "--faults" => {
                    let v = need(&mut it, "--faults")?;
                    cfg.faults = Some(FaultPlan::parse(&v).map_err(|e| format!("--faults: {e}"))?);
                    cfg.set_flags.push("faults".into());
                }
                "--clients" => {
                    let v = need(&mut it, "--clients")?;
                    cfg.clients = parse_list(&v, "--clients", "a client count")?;
                    cfg.set_flags.push("clients".into());
                }
                "--arrival-shape" => {
                    let v = need(&mut it, "--arrival-shape")?;
                    cfg.arrival_shapes = parse_shapes(&v, "--arrival-shape")?;
                    cfg.set_flags.push("arrival-shape".into());
                }
                "--telemetry" => cfg.telemetry = true,
                "--telemetry-interval-ms" => {
                    let v = need(&mut it, "--telemetry-interval-ms")?;
                    let ms: u64 = v.parse().map_err(|_| {
                        format!(
                            "--telemetry-interval-ms expects a whole number of milliseconds, got '{v}'"
                        )
                    })?;
                    if ms == 0 {
                        return Err("--telemetry-interval-ms must be >= 1".into());
                    }
                    cfg.telemetry = true;
                    cfg.telemetry_interval = Duration::from_millis(ms);
                    cfg.set_flags.push("telemetry-interval-ms".into());
                }
                "--json" => {
                    let v = need(&mut it, "--json")?;
                    cfg.json = Some(v);
                }
                other => {
                    return Err(format!(
                        "unknown flag {other}; see crates/bench/src/config.rs"
                    ))
                }
            }
        }
        if !cfg.zipf.is_empty() && (!cfg.keys.is_empty() || !cfg.prios.is_empty()) {
            return Err(
                "--zipf is shorthand for a Zipf --keys/--prios axis; pass one or the other".into(),
            );
        }
        // Quick mode only shrinks dimensions the user did NOT set
        // explicitly: `--quick --threads 8` runs 8 threads.
        if cfg.quick {
            if !cfg.was_set("duration-ms") {
                cfg.duration = cfg.duration.min(Duration::from_millis(50));
            }
            if !cfg.was_set("threads") {
                cfg.threads.truncate(2);
            }
            if !cfg.was_set("objects") {
                cfg.objects = cfg.objects.iter().map(|&o| o.min(10_000)).collect();
            }
        }
        Ok(cfg)
    }

    /// Scales a step count down in quick mode.
    pub fn steps(&self, full: u64) -> u64 {
        if self.quick {
            (full / 50).max(1_000)
        } else {
            full
        }
    }

    /// `true` if `backend_name` passes the `--backends` filter.
    pub fn backend_selected(&self, backend_name: &str) -> bool {
        if self.backends.is_empty() {
            return true;
        }
        let lower = backend_name.to_lowercase();
        self.backends.iter().any(|f| lower.contains(f))
    }
}

/// The next argument, or a usage error naming the flag that needed it.
fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_list<T: std::str::FromStr>(s: &str, flag: &str, what: &str) -> Result<Vec<T>, String> {
    let out: Result<Vec<T>, String> = s
        .split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| format!("{flag}: '{p}' is not {what}"))
        })
        .collect();
    let out = out?;
    if out.is_empty() {
        return Err(format!("{flag} needs at least one value"));
    }
    Ok(out)
}

/// Parses a comma-separated choice-policy list
/// (`two-choice,sticky=16,d-choice=4,adaptive=8`).
fn parse_policies(s: &str) -> Result<Vec<PolicyCfg>, String> {
    let out: Result<Vec<PolicyCfg>, String> = s
        .split(',')
        .filter(|p| !p.trim().is_empty())
        .map(PolicyCfg::parse)
        .collect();
    let out = out?;
    if out.is_empty() {
        return Err("--policies needs at least one policy".into());
    }
    Ok(out)
}

/// Parses a comma-separated substrate list
/// (`locked,lockfree,combining`).
fn parse_substrates(s: &str, flag: &str) -> Result<Vec<SubstrateCfg>, String> {
    let out: Result<Vec<SubstrateCfg>, String> = s
        .split(',')
        .filter(|p| !p.trim().is_empty())
        .map(|p| {
            SubstrateCfg::parse(p).ok_or_else(|| {
                format!("{flag}: unknown substrate '{p}' (expected locked, lockfree or combining)")
            })
        })
        .collect();
    let out = out?;
    if out.is_empty() {
        return Err(format!("{flag} needs at least one substrate"));
    }
    Ok(out)
}

/// Parses one `Dist` description: `uniform:N`, `zipf:N:THETA`,
/// `zipf:THETA` (default 65536-value space), `fixed:V`, `monotonic`.
pub fn parse_dist(tok: &str) -> Result<Dist, String> {
    let t = tok.trim().to_lowercase();
    let (name, rest) = match t.split_once(':') {
        Some((n, r)) => (n, Some(r)),
        None => (t.as_str(), None),
    };
    let num = |what: &str, r: &str| -> Result<u64, String> {
        r.parse::<u64>()
            .map_err(|_| format!("dist '{tok}': '{r}' is not {what}"))
    };
    match (name, rest) {
        ("monotonic" | "mono", None) => Ok(Dist::Monotonic),
        ("monotonic" | "mono", Some(_)) => Err(format!("dist '{tok}': monotonic takes no parameter")),
        ("uniform" | "u", Some(r)) => {
            let n = num("a value count", r)?;
            if n == 0 {
                return Err(format!("dist '{tok}': uniform needs n >= 1"));
            }
            Ok(Dist::Uniform { n })
        }
        ("fixed" | "f", Some(r)) => Ok(Dist::Fixed(num("a value", r)?)),
        ("zipf" | "z", Some(r)) => {
            let (n, theta_text) = match r.split_once(':') {
                Some((n_text, theta)) => (num("a value count", n_text)?, theta),
                None => (DEFAULT_DIST_N, r),
            };
            if n < 2 {
                return Err(format!("dist '{tok}': zipf needs n >= 2"));
            }
            let theta = parse_theta(tok, theta_text)?;
            Ok(Dist::Zipf { n, theta })
        }
        ("uniform" | "u" | "fixed" | "f" | "zipf" | "z", None) => {
            Err(format!("dist '{tok}' needs a parameter (e.g. uniform:1024)"))
        }
        _ => Err(format!(
            "unknown dist '{tok}' (expected uniform:N, zipf:N:THETA, zipf:THETA, fixed:V or monotonic)"
        )),
    }
}

/// A Zipf skew exponent; must lie in (0, 1) — the sampler would panic
/// on anything else, and a usage error beats a panic.
fn parse_theta(ctx: &str, text: &str) -> Result<f64, String> {
    let theta: f64 = text
        .trim()
        .parse()
        .map_err(|_| format!("'{ctx}': '{text}' is not a Zipf theta"))?;
    if theta > 0.0 && theta < 1.0 {
        Ok(theta)
    } else {
        Err(format!(
            "'{ctx}': Zipf theta must lie in (0, 1), got {theta}"
        ))
    }
}

/// Parses a comma-separated `Dist` list (`uniform:1024,zipf:16384:0.9`).
fn parse_dists(s: &str, flag: &str) -> Result<Vec<Dist>, String> {
    let out: Result<Vec<Dist>, String> = s
        .split(',')
        .filter(|p| !p.trim().is_empty())
        .map(parse_dist)
        .collect();
    let out = out?;
    if out.is_empty() {
        return Err(format!("{flag} needs at least one distribution"));
    }
    Ok(out)
}

/// Parses the `--zipf` theta list (`0.6,0.9,0.99`).
fn parse_thetas(s: &str) -> Result<Vec<f64>, String> {
    let out: Result<Vec<f64>, String> = s
        .split(',')
        .filter(|p| !p.trim().is_empty())
        .map(|p| parse_theta("--zipf", p))
        .collect();
    let out = out?;
    if out.is_empty() {
        return Err("--zipf needs at least one theta".into());
    }
    Ok(out)
}

/// Parses a comma-separated arrival-shape list
/// (`poisson:50,periodic:100,bursty:320:64,diurnal:20:200,flash:5:20:50:50`).
fn parse_shapes(s: &str, flag: &str) -> Result<Vec<ArrivalShape>, String> {
    let out: Result<Vec<ArrivalShape>, String> = s
        .split(',')
        .filter(|p| !p.trim().is_empty())
        .map(|p| ArrivalShape::parse(p).map_err(|e| format!("{flag}: {e}")))
        .collect();
    let out = out?;
    if out.is_empty() {
        return Err(format!("{flag} needs at least one shape"));
    }
    Ok(out)
}

/// Parses a comma-separated op-mix list (`50/50/0,90/0/10`).
fn parse_mixes(s: &str) -> Result<Vec<OpMix>, String> {
    let out: Result<Vec<OpMix>, String> = s
        .split(',')
        .filter(|p| !p.trim().is_empty())
        .map(OpMix::parse)
        .collect();
    let out = out?;
    if out.is_empty() {
        return Err("--mixes needs at least one mix".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Config::default();
        assert!(!c.threads.is_empty());
        assert_eq!(c.threads[0], 1);
        assert!(c.duration >= Duration::from_millis(1));
        assert_eq!(c.objects.len(), 3);
        assert!(!c.list);
        assert!(!c.sweep);
        assert!(c.scenario.is_none());
        assert!(c.policies.is_empty());
        assert!(c.mixes.is_empty());
    }

    #[test]
    fn flags_override() {
        let c = Config::parse(vec![
            "--threads".into(),
            "1,3,5".into(),
            "--duration-ms".into(),
            "42".into(),
            "--objects".into(),
            "100".into(),
            "--seed".into(),
            "7".into(),
        ]);
        assert_eq!(c.threads, vec![1, 3, 5]);
        assert_eq!(c.duration, Duration::from_millis(42));
        assert_eq!(c.objects, vec![100]);
        assert_eq!(c.seed, 7);
        assert!(c.was_set("threads"));
        assert!(c.was_set("duration-ms"));
        assert!(!c.was_set("nonsense"));
    }

    #[test]
    fn quick_mode_shrinks_unset_dimensions() {
        let c = Config::parse(vec!["--quick".into()]);
        assert!(c.quick);
        assert!(c.duration <= Duration::from_millis(50));
        assert!(c.threads.len() <= 2);
        assert_eq!(c.steps(1_000_000), 20_000);
    }

    #[test]
    fn quick_mode_respects_explicit_overrides() {
        // Regression: `--quick --threads 8` used to clamp to 2 threads
        // because the quick shrink ran after the override.
        let c = Config::parse(vec!["--quick".into(), "--threads".into(), "8".into()]);
        assert_eq!(
            c.threads,
            vec![8],
            "explicit --threads must survive --quick"
        );
        // Order must not matter either.
        let c = Config::parse(vec!["--threads".into(), "4,8".into(), "--quick".into()]);
        assert_eq!(c.threads, vec![4, 8]);
        let c = Config::parse(vec!["--quick".into(), "--duration-ms".into(), "400".into()]);
        assert_eq!(c.duration, Duration::from_millis(400));
        let c = Config::parse(vec!["--quick".into(), "--objects".into(), "500000".into()]);
        assert_eq!(c.objects, vec![500_000]);
    }

    #[test]
    fn scenario_flags_parse() {
        let c = Config::parse(vec![
            "--list".into(),
            "--scenario".into(),
            "queue-balanced".into(),
            "--backends".into(),
            "MultiQueue,coarse".into(),
            "--json".into(),
            "out.json".into(),
        ]);
        assert!(c.list);
        assert_eq!(c.scenario.as_deref(), Some("queue-balanced"));
        assert_eq!(c.json.as_deref(), Some("out.json"));
        assert!(c.backend_selected("multiqueue-heap(m=8,strict)"));
        assert!(c.backend_selected("coarse-pq"));
        assert!(!c.backend_selected("stm-exact(slots=65536)"));
    }

    #[test]
    fn sweep_axes_parse() {
        let c = Config::parse(vec![
            "--sweep".into(),
            "--policies".into(),
            "two-choice,sticky=16,adaptive=8".into(),
            "--mixes".into(),
            "50/50/0,90/0/10".into(),
        ]);
        assert!(c.sweep);
        assert_eq!(
            c.policies,
            vec![
                PolicyCfg::TwoChoice,
                PolicyCfg::Sticky { ops: 16 },
                PolicyCfg::AdaptiveSticky { s_max: 8 },
            ]
        );
        assert_eq!(c.mixes, vec![OpMix::new(50, 50, 0), OpMix::new(90, 0, 10)]);
        assert!(c.was_set("policies"));
        assert!(c.was_set("mixes"));
    }

    #[test]
    fn substrate_axis_parses_with_aliases_and_rejects_unknown() {
        let c = Config::parse(vec![]);
        assert!(c.substrates.is_empty());
        let c = Config::parse(vec![
            "--substrates".into(),
            "locked,lock-free,combining".into(),
        ]);
        assert_eq!(
            c.substrates,
            vec![
                SubstrateCfg::Locked,
                SubstrateCfg::LockFree,
                SubstrateCfg::Combining,
            ]
        );
        assert!(c.was_set("substrates"));
        // The singular spelling is an alias.
        let c = Config::parse(vec!["--substrate".into(), "lockfree".into()]);
        assert_eq!(c.substrates, vec![SubstrateCfg::LockFree]);
        let e = Config::try_parse(vec!["--substrates".into(), "quantum".into()]).unwrap_err();
        assert!(e.contains("quantum"), "{e}");
        assert!(e.contains("lockfree"), "{e}");
        let e = Config::try_parse(vec!["--substrates".into(), ",".into()]).unwrap_err();
        assert!(e.contains("at least one"), "{e}");
    }

    #[test]
    fn dist_grammar_parses_compact_forms() {
        let c = Config::parse(vec![
            "--keys".into(),
            "uniform:1024,zipf:16384:0.9,fixed:7,monotonic".into(),
            "--prios".into(),
            "zipf:0.99".into(),
        ]);
        assert_eq!(
            c.keys,
            vec![
                Dist::Uniform { n: 1024 },
                Dist::Zipf {
                    n: 16384,
                    theta: 0.9
                },
                Dist::Fixed(7),
                Dist::Monotonic,
            ]
        );
        assert_eq!(
            c.prios,
            vec![Dist::Zipf {
                n: DEFAULT_DIST_N,
                theta: 0.99
            }]
        );
        assert!(c.was_set("keys") && c.was_set("prios"));
    }

    #[test]
    fn zipf_shorthand_and_exclusivity() {
        let c = Config::parse(vec!["--zipf".into(), "0.6,0.9,0.99".into()]);
        assert_eq!(c.zipf, vec![0.6, 0.9, 0.99]);
        let e = Config::try_parse(vec![
            "--zipf".into(),
            "0.9".into(),
            "--keys".into(),
            "uniform:8".into(),
        ])
        .unwrap_err();
        assert!(e.contains("--zipf"), "{e}");
    }

    #[test]
    fn malformed_dists_are_usage_errors() {
        for bad in [
            "uniform",
            "uniform:0",
            "uniform:x",
            "zipf:1.5",
            "zipf:0",
            "zipf:8:2.0",
            "zipf:1:0.9",
            "frob:3",
            "monotonic:4",
        ] {
            let e = Config::try_parse(vec!["--keys".into(), bad.into()]).expect_err(bad);
            assert!(e.contains(bad.split(':').next().unwrap()), "{bad}: {e}");
        }
        let e = Config::try_parse(vec!["--zipf".into(), "0.9,nope".into()]).unwrap_err();
        assert!(e.contains("nope"), "{e}");
        let e = Config::try_parse(vec!["--zipf".into(), "1.2".into()]).unwrap_err();
        assert!(e.contains("(0, 1)"), "{e}");
    }

    #[test]
    fn export_histories_flag_parses() {
        let c = Config::parse(vec!["--export-histories".into(), "hist/dir".into()]);
        assert_eq!(c.export_histories.as_deref(), Some("hist/dir"));
        assert!(Config::parse(vec![]).export_histories.is_none());
    }

    #[test]
    fn telemetry_flags_parse_and_imply_each_other() {
        let c = Config::parse(vec![]);
        assert!(!c.telemetry);
        assert_eq!(c.telemetry_interval, Duration::from_millis(100));
        let c = Config::parse(vec!["--telemetry".into()]);
        assert!(c.telemetry);
        assert_eq!(c.telemetry_interval, Duration::from_millis(100));
        // Setting the interval implies enabling telemetry.
        let c = Config::parse(vec!["--telemetry-interval-ms".into(), "25".into()]);
        assert!(c.telemetry);
        assert_eq!(c.telemetry_interval, Duration::from_millis(25));
        assert!(c.was_set("telemetry-interval-ms"));
        let e = Config::try_parse(vec!["--telemetry-interval-ms".into(), "0".into()]).unwrap_err();
        assert!(e.contains(">= 1"), "{e}");
        let e =
            Config::try_parse(vec!["--telemetry-interval-ms".into(), "soon".into()]).unwrap_err();
        assert!(e.contains("soon"), "{e}");
    }

    #[test]
    fn faults_flag_parses_and_rejects_malformed_plans() {
        let c = Config::parse(vec![]);
        assert!(c.faults.is_none());
        let c = Config::parse(vec!["--faults".into(), "panic:1@200;slow:3:5..20".into()]);
        let plan = c.faults.as_ref().expect("plan");
        assert_eq!(plan.spec(), "panic:1@200;slow:3:5..20");
        assert_eq!(plan.max_worker(), 3);
        assert!(c.was_set("faults"));
        let e = Config::try_parse(vec!["--faults".into(), "panic:1".into()]).unwrap_err();
        assert!(e.contains("--faults"), "{e}");
        let e = Config::try_parse(vec!["--faults".into(), "explode:2@5".into()]).unwrap_err();
        assert!(e.contains("explode"), "{e}");
    }

    #[test]
    fn client_flags_parse_and_survive_quick() {
        let c = Config::parse(vec![]);
        assert!(c.clients.is_empty());
        assert!(c.arrival_shapes.is_empty());
        // Quick mode must not shrink the client population: the whole
        // point of the frontend is many clients over few workers.
        let c = Config::parse(vec![
            "--quick".into(),
            "--clients".into(),
            "100000".into(),
            "--arrival-shape".into(),
            "poisson:50,diurnal:20:200".into(),
        ]);
        assert_eq!(c.clients, vec![100_000]);
        assert_eq!(
            c.arrival_shapes,
            vec![
                ArrivalShape::Poisson { rate: 50.0 },
                ArrivalShape::Diurnal {
                    rate: 20.0,
                    period_ms: 200
                },
            ]
        );
        assert!(c.was_set("clients") && c.was_set("arrival-shape"));
        let e = Config::try_parse(vec!["--clients".into(), "many".into()]).unwrap_err();
        assert!(e.contains("--clients"), "{e}");
        let e = Config::try_parse(vec!["--arrival-shape".into(), "warp:9".into()]).unwrap_err();
        assert!(e.contains("--arrival-shape"), "{e}");
        assert!(e.contains("warp"), "{e}");
    }

    #[test]
    fn empty_backend_filter_selects_all() {
        let c = Config::parse(vec![]);
        assert!(c.backend_selected("anything"));
    }

    #[test]
    fn malformed_values_are_usage_errors_not_panics() {
        // Regression: `--duration-ms abc` used to panic with a raw
        // `expect("ms")`.
        let e = Config::try_parse(vec!["--duration-ms".into(), "abc".into()]).unwrap_err();
        assert!(e.contains("--duration-ms"), "{e}");
        assert!(e.contains("abc"), "{e}");
        let e = Config::try_parse(vec!["--seed".into(), "xyz".into()]).unwrap_err();
        assert!(e.contains("--seed"), "{e}");
        let e = Config::try_parse(vec!["--threads".into(), "1,two".into()]).unwrap_err();
        assert!(e.contains("--threads"), "{e}");
        let e = Config::try_parse(vec!["--threads".into(), "0".into()]).unwrap_err();
        assert!(e.contains(">= 1"), "{e}");
        let e = Config::try_parse(vec!["--policies".into(), "frobnicate".into()]).unwrap_err();
        assert!(e.contains("frobnicate"), "{e}");
        let e = Config::try_parse(vec!["--mixes".into(), "50/50".into()]).unwrap_err();
        assert!(e.contains("50/50"), "{e}");
    }

    #[test]
    fn trailing_flags_are_usage_errors_not_panics() {
        // Regression: a trailing `--threads` used to panic with
        // `expect("--threads needs a value")`.
        for flag in [
            "--threads",
            "--duration-ms",
            "--objects",
            "--seed",
            "--scenario",
            "--backends",
            "--policies",
            "--substrates",
            "--mixes",
            "--keys",
            "--prios",
            "--zipf",
            "--export-histories",
            "--telemetry-interval-ms",
            "--faults",
            "--clients",
            "--arrival-shape",
            "--json",
        ] {
            let e = Config::try_parse(vec![flag.into()]).unwrap_err();
            assert_eq!(e, format!("{flag} needs a value"));
        }
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = Config::parse(vec!["--bogus".into()]);
    }
}
