//! Minimal CLI/env configuration shared by the figure binaries and the
//! scenario runner.
//!
//! No external argument parser: the binaries take a handful of
//! `--key value` pairs plus environment fallbacks, so `cargo run` with
//! no arguments always produces a sensible laptop-scale run.
//!
//! | flag | env | meaning |
//! |---|---|---|
//! | `--threads 1,2,4` | `DLZ_THREADS` | thread counts to sweep |
//! | `--duration-ms 300` | `DLZ_DURATION_MS` | per-point duration |
//! | `--objects N` | `DLZ_OBJECTS` | TL2 array size(s) |
//! | `--quick` | `DLZ_QUICK=1` | shrink everything *not explicitly set* for CI smoke |
//! | `--seed S` | `DLZ_SEED` | base RNG seed |
//! | `--list` | | `scenarios`: list the catalog and exit |
//! | `--scenario NAME` | | `scenarios`: run one named scenario |
//! | `--backends a,b` | | `scenarios`: substring filter on backends |
//! | `--json FILE` | | `scenarios`: also write the JSON to FILE |
//! | `--sweep` | `DLZ_SWEEP=1` | `scenarios`: expand the full sweep grid |
//! | `--policies a,b` | `DLZ_POLICIES` | choice-policy axis (`two-choice,sticky=16,...`) |
//! | `--mixes a,b` | `DLZ_MIXES` | op-mix axis (`50/50/0,90/0/10,...`) |
//!
//! Malformed flags are **usage errors**: [`Config::from_args`] prints
//! the message to stderr and exits with status 2 (it never panics);
//! [`Config::try_parse`] returns the error for tests and embedders.

use std::time::Duration;

use dlz_core::PolicyCfg;
use dlz_workload::OpMix;

/// Parsed configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Per-measurement duration.
    pub duration: Duration,
    /// TL2 object counts (fig1cde only).
    pub objects: Vec<usize>,
    /// Quick mode: shrink runs for smoke-testing. Only dimensions the
    /// user did **not** explicitly set are shrunk — `--quick
    /// --threads 8` runs 8 threads.
    pub quick: bool,
    /// Base seed for deterministic components.
    pub seed: u64,
    /// `scenarios`: list the catalog and exit.
    pub list: bool,
    /// `scenarios`: run only this named scenario.
    pub scenario: Option<String>,
    /// `scenarios`: case-insensitive substring filter on backend names.
    pub backends: Vec<String>,
    /// `scenarios`: also write the JSON report array to this file.
    pub json: Option<String>,
    /// `scenarios`: expand the full sweep grid (threads × policies ×
    /// mixes) instead of a single point per scenario.
    pub sweep: bool,
    /// Choice-policy axis values (`--policies two-choice,sticky=16`).
    pub policies: Vec<PolicyCfg>,
    /// Op-mix axis values (`--mixes 50/50/0,90/0/10`).
    pub mixes: Vec<OpMix>,
    /// Names of flags/envs explicitly set (so binaries can distinguish
    /// "defaulted" from "requested").
    set_flags: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        // Sweep 1..=2·hw in powers of two (oversubscription shows the
        // contention cliff even on small boxes).
        let mut threads = vec![1usize];
        while *threads.last().expect("non-empty") < 2 * hw {
            let next = threads.last().unwrap() * 2;
            threads.push(next);
        }
        Config {
            threads,
            duration: Duration::from_millis(300),
            objects: vec![10_000, 100_000, 1_000_000],
            quick: false,
            seed: 0xd15f1e1d,
            list: false,
            scenario: None,
            backends: Vec::new(),
            json: None,
            sweep: false,
            policies: Vec::new(),
            mixes: Vec::new(),
            set_flags: Vec::new(),
        }
    }
}

impl Config {
    /// Parses `std::env::args` plus environment fallbacks. A malformed
    /// flag is a usage error: the message goes to stderr and the
    /// process exits with status 2.
    pub fn from_args() -> Self {
        match Self::try_parse(std::env::args().skip(1).collect()) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("see crates/bench/src/config.rs for the flag table");
                std::process::exit(2);
            }
        }
    }

    /// `true` if the flag (or its env fallback) was explicitly set.
    pub fn was_set(&self, flag: &str) -> bool {
        self.set_flags.iter().any(|f| f == flag)
    }

    /// Parses an explicit argument vector, panicking on malformed input
    /// (tests and embedders that want the old behaviour; binaries use
    /// [`Config::from_args`], which exits 2 instead).
    pub fn parse(args: Vec<String>) -> Self {
        Self::try_parse(args).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Parses an explicit argument vector plus environment fallbacks,
    /// returning a usage-error message on malformed input.
    pub fn try_parse(args: Vec<String>) -> Result<Self, String> {
        let mut cfg = Config::default();
        // Environment first, flags override.
        if let Ok(v) = std::env::var("DLZ_THREADS") {
            cfg.threads = parse_list(&v, "DLZ_THREADS", "a thread count")?;
            if cfg.threads.contains(&0) {
                return Err("DLZ_THREADS values must be >= 1".into());
            }
            cfg.set_flags.push("threads".into());
        }
        if let Ok(v) = std::env::var("DLZ_DURATION_MS") {
            if let Ok(ms) = v.parse::<u64>() {
                cfg.duration = Duration::from_millis(ms);
                cfg.set_flags.push("duration-ms".into());
            }
        }
        if let Ok(v) = std::env::var("DLZ_OBJECTS") {
            cfg.objects = parse_list(&v, "DLZ_OBJECTS", "an object count")?;
            cfg.set_flags.push("objects".into());
        }
        if std::env::var("DLZ_QUICK").as_deref() == Ok("1") {
            cfg.quick = true;
        }
        if std::env::var("DLZ_SWEEP").as_deref() == Ok("1") {
            cfg.sweep = true;
        }
        if let Ok(v) = std::env::var("DLZ_SEED") {
            if let Ok(s) = v.parse::<u64>() {
                cfg.seed = s;
                cfg.set_flags.push("seed".into());
            }
        }
        if let Ok(v) = std::env::var("DLZ_POLICIES") {
            cfg.policies = parse_policies(&v)?;
            cfg.set_flags.push("policies".into());
        }
        if let Ok(v) = std::env::var("DLZ_MIXES") {
            cfg.mixes = parse_mixes(&v)?;
            cfg.set_flags.push("mixes".into());
        }
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--threads" => {
                    let v = need(&mut it, "--threads")?;
                    cfg.threads = parse_list(&v, "--threads", "a thread count")?;
                    if cfg.threads.contains(&0) {
                        return Err("--threads values must be >= 1".into());
                    }
                    cfg.set_flags.push("threads".into());
                }
                "--duration-ms" => {
                    let v = need(&mut it, "--duration-ms")?;
                    let ms: u64 = v.parse().map_err(|_| {
                        format!("--duration-ms expects a whole number of milliseconds, got '{v}'")
                    })?;
                    cfg.duration = Duration::from_millis(ms);
                    cfg.set_flags.push("duration-ms".into());
                }
                "--objects" => {
                    let v = need(&mut it, "--objects")?;
                    cfg.objects = parse_list(&v, "--objects", "an object count")?;
                    cfg.set_flags.push("objects".into());
                }
                "--seed" => {
                    let v = need(&mut it, "--seed")?;
                    cfg.seed = v
                        .parse()
                        .map_err(|_| format!("--seed expects an unsigned integer, got '{v}'"))?;
                    cfg.set_flags.push("seed".into());
                }
                "--quick" => cfg.quick = true,
                "--sweep" => cfg.sweep = true,
                "--list" => cfg.list = true,
                "--scenario" => {
                    let v = need(&mut it, "--scenario")?;
                    cfg.scenario = Some(v);
                }
                "--backends" => {
                    let v = need(&mut it, "--backends")?;
                    cfg.backends = v
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(|p| p.trim().to_lowercase())
                        .collect();
                }
                "--policies" => {
                    let v = need(&mut it, "--policies")?;
                    cfg.policies = parse_policies(&v)?;
                    cfg.set_flags.push("policies".into());
                }
                "--mixes" => {
                    let v = need(&mut it, "--mixes")?;
                    cfg.mixes = parse_mixes(&v)?;
                    cfg.set_flags.push("mixes".into());
                }
                "--json" => {
                    let v = need(&mut it, "--json")?;
                    cfg.json = Some(v);
                }
                other => {
                    return Err(format!(
                        "unknown flag {other}; see crates/bench/src/config.rs"
                    ))
                }
            }
        }
        // Quick mode only shrinks dimensions the user did NOT set
        // explicitly: `--quick --threads 8` runs 8 threads.
        if cfg.quick {
            if !cfg.was_set("duration-ms") {
                cfg.duration = cfg.duration.min(Duration::from_millis(50));
            }
            if !cfg.was_set("threads") {
                cfg.threads.truncate(2);
            }
            if !cfg.was_set("objects") {
                cfg.objects = cfg.objects.iter().map(|&o| o.min(10_000)).collect();
            }
        }
        Ok(cfg)
    }

    /// Scales a step count down in quick mode.
    pub fn steps(&self, full: u64) -> u64 {
        if self.quick {
            (full / 50).max(1_000)
        } else {
            full
        }
    }

    /// `true` if `backend_name` passes the `--backends` filter.
    pub fn backend_selected(&self, backend_name: &str) -> bool {
        if self.backends.is_empty() {
            return true;
        }
        let lower = backend_name.to_lowercase();
        self.backends.iter().any(|f| lower.contains(f))
    }
}

/// The next argument, or a usage error naming the flag that needed it.
fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_list<T: std::str::FromStr>(s: &str, flag: &str, what: &str) -> Result<Vec<T>, String> {
    let out: Result<Vec<T>, String> = s
        .split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| format!("{flag}: '{p}' is not {what}"))
        })
        .collect();
    let out = out?;
    if out.is_empty() {
        return Err(format!("{flag} needs at least one value"));
    }
    Ok(out)
}

/// Parses a comma-separated choice-policy list
/// (`two-choice,sticky=16,d-choice=4,adaptive=8`).
fn parse_policies(s: &str) -> Result<Vec<PolicyCfg>, String> {
    let out: Result<Vec<PolicyCfg>, String> = s
        .split(',')
        .filter(|p| !p.trim().is_empty())
        .map(PolicyCfg::parse)
        .collect();
    let out = out?;
    if out.is_empty() {
        return Err("--policies needs at least one policy".into());
    }
    Ok(out)
}

/// Parses a comma-separated op-mix list (`50/50/0,90/0/10`).
fn parse_mixes(s: &str) -> Result<Vec<OpMix>, String> {
    let out: Result<Vec<OpMix>, String> = s
        .split(',')
        .filter(|p| !p.trim().is_empty())
        .map(OpMix::parse)
        .collect();
    let out = out?;
    if out.is_empty() {
        return Err("--mixes needs at least one mix".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Config::default();
        assert!(!c.threads.is_empty());
        assert_eq!(c.threads[0], 1);
        assert!(c.duration >= Duration::from_millis(1));
        assert_eq!(c.objects.len(), 3);
        assert!(!c.list);
        assert!(!c.sweep);
        assert!(c.scenario.is_none());
        assert!(c.policies.is_empty());
        assert!(c.mixes.is_empty());
    }

    #[test]
    fn flags_override() {
        let c = Config::parse(vec![
            "--threads".into(),
            "1,3,5".into(),
            "--duration-ms".into(),
            "42".into(),
            "--objects".into(),
            "100".into(),
            "--seed".into(),
            "7".into(),
        ]);
        assert_eq!(c.threads, vec![1, 3, 5]);
        assert_eq!(c.duration, Duration::from_millis(42));
        assert_eq!(c.objects, vec![100]);
        assert_eq!(c.seed, 7);
        assert!(c.was_set("threads"));
        assert!(c.was_set("duration-ms"));
        assert!(!c.was_set("nonsense"));
    }

    #[test]
    fn quick_mode_shrinks_unset_dimensions() {
        let c = Config::parse(vec!["--quick".into()]);
        assert!(c.quick);
        assert!(c.duration <= Duration::from_millis(50));
        assert!(c.threads.len() <= 2);
        assert_eq!(c.steps(1_000_000), 20_000);
    }

    #[test]
    fn quick_mode_respects_explicit_overrides() {
        // Regression: `--quick --threads 8` used to clamp to 2 threads
        // because the quick shrink ran after the override.
        let c = Config::parse(vec!["--quick".into(), "--threads".into(), "8".into()]);
        assert_eq!(
            c.threads,
            vec![8],
            "explicit --threads must survive --quick"
        );
        // Order must not matter either.
        let c = Config::parse(vec!["--threads".into(), "4,8".into(), "--quick".into()]);
        assert_eq!(c.threads, vec![4, 8]);
        let c = Config::parse(vec!["--quick".into(), "--duration-ms".into(), "400".into()]);
        assert_eq!(c.duration, Duration::from_millis(400));
        let c = Config::parse(vec!["--quick".into(), "--objects".into(), "500000".into()]);
        assert_eq!(c.objects, vec![500_000]);
    }

    #[test]
    fn scenario_flags_parse() {
        let c = Config::parse(vec![
            "--list".into(),
            "--scenario".into(),
            "queue-balanced".into(),
            "--backends".into(),
            "MultiQueue,coarse".into(),
            "--json".into(),
            "out.json".into(),
        ]);
        assert!(c.list);
        assert_eq!(c.scenario.as_deref(), Some("queue-balanced"));
        assert_eq!(c.json.as_deref(), Some("out.json"));
        assert!(c.backend_selected("multiqueue-heap(m=8,strict)"));
        assert!(c.backend_selected("coarse-pq"));
        assert!(!c.backend_selected("stm-exact(slots=65536)"));
    }

    #[test]
    fn sweep_axes_parse() {
        let c = Config::parse(vec![
            "--sweep".into(),
            "--policies".into(),
            "two-choice,sticky=16,adaptive=8".into(),
            "--mixes".into(),
            "50/50/0,90/0/10".into(),
        ]);
        assert!(c.sweep);
        assert_eq!(
            c.policies,
            vec![
                PolicyCfg::TwoChoice,
                PolicyCfg::Sticky { ops: 16 },
                PolicyCfg::AdaptiveSticky { s_max: 8 },
            ]
        );
        assert_eq!(c.mixes, vec![OpMix::new(50, 50, 0), OpMix::new(90, 0, 10)]);
        assert!(c.was_set("policies"));
        assert!(c.was_set("mixes"));
    }

    #[test]
    fn empty_backend_filter_selects_all() {
        let c = Config::parse(vec![]);
        assert!(c.backend_selected("anything"));
    }

    #[test]
    fn malformed_values_are_usage_errors_not_panics() {
        // Regression: `--duration-ms abc` used to panic with a raw
        // `expect("ms")`.
        let e = Config::try_parse(vec!["--duration-ms".into(), "abc".into()]).unwrap_err();
        assert!(e.contains("--duration-ms"), "{e}");
        assert!(e.contains("abc"), "{e}");
        let e = Config::try_parse(vec!["--seed".into(), "xyz".into()]).unwrap_err();
        assert!(e.contains("--seed"), "{e}");
        let e = Config::try_parse(vec!["--threads".into(), "1,two".into()]).unwrap_err();
        assert!(e.contains("--threads"), "{e}");
        let e = Config::try_parse(vec!["--threads".into(), "0".into()]).unwrap_err();
        assert!(e.contains(">= 1"), "{e}");
        let e = Config::try_parse(vec!["--policies".into(), "frobnicate".into()]).unwrap_err();
        assert!(e.contains("frobnicate"), "{e}");
        let e = Config::try_parse(vec!["--mixes".into(), "50/50".into()]).unwrap_err();
        assert!(e.contains("50/50"), "{e}");
    }

    #[test]
    fn trailing_flags_are_usage_errors_not_panics() {
        // Regression: a trailing `--threads` used to panic with
        // `expect("--threads needs a value")`.
        for flag in [
            "--threads",
            "--duration-ms",
            "--objects",
            "--seed",
            "--scenario",
            "--backends",
            "--policies",
            "--mixes",
            "--json",
        ] {
            let e = Config::try_parse(vec![flag.into()]).unwrap_err();
            assert_eq!(e, format!("{flag} needs a value"));
        }
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = Config::parse(vec!["--bogus".into()]);
    }
}
