//! Timed multi-threaded throughput measurement — now a thin façade over
//! the workload subsystem.
//!
//! The barrier/stop-flag discipline that used to live here moved to
//! [`dlz_workload::driver`] so the scenario engine and the figure
//! binaries share one implementation; this module re-exports it
//! unchanged for the existing binaries. New code should prefer
//! declarative scenarios ([`dlz_workload::Scenario`] +
//! [`dlz_workload::engine::run`]) over hand-rolled loops.

pub use dlz_workload::driver::{count_until_stopped, run_throughput, Throughput};
