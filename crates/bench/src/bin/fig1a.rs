//! **Figure 1(a)** — Scalability of the concurrent counter for
//! different values of the ratio C between counters and threads.
//!
//! The paper plots increment throughput vs thread count for several
//! C = m/n, with the single fetch-and-add counter as the implicit
//! baseline: FAA throughput *decays* with threads (cache-line
//! ping-pong) while the MultiCounter scales, more steeply for larger C.
//!
//! The thread axis is a declarative [`SweepSpec`] grid driven through
//! `engine::run_sweep`: one update-only closed-loop cell per thread
//! count, six backends per cell (the factory sizes sharded/MultiCounter
//! backends from the cell's thread count). The engine also checks the
//! conservation law (no increment lost) on every cell.
//!
//! ```text
//! cargo run -p dlz-bench --release --bin fig1a
//! ```

use dlz_bench::tables::f3;
use dlz_bench::{Config, Table};
use dlz_workload::backends::CounterBackend;
use dlz_workload::{engine, Backend, Budget, Family, OpMix, Scenario, SweepSpec};

fn main() {
    let cfg = Config::from_args();
    let ratios = [1usize, 2, 4, 8];

    println!("Figure 1(a): MultiCounter increment throughput (Mops/s) vs threads");
    println!(
        "duration per point: {:?}; ratios C = m/n: {:?}; baseline: single FAA counter\n",
        cfg.duration, ratios
    );

    let base = Scenario::builder("fig1a", Family::Counter)
        .about("update-only closed loop")
        .budget(Budget::Timed(cfg.duration))
        .mix(OpMix::new(100, 0, 0))
        .seed(cfg.seed)
        .quality_every(0)
        .build();
    let spec = SweepSpec::new(base).threads(&cfg.threads);

    let backends_per_cell = 2 + ratios.len();
    let reports = engine::run_sweep(&spec, |cell| {
        let n = cell.scenario.threads;
        let mut backends: Vec<Box<dyn Backend>> = vec![
            Box::new(CounterBackend::exact()),
            Box::new(CounterBackend::sharded(n)),
        ];
        backends.extend(
            ratios
                .iter()
                .map(|&c| Box::new(CounterBackend::multicounter(c * n)) as Box<dyn Backend>),
        );
        backends
    });

    let mut headers = vec![
        "threads".to_string(),
        "exact(FAA)".to_string(),
        "sharded".to_string(),
    ];
    headers.extend(ratios.iter().map(|c| format!("C={c}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for chunk in reports.chunks(backends_per_cell) {
        let mut cells = vec![chunk[0].threads.to_string()];
        for report in chunk {
            assert!(
                report.verified(),
                "{}: {}",
                report.backend,
                report.verify_error.as_deref().unwrap_or("?")
            );
            cells.push(f3(report.mops()));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "\nExpected shape (paper): FAA flat-to-decreasing; MultiCounter rising with n,\nhigher C => less contention per cell => higher throughput."
    );
}
