//! **Figure 1(a)** — Scalability of the concurrent counter for
//! different values of the ratio C between counters and threads.
//!
//! The paper plots increment throughput vs thread count for several
//! C = m/n, with the single fetch-and-add counter as the implicit
//! baseline: FAA throughput *decays* with threads (cache-line
//! ping-pong) while the MultiCounter scales, more steeply for larger C.
//!
//! ```text
//! cargo run -p dlz-bench --release --bin fig1a
//! ```

use dlz_bench::tables::f3;
use dlz_bench::{count_until_stopped, run_throughput, Config, Table};
use dlz_core::rng::Xoshiro256;
use dlz_core::{ExactCounter, MultiCounter, RelaxedCounter, ShardedCounter};

fn main() {
    let cfg = Config::from_args();
    let ratios = [1usize, 2, 4, 8];

    println!("Figure 1(a): MultiCounter increment throughput (Mops/s) vs threads");
    println!(
        "duration per point: {:?}; ratios C = m/n: {:?}; baseline: single FAA counter\n",
        cfg.duration, ratios
    );

    let mut headers = vec![
        "threads".to_string(),
        "exact(FAA)".to_string(),
        "sharded".to_string(),
    ];
    headers.extend(ratios.iter().map(|c| format!("C={c}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for &n in &cfg.threads {
        let mut cells = vec![n.to_string()];

        // Baseline 1: one fetch-and-add word shared by all threads.
        let exact = ExactCounter::new();
        let t = run_throughput(n, cfg.duration, |_t| {
            let c = &exact;
            move |stop: &std::sync::atomic::AtomicBool| count_until_stopped(stop, || c.increment())
        });
        cells.push(f3(t.mops()));

        // Baseline 2: per-thread stripes (perfect increment scaling,
        // but no bounded-error single-sample read — see ShardedCounter
        // docs; the MultiCounter's read guarantee is what it buys with
        // its extra loads).
        let sharded = ShardedCounter::new(n);
        let t = run_throughput(n, cfg.duration, |tid| {
            let c = &sharded;
            move |stop: &std::sync::atomic::AtomicBool| {
                count_until_stopped(stop, || c.increment_stripe(tid))
            }
        });
        cells.push(f3(t.mops()));

        // MultiCounter with m = C·n cells.
        for &c_ratio in &ratios {
            let mc = MultiCounter::new(c_ratio * n);
            let seed = cfg.seed;
            let t = run_throughput(n, cfg.duration, |tid| {
                let mc = &mc;
                let mut rng = Xoshiro256::new(seed ^ (tid as u64) << 17);
                move |stop: &std::sync::atomic::AtomicBool| {
                    count_until_stopped(stop, || mc.increment_with(&mut rng))
                }
            });
            // Sanity: increments are never lost.
            assert_eq!(mc.read_exact(), t.total_ops, "lost increments");
            cells.push(f3(t.mops()));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "\nExpected shape (paper): FAA flat-to-decreasing; MultiCounter rising with n,\nhigher C => less contention per cell => higher throughput."
    );
}
