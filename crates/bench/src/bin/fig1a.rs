//! **Figure 1(a)** — Scalability of the concurrent counter for
//! different values of the ratio C between counters and threads.
//!
//! The paper plots increment throughput vs thread count for several
//! C = m/n, with the single fetch-and-add counter as the implicit
//! baseline: FAA throughput *decays* with threads (cache-line
//! ping-pong) while the MultiCounter scales, more steeply for larger C.
//!
//! A thin wrapper over the workload engine: one update-only closed-loop
//! scenario per (thread count, backend) cell. The engine also checks
//! the conservation law (no increment lost) on every cell.
//!
//! ```text
//! cargo run -p dlz-bench --release --bin fig1a
//! ```

use dlz_bench::tables::f3;
use dlz_bench::{Config, Table};
use dlz_workload::backends::CounterBackend;
use dlz_workload::{engine, Backend, Budget, Family, OpMix, Scenario};

fn main() {
    let cfg = Config::from_args();
    let ratios = [1usize, 2, 4, 8];

    println!("Figure 1(a): MultiCounter increment throughput (Mops/s) vs threads");
    println!(
        "duration per point: {:?}; ratios C = m/n: {:?}; baseline: single FAA counter\n",
        cfg.duration, ratios
    );

    let mut headers = vec![
        "threads".to_string(),
        "exact(FAA)".to_string(),
        "sharded".to_string(),
    ];
    headers.extend(ratios.iter().map(|c| format!("C={c}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for &n in &cfg.threads {
        let scenario = Scenario::builder("fig1a", Family::Counter)
            .about("update-only closed loop")
            .threads(n)
            .budget(Budget::Timed(cfg.duration))
            .mix(OpMix::new(100, 0, 0))
            .seed(cfg.seed)
            .quality_every(0)
            .build();

        let mut backends: Vec<CounterBackend> =
            vec![CounterBackend::exact(), CounterBackend::sharded(n)];
        backends.extend(ratios.iter().map(|&c| CounterBackend::multicounter(c * n)));

        let mut cells = vec![n.to_string()];
        for backend in &backends {
            let report = engine::run(&scenario, backend);
            assert!(
                report.verified(),
                "{}: {}",
                backend.name(),
                report.verify_error.as_deref().unwrap_or("?")
            );
            cells.push(f3(report.mops()));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "\nExpected shape (paper): FAA flat-to-decreasing; MultiCounter rising with n,\nhigher C => less contention per cell => higher throughput."
    );
}
