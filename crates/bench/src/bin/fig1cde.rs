//! **Figures 1(c), 1(d), 1(e)** — the TL2 benchmark: commit throughput
//! vs threads for M transactional objects (1M / 100K / 10K in the
//! paper), baseline TL2 (FAA clock) vs TL2 with MultiCounter relaxed
//! clock and Δ future-writing.
//!
//! Workload (verbatim from Section 8): transactions pick 2 array
//! locations uniformly at random, increment both, commit. Correctness
//! is verified after every run by checking the array sum equals
//! 2 × committed transactions — the same check the paper used. The
//! whole objects × threads grid is **one** [`SweepSpec`]: the object
//! count is the key-distribution axis, threads the inner axis, and the
//! backend factory builds a fresh exact/relaxed STM pair per cell so
//! version clocks and arrays start clean.
//!
//! ```text
//! cargo run -p dlz-bench --release --bin fig1cde -- --objects 1000000
//! cargo run -p dlz-bench --release --bin fig1cde            # all three sizes
//! ```

use dlz_bench::tables::f3;
use dlz_bench::{Config, Table};
use dlz_workload::backends::StmBackend;
use dlz_workload::{engine, Backend, Budget, Dist, Family, OpMix, RunReport, Scenario, SweepSpec};

fn cell(report: &RunReport, backend_name: &str) -> (f64, f64, bool) {
    if let Some(err) = &report.verify_error {
        eprintln!("SAFETY VIOLATION: {backend_name}: {err}");
    }
    let abort_rate = report.quality.get("abort_rate").unwrap_or(f64::NAN);
    (report.mops(), abort_rate, report.verified())
}

fn main() {
    let cfg = Config::from_args();
    println!("Figures 1(c)-(e): TL2 array benchmark — 2 random increments per txn");
    println!(
        "duration per point: {:?}; objects sweep: {:?}\n",
        cfg.duration, cfg.objects
    );

    let base = Scenario::builder("fig1cde", Family::Stm)
        .about("2 uniform increments per txn, update-only")
        .budget(Budget::Timed(cfg.duration))
        .mix(OpMix::new(100, 0, 0))
        .seed(cfg.seed)
        .build();
    // The object count is the key-space axis; threads nest inside it,
    // so the reports group per figure naturally.
    let keys_axis: Vec<Dist> = cfg
        .objects
        .iter()
        .map(|&o| Dist::Uniform { n: o as u64 })
        .collect();
    let spec = SweepSpec::new(base).keys(&keys_axis).threads(&cfg.threads);

    let reports = engine::run_sweep(&spec, |cell| {
        let objects = match cell.scenario.keys {
            Dist::Uniform { n } => n as usize,
            ref other => unreachable!("fig1cde keys axis is uniform, got {other:?}"),
        };
        let n = cell.scenario.threads;
        // Clock sizing inside StmBackend::relaxed matches the old
        // hand-rolled harness: m = 2·n cells, κ = 3 margin (larger
        // m/κ inflate Δ and with it the future-window abort cost —
        // see the clock_tuning ablation binary).
        vec![
            Box::new(StmBackend::exact(objects)) as Box<dyn Backend>,
            Box::new(StmBackend::relaxed(objects, n)) as Box<dyn Backend>,
        ]
    });

    let mut all_verified = true;
    let per_cell = 2;
    let per_figure = cfg.threads.len() * per_cell;
    for (k, &objects) in cfg.objects.iter().enumerate() {
        let fig = match objects {
            1_000_000 => "Figure 1(c), 1M objects",
            100_000 => "Figure 1(d), 100K objects",
            10_000 => "Figure 1(e), 10K objects",
            _ => "custom object count",
        };
        println!("== {fig} (M = {objects}) ==");
        let mut table = Table::new(&[
            "threads",
            "tl2-exact Mtx/s",
            "abort%",
            "tl2-relaxed Mtx/s",
            "abort%",
            "relaxed/exact",
            "verified",
        ]);
        for pair in reports[k * per_figure..(k + 1) * per_figure].chunks(per_cell) {
            let (ex_mops, ex_abort, ex_ok) = cell(&pair[0], &pair[0].backend);
            let (rx_mops, rx_abort, rx_ok) = cell(&pair[1], &pair[1].backend);
            all_verified &= ex_ok && rx_ok;
            table.row(vec![
                pair[0].threads.to_string(),
                f3(ex_mops),
                format!("{:.1}", ex_abort * 100.0),
                f3(rx_mops),
                format!("{:.1}", rx_abort * 100.0),
                f3(rx_mops / ex_mops),
                format!("{}", ex_ok && rx_ok),
            ]);
        }
        table.print();
        println!();
    }
    println!("Expected shape (paper): at 1M/100K objects the relaxed clock scales ~linearly");
    println!("(up to >3x the baseline at high thread counts); at 10K objects writes are frequent");
    println!(
        "enough that future-stamped objects trigger heavy aborts and the advantage collapses."
    );
    if !all_verified {
        std::process::exit(1);
    }
}
