//! **Figures 1(c), 1(d), 1(e)** — the TL2 benchmark: commit throughput
//! vs threads for M transactional objects (1M / 100K / 10K in the
//! paper), baseline TL2 (FAA clock) vs TL2 with MultiCounter relaxed
//! clock and Δ future-writing.
//!
//! Workload (verbatim from Section 8): transactions pick 2 array
//! locations uniformly at random, increment both, commit. Correctness
//! is verified after every run by checking the array sum equals
//! 2 × committed transactions — the same check the paper used.
//!
//! ```text
//! cargo run -p dlz-bench --release --bin fig1cde -- --objects 1000000
//! cargo run -p dlz-bench --release --bin fig1cde            # all three sizes
//! ```

use std::sync::atomic::AtomicBool;

use dlz_bench::tables::f3;
use dlz_bench::{run_throughput, Config, Table};
use dlz_core::rng::{Rng64, Xoshiro256};
use dlz_core::MultiCounter;
use dlz_stm::{ClockStrategy, ExactClock, RelaxedClock, Tl2};

/// One timed run; returns (commits/s in M/s, abort rate, safety ok).
fn run_tl2<C: ClockStrategy>(stm: &Tl2<C>, threads: usize, cfg: &Config) -> (f64, f64, bool) {
    use std::sync::Mutex;
    let stats_pool = Mutex::new(Vec::new());
    let objects = stm.array().len() as u64;
    let before_sum = stm.array().sum_quiescent();

    let t = run_throughput(threads, cfg.duration, |tid| {
        let stm = &stm;
        let stats_pool = &stats_pool;
        let mut rng = Xoshiro256::new(cfg.seed ^ ((tid as u64) << 24));
        move |stop: &AtomicBool| {
            let mut handle = stm.thread();
            let mut n = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let i = rng.bounded(objects) as usize;
                let j = rng.bounded(objects) as usize;
                handle.run(|tx| {
                    tx.add(i, 1)?;
                    tx.add(j, 1)?;
                    Ok(())
                });
                n += 1;
            }
            stats_pool.lock().unwrap().push(handle.stats());
            n
        }
    });

    let mut merged = dlz_stm::TxStats::default();
    for s in stats_pool.into_inner().unwrap() {
        merged.merge(&s);
    }
    let after_sum = stm.array().sum_quiescent();
    // Each committed transaction adds exactly 2 (i == j adds 2 to one slot).
    let safety_ok = after_sum - before_sum == 2 * merged.commits as u128
        && merged.commits == t.total_ops
        && !stm.array().any_locked();
    (t.mops(), merged.abort_rate(), safety_ok)
}

fn main() {
    let cfg = Config::from_args();
    println!("Figures 1(c)-(e): TL2 array benchmark — 2 random increments per txn");
    println!(
        "duration per point: {:?}; objects sweep: {:?}\n",
        cfg.duration, cfg.objects
    );

    for &objects in &cfg.objects {
        let fig = match objects {
            1_000_000 => "Figure 1(c), 1M objects",
            100_000 => "Figure 1(d), 100K objects",
            10_000 => "Figure 1(e), 10K objects",
            _ => "custom object count",
        };
        println!("== {fig} (M = {objects}) ==");
        let mut table = Table::new(&[
            "threads",
            "tl2-exact Mtx/s",
            "abort%",
            "tl2-relaxed Mtx/s",
            "abort%",
            "relaxed/exact",
            "verified",
        ]);
        for &n in &cfg.threads {
            // Fresh STM per point so version clocks/arrays start clean.
            let exact = Tl2::new(objects, ExactClock::new());
            let (ex_mops, ex_abort, ex_ok) = run_tl2(&exact, n, &cfg);

            // Clock sizing: m = 2·n cells with a κ = 3 margin. Larger
            // m/κ inflate Δ and with it the future-window abort cost
            // quadratically — see the clock_tuning ablation binary.
            let m = (2 * n).max(4);
            let delta = RelaxedClock::suggested_delta(m, 3.0);
            let relaxed = Tl2::new(objects, RelaxedClock::new(MultiCounter::new(m), delta));
            let (rx_mops, rx_abort, rx_ok) = run_tl2(&relaxed, n, &cfg);

            table.row(vec![
                n.to_string(),
                f3(ex_mops),
                format!("{:.1}", ex_abort * 100.0),
                f3(rx_mops),
                format!("{:.1}", rx_abort * 100.0),
                f3(rx_mops / ex_mops),
                format!("{}", ex_ok && rx_ok),
            ]);
        }
        table.print();
        println!();
    }
    println!("Expected shape (paper): at 1M/100K objects the relaxed clock scales ~linearly");
    println!("(up to >3x the baseline at high thread counts); at 10K objects writes are frequent");
    println!(
        "enough that future-stamped objects trigger heavy aborts and the advantage collapses."
    );
}
