//! **Future-work probe: the m-vs-n gap** (paper's Section 9).
//!
//! The analysis needs `m ≥ C·n` for a large constant C, and the paper
//! conjectures the process may break down for some m/n ("it is
//! interesting to also ask whether the process will preserve its
//! properties even under high contention, e.g. m < n"). This binary
//! sweeps the ratio from the proven regime down into oversubscription
//! (m < n) under the worst schedule we have (batch stampede, which
//! resets the adversary's information every n updates), reporting the
//! gap normalized by ln m.
//!
//! ```text
//! cargo run -p dlz-bench --release --bin gap_vs_ratio
//! ```

use dlz_bench::tables::f3;
use dlz_bench::{Config, Table};
use dlz_sim::{AsyncTwoChoice, BallsProcess, Schedule};

fn main() {
    let cfg = Config::from_args();
    let m = 256usize;
    let steps = cfg.steps(2_000_000);
    let lnm = (m as f64).ln();

    println!("Section 9 probe: gap vs ratio m/n (m = {m}, stampede schedule, {steps} steps)\n");
    let mut table = Table::new(&["m/n", "n", "max_gap", "gap/ln(m)", "wrong-bin %"]);

    // From the proven regime (m = 16n) down to heavy oversubscription
    // (m = n/8, i.e. staleness window 8x the number of bins).
    for (num, den) in [
        (16usize, 1usize),
        (8, 1),
        (4, 1),
        (2, 1),
        (1, 1),
        (1, 2),
        (1, 4),
        (1, 8),
    ] {
        let n = m * den / num;
        let mut p = AsyncTwoChoice::new(m, Schedule::BatchStampede { n }, cfg.seed);
        let mut max_gap: f64 = 0.0;
        let chunk = 10_000;
        let mut done = 0;
        while done < steps {
            p.run(chunk.min(steps - done));
            done += chunk;
            max_gap = max_gap.max(p.bins().gap());
        }
        table.row(vec![
            format!("{num}/{den}"),
            n.to_string(),
            f3(max_gap),
            f3(max_gap / lnm),
            format!("{:.2}", 100.0 * p.wrong_choices() as f64 / steps as f64),
        ]);
    }
    table.print();
    println!("\nReading: the theorem covers the top rows (m >= Cn). The paper conjectures");
    println!("degradation for small m/n; whether gap/ln(m) stays O(1) below 1/1 is exactly");
    println!("the open question — this table is evidence, not proof.");
}
