//! **histcheck** — offline replay of serialized history artifacts.
//!
//! Loads `.histjsonl` artifacts (files, or directories walked
//! recursively) written by `scenarios --export-histories`, re-runs the
//! exact distributional-linearizability check on each, and reports the
//! verdict together with the rank-vs-envelope cost distribution —
//! decoupling expensive checking from traffic generation, so a grid of
//! policy-tagged histories can be audited long after the sweep that
//! produced it (or shipped to an external monitor).
//!
//! ```text
//! cargo run --release -p dlz-bench --bin scenarios -- --quick --sweep \
//!     --scenario queue-balanced-audit --threads 1,2 \
//!     --policies two-choice,sticky=4 --export-histories hist/
//! cargo run --release -p dlz-bench --bin histcheck -- hist/
//! ```
//!
//! One JSON object per artifact goes to stdout (an array; `--json FILE`
//! also writes it to a file); the human-readable verdict table goes to
//! stderr. Because the replay is the same code path the engine ran
//! in-process, the summary statistics reproduce the exported run's
//! `quality` block bit for bit.
//!
//! Exit status: `0` all artifacts linearizable, `1` at least one
//! verdict failed (unmappable operation, broken stamp discipline, or a
//! real-time violation), `2` an artifact could not be loaded (the
//! error names the file and the 1-based line of the damage) or the
//! usage was wrong. An exceeded envelope is *reported* (`within_bound:
//! false` plus a stderr warning) but is not a verdict failure — the
//! in-process engine treats it as data too, and some baselines (e.g.
//! the sharded counter, which has no bounded single-sample read) sit
//! outside the two-choice bound by design.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use dlz_bench::Table;
use dlz_core::spec::{replay_artifact, HistoryArtifact, ReplayOutcome};
use dlz_workload::backends::counter::DEVIATION_BOUND_C;
use dlz_workload::backends::queue::RANK_BOUND_C;
use dlz_workload::{json, QualitySummary};

fn usage() -> ! {
    eprintln!("usage: histcheck [--json FILE] <artifact.histjsonl | directory>...");
    std::process::exit(2);
}

fn fail_load(path: &Path, msg: impl std::fmt::Display) -> ! {
    eprintln!("histcheck: {}: {msg}", path.display());
    std::process::exit(2);
}

/// Collects every `.histjsonl` under the given paths (files verbatim,
/// directories recursively), sorted for deterministic output.
fn collect(paths: &[PathBuf]) -> Vec<PathBuf> {
    fn walk(path: &Path, out: &mut Vec<PathBuf>) {
        // Never follow symlinks inside a walk: a cycle in the artifact
        // tree must not overflow the stack (failures here are loud
        // exits, never aborts).
        if path
            .symlink_metadata()
            .map(|m| m.file_type().is_symlink())
            .unwrap_or(false)
        {
            return;
        }
        if path.is_dir() {
            let entries = match std::fs::read_dir(path) {
                Ok(e) => e,
                Err(e) => fail_load(path, format!("cannot read directory: {e}")),
            };
            for entry in entries {
                match entry {
                    Ok(e) => walk(&e.path(), out),
                    Err(e) => fail_load(path, format!("cannot read directory entry: {e}")),
                }
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("histjsonl") {
            out.push(path.to_path_buf());
        }
    }
    let mut out = Vec::new();
    for p in paths {
        if !p.exists() {
            fail_load(p, "no such file or directory");
        }
        if p.is_file() {
            // Explicitly named files are checked whatever their
            // extension; filtering applies to directory walks only.
            out.push(p.clone());
        } else {
            walk(p, &mut out);
        }
    }
    out.sort();
    out.dedup();
    out
}

/// The kind-specific metric name, absolute envelope and pass/fail —
/// mirroring the in-process quality computation exactly.
fn envelope(a: &HistoryArtifact, s: &QualitySummary) -> (&'static str, f64, bool) {
    match a.kind() {
        // An infinite factor means the policy makes no envelope claim
        // (the engine omits `within_policy_bound` there too): nothing
        // to exceed, so the artifact passes on its verdict alone.
        "pq" if a.envelope_factor.is_finite() => {
            let bound = RANK_BOUND_C * a.envelope_factor * a.queues.unwrap_or(0) as f64;
            // Vacuous passes are failures, as in the engine: with no
            // rank samples the envelope verified nothing.
            let within = s.count > 0 && s.mean <= bound;
            ("dequeue_rank", bound, within)
        }
        "pq" => ("dequeue_rank", f64::INFINITY, true),
        "counter" => {
            let bound = DEVIATION_BOUND_C * a.envelope_factor;
            let within = if a.envelope_factor == 0.0 {
                s.max == 0.0
            } else {
                s.max <= bound
            };
            ("read_deviation", bound, within)
        }
        _ => ("dequeue_position", f64::INFINITY, true),
    }
}

/// Log₂-bucketed histogram of the metric costs: `[le, count]` pairs
/// where `le` is the bucket's inclusive upper bound (0, 1, 2, 4, ...).
fn cost_histogram(costs: &[f64]) -> Vec<(u64, u64)> {
    let mut buckets: Vec<u64> = Vec::new();
    for &c in costs {
        let idx = if c <= 0.0 {
            0
        } else {
            (c.max(1.0)).log2().ceil() as usize + 1
        };
        if buckets.len() <= idx {
            buckets.resize(idx + 1, 0);
        }
        buckets[idx] += 1;
    }
    buckets
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
        .collect()
}

struct Checked {
    path: PathBuf,
    artifact: HistoryArtifact,
    outcome: ReplayOutcome,
    summary: QualitySummary,
    metric: &'static str,
    bound: f64,
    within: bool,
    hist: Vec<(u64, u64)>,
}

fn check(path: PathBuf) -> Checked {
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => fail_load(&path, e),
    };
    let artifact = match HistoryArtifact::from_json_lines(&text) {
        Ok(a) => a,
        // The loud failure mode the format is designed for: file + line.
        Err(e) => fail_load(&path, e),
    };
    let outcome = replay_artifact(&artifact);
    let costs = artifact.metric_costs(&outcome);
    let summary = QualitySummary::from_samples(&costs);
    let (metric, bound, within) = envelope(&artifact, &summary);
    let hist = cost_histogram(&costs);
    Checked {
        path,
        artifact,
        outcome,
        summary,
        metric,
        bound,
        within,
        hist,
    }
}

fn to_json(c: &Checked) -> String {
    let a = &c.artifact;
    let mut o = json::JsonObject::new();
    o.str("path", &c.path.display().to_string())
        .str("kind", a.kind())
        .str("policy", &a.policy)
        .f64("envelope_factor", a.envelope_factor)
        .u64("threads", a.threads as u64)
        .u64("events", a.len() as u64);
    if let Some(q) = a.queues {
        o.u64("queues", q as u64);
    }
    if let Some(s) = &a.source {
        o.str("source", s);
    }
    if let Some(cell) = &a.cell {
        o.str("cell", cell);
    }
    if !a.grid.is_empty() {
        o.obj("grid", |g| {
            for (k, v) in &a.grid {
                g.str(k, v);
            }
        });
    }
    o.str("metric", c.metric)
        .bool("linearizable", c.outcome.is_linearizable())
        .bool("well_formed", c.outcome.well_formed)
        .bool("real_time_ok", c.outcome.real_time_ok)
        .u64("unmappable", c.outcome.unmappable.len() as u64)
        .obj("summary", |s| {
            s.u64("count", c.summary.count)
                .f64("mean", c.summary.mean)
                .f64("p50", c.summary.p50)
                .f64("p99", c.summary.p99)
                .f64("max", c.summary.max);
        })
        .f64("bound", c.bound)
        .bool("within_bound", c.within);
    let hist: Vec<String> = c.hist.iter().map(|(le, n)| format!("[{le},{n}]")).collect();
    o.raw("cost_hist", &json::array(&hist));
    o.finish()
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(v) => json_path = Some(v),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => usage(),
            other => paths.push(PathBuf::from(other)),
        }
    }
    if paths.is_empty() {
        usage();
    }
    let files = collect(&paths);
    if files.is_empty() {
        eprintln!("histcheck: no .histjsonl artifacts under the given paths");
        std::process::exit(2);
    }

    let checked: Vec<Checked> = files.into_iter().map(check).collect();

    let mut table = Table::new(&[
        "artifact", "kind", "policy", "events", "mean", "p99", "max", "bound", "within", "verdict",
    ]);
    for c in &checked {
        let key = c
            .artifact
            .cell
            .clone()
            .unwrap_or_else(|| c.path.display().to_string());
        table.row(vec![
            key,
            c.artifact.kind().to_string(),
            c.artifact.policy.clone(),
            c.artifact.len().to_string(),
            format!("{:.3}", c.summary.mean),
            format!("{:.1}", c.summary.p99),
            format!("{:.1}", c.summary.max),
            if c.bound.is_finite() {
                format!("{:.1}", c.bound)
            } else {
                "-".to_string()
            },
            c.within.to_string(),
            if c.outcome.is_linearizable() {
                "linearizable".to_string()
            } else {
                "FAILED".to_string()
            },
        ]);
    }

    let rendered: Vec<String> = checked.iter().map(to_json).collect();
    let array = json::array(&rendered);
    println!("{array}");
    if let Some(path) = &json_path {
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| fail_load(Path::new(path), format!("cannot create: {e}")));
        f.write_all(array.as_bytes()).expect("write --json file");
        f.write_all(b"\n").expect("write --json file");
        eprintln!("wrote {} verdicts to {path}", checked.len());
    }

    eprintln!();
    eprint!("{}", table.render());
    let mut failed = false;
    for c in &checked {
        if !c.outcome.is_linearizable() {
            failed = true;
            eprintln!(
                "VERDICT FAILED: {}: well_formed={} real_time_ok={} unmappable={}",
                c.path.display(),
                c.outcome.well_formed,
                c.outcome.real_time_ok,
                c.outcome.unmappable.len()
            );
        } else if !c.within {
            // Reported, not fatal: the envelope is a quality statement,
            // and the in-process engine treats it as data too.
            eprintln!(
                "note: envelope exceeded: {}: {} mean {:.3} / max {:.1} vs bound {:.1}",
                c.path.display(),
                c.metric,
                c.summary.mean,
                c.summary.max,
                c.bound
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
