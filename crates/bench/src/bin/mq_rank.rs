//! **Theorem 7.1 validation** — MultiQueue dequeue rank quality.
//!
//! Two measurements:
//!
//! 1. The *sequential rank process* (reference \[3\]): prefill b = 100·m
//!    labels, remove half, report mean / p99 / max rank — expected
//!    O(m), O(m log m).
//! 2. The *concurrent MultiQueue*: producer/consumer threads with
//!    stamped operations; the recorded history is replayed through the
//!    distributional-linearizability checker (Definition 5.2) and the
//!    empirical rank-cost distribution is reported. This is the
//!    end-to-end guarantee the paper's framework promises.
//!
//! ```text
//! cargo run -p dlz-bench --release --bin mq_rank
//! ```

use std::sync::atomic::Ordering;
use std::sync::Mutex;

use dlz_bench::tables::f3;
use dlz_bench::{Config, Table};
use dlz_core::rng::Xoshiro256;
use dlz_core::spec::{check_distributional, History, PqOp, PqSpec, StampClock, ThreadLog};
use dlz_core::MultiQueue;
use dlz_sim::{QueueProcess, Summary};

fn sequential_section(cfg: &Config) {
    println!("-- sequential rank process (reference [3]) --");
    let mut table = Table::new(&["m", "staleness", "mean_rank", "p99", "max", "m", "m·ln(m)"]);
    for &m in &[8usize, 16, 64, 256] {
        for staleness in [0usize, m / 8] {
            let b = 100 * m;
            let mut p = QueueProcess::new(m, b, staleness.max(1), cfg.seed ^ m as u64);
            for _ in 0..b {
                p.insert();
            }
            let mut ranks = Vec::with_capacity(b / 2);
            for _ in 0..(b / 2) {
                let (_, rank) = p.remove_retrying(staleness).expect("non-empty");
                ranks.push(rank as f64);
            }
            let s = Summary::from_samples(ranks);
            table.row(vec![
                m.to_string(),
                staleness.to_string(),
                f3(s.mean()),
                f3(s.quantile(0.99)),
                f3(s.max()),
                m.to_string(),
                f3(m as f64 * (m as f64).ln()),
            ]);
        }
    }
    table.print();
    println!("Expected: mean = O(m); p99/max within the m·ln(m) scale.\n");
}

fn concurrent_section(cfg: &Config) {
    println!("-- concurrent MultiQueue + distributional-linearizability checker --");
    let mut table = Table::new(&[
        "m",
        "threads",
        "ops",
        "mean_rank",
        "p99",
        "max",
        "m·ln(m)",
        "lin?",
    ]);
    for &threads in &cfg.threads {
        let m = (8 * threads).max(8);
        let per_thread = cfg.steps(40_000) as usize;
        let mq: MultiQueue<u64> = MultiQueue::new(m);
        let clock = StampClock::new();
        let logs = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..threads {
                let mq = &mq;
                let clock = &clock;
                let logs = &logs;
                let seed = cfg.seed ^ ((t as u64) << 32);
                s.spawn(move || {
                    let mut rng = Xoshiro256::new(seed);
                    let mut log = ThreadLog::new(t);
                    // Alternate enqueue-biased phases with dequeues so the
                    // structure stays populated (priority = global stamp
                    // order approximated by a per-thread counter mixed with
                    // thread id to stay unique).
                    let mut next_p = t as u64;
                    for k in 0..per_thread {
                        if k % 3 < 2 {
                            let p = next_p;
                            next_p += threads as u64;
                            let inv = clock.stamp();
                            let upd = mq.insert_stamped(&mut rng, p, p, clock.as_atomic());
                            let resp = clock.stamp();
                            log.push(dlz_core::spec::Event {
                                thread: t,
                                label: PqOp::Insert { priority: p },
                                invoke: inv,
                                update: upd,
                                response: resp,
                            });
                        } else {
                            let inv = clock.stamp();
                            if let Some((p, _, upd)) =
                                mq.dequeue_stamped(&mut rng, clock.as_atomic())
                            {
                                let resp = clock.stamp();
                                log.push(dlz_core::spec::Event {
                                    thread: t,
                                    label: PqOp::DeleteMin { removed: p },
                                    invoke: inv,
                                    update: upd,
                                    response: resp,
                                });
                            }
                        }
                    }
                    logs.lock().unwrap().push(log);
                });
            }
        });
        let history = History::from_logs(logs.into_inner().unwrap());
        let ops = history.len();
        let outcome = check_distributional(&PqSpec, &history);
        // Rank costs: only dequeues have nonzero cost; filter zeros from
        // inserts by looking at the distribution of positive costs plus
        // the exact dequeue count.
        let dequeue_costs: Vec<f64> = outcome
            .costs
            .samples()
            .iter()
            .cloned()
            .filter(|&c| c.is_finite())
            .collect();
        let s = Summary::from_samples(dequeue_costs);
        table.row(vec![
            m.to_string(),
            threads.to_string(),
            ops.to_string(),
            f3(s.mean()),
            f3(s.quantile(0.99)),
            f3(s.max()),
            f3(m as f64 * (m as f64).ln()),
            outcome.is_linearizable().to_string(),
        ]);
        // Consistency check for the harness itself.
        assert!(
            clock.issued() >= ops as u64,
            "stamp clock must cover all events"
        );
        let _ = Ordering::Relaxed;
    }
    table.print();
    println!("Expected: every history maps onto the relaxed PQ process (lin? = true);");
    println!("mean rank stays O(m), tail within the m·ln(m) scale (Theorem 7.1).");
}

fn main() {
    let cfg = Config::from_args();
    println!(
        "Theorem 7.1: MultiQueue rank guarantees (threads sweep {:?})\n",
        cfg.threads
    );
    sequential_section(&cfg);
    concurrent_section(&cfg);
}
