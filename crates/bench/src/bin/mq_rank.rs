//! **Theorem 7.1 validation** — MultiQueue dequeue rank quality.
//!
//! Two measurements:
//!
//! 1. The *sequential rank process* (reference \[3\]): prefill b = 100·m
//!    labels, remove half, report mean / p99 / max rank — expected
//!    O(m), O(m log m).
//! 2. The *concurrent MultiQueue*: a history-recording workload
//!    scenario; the engine replays the stamped history through the
//!    distributional-linearizability checker (Definition 5.2) and the
//!    empirical rank-cost distribution comes back as the run's quality
//!    report. This is the end-to-end guarantee the paper's framework
//!    promises.
//!
//! ```text
//! cargo run -p dlz-bench --release --bin mq_rank
//! ```

use dlz_bench::tables::f3;
use dlz_bench::{Config, Table};
use dlz_core::DeleteMode;
use dlz_sim::{QueueProcess, Summary};
use dlz_workload::backends::MultiQueueBackend;
use dlz_workload::{engine, Backend, Budget, Dist, Family, OpMix, Scenario, SweepSpec};

fn sequential_section(cfg: &Config) {
    println!("-- sequential rank process (reference [3]) --");
    let mut table = Table::new(&["m", "staleness", "mean_rank", "p99", "max", "m", "m·ln(m)"]);
    for &m in &[8usize, 16, 64, 256] {
        for staleness in [0usize, m / 8] {
            let b = 100 * m;
            let mut p = QueueProcess::new(m, b, staleness.max(1), cfg.seed ^ m as u64);
            for _ in 0..b {
                p.insert();
            }
            let mut ranks = Vec::with_capacity(b / 2);
            for _ in 0..(b / 2) {
                let (_, rank) = p.remove_retrying(staleness).expect("non-empty");
                ranks.push(rank as f64);
            }
            let s = Summary::from_samples(ranks);
            table.row(vec![
                m.to_string(),
                staleness.to_string(),
                f3(s.mean()),
                f3(s.quantile(0.99)),
                f3(s.max()),
                m.to_string(),
                f3(m as f64 * (m as f64).ln()),
            ]);
        }
    }
    table.print();
    println!("Expected: mean = O(m); p99/max within the m·ln(m) scale.\n");
}

fn concurrent_section(cfg: &Config) {
    println!("-- concurrent MultiQueue + distributional-linearizability checker --");
    let mut table = Table::new(&[
        "m",
        "threads",
        "ops",
        "mean_rank",
        "p99",
        "max",
        "m·ln(m)",
        "lin?",
    ]);
    // The original hand-rolled loop: 2/3 enqueue, 1/3 dequeue, dense
    // per-thread monotone priorities — now a declarative sweep over the
    // thread axis with history recording on; the factory sizes the
    // MultiQueue (m = 8·n) from each cell's thread count.
    let per_thread = cfg.steps(40_000);
    let base = Scenario::builder("mq-rank-audit", Family::Queue)
        .about("stamped history replayed through the checker")
        .budget(Budget::OpsPerWorker(per_thread))
        .mix(OpMix::new(67, 33, 0))
        .priorities(Dist::Monotonic)
        .seed(cfg.seed)
        .record_history(true)
        .build();
    let spec = SweepSpec::new(base).threads(&cfg.threads);
    let reports = engine::run_sweep(&spec, |cell| {
        let m = (8 * cell.scenario.threads).max(8);
        vec![Box::new(MultiQueueBackend::heap(m, DeleteMode::Strict)) as Box<dyn Backend>]
    });

    for report in &reports {
        assert!(report.verified(), "{:?}", report.verify_error);
        let m = (8 * report.threads).max(8);
        let q = &report.quality;
        assert_eq!(q.metric, "dequeue_rank");
        let ranks = q.summary.expect("checker costs");
        table.row(vec![
            m.to_string(),
            report.threads.to_string(),
            format!("{:.0}", q.get("history_ops").unwrap_or(0.0)),
            f3(ranks.mean),
            f3(ranks.p99),
            f3(ranks.max),
            f3(m as f64 * (m as f64).ln()),
            (q.get("linearizable") == Some(1.0)).to_string(),
        ]);
    }
    table.print();
    println!("Expected: every history maps onto the relaxed PQ process (lin? = true);");
    println!("mean rank stays O(m), tail within the m·ln(m) scale (Theorem 7.1).");
}

fn main() {
    let cfg = Config::from_args();
    println!(
        "Theorem 7.1: MultiQueue rank guarantees (threads sweep {:?})\n",
        cfg.threads
    );
    sequential_section(&cfg);
    concurrent_section(&cfg);
}
