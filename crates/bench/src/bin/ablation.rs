//! **Ablations** — design choices the paper discusses but does not
//! plot: the number of choices d, the lock substrate under the
//! MultiQueue, and the internal sequential queue implementation.
//!
//! ```text
//! cargo run -p dlz-bench --release --bin ablation
//! ```

use std::sync::atomic::AtomicBool;

use dlz_bench::tables::f3;
use dlz_bench::{count_until_stopped, run_throughput, Config, Table};
use dlz_core::rng::Xoshiro256;
use dlz_core::{DChoiceCounter, DeleteMode, MultiQueue};
use dlz_pq::{
    BinaryHeap, ConcurrentPq, LockedPq, PairingHeap, ParkingLotPq, SeqPriorityQueue, SkipListPq,
};

/// d-choice: gap and throughput as d varies (d=1 diverges, d=2 is the
/// paper's algorithm, d=4 buys little at 2x the read cost).
fn dchoice_section(cfg: &Config) {
    println!("-- choices per increment (d): balance vs cost --");
    let mut table = Table::new(&["d", "threads", "Mops/s", "final max_gap"]);
    let n = *cfg.threads.last().expect("non-empty");
    for d in [1usize, 2, 4] {
        let counter = DChoiceCounter::new(8 * n, d, cfg.seed);
        let t = run_throughput(n, cfg.duration, |tid| {
            let c = &counter;
            let mut rng = Xoshiro256::new(cfg.seed ^ ((tid as u64) << 11));
            move |stop: &AtomicBool| count_until_stopped(stop, || c.increment_with(&mut rng))
        });
        table.row(vec![
            d.to_string(),
            n.to_string(),
            f3(t.mops()),
            counter.max_gap().to_string(),
        ]);
    }
    table.print();
    println!("Expected: d=1 fastest per op but unbounded gap growth; d=2 bounded gap;");
    println!("d=4 slightly tighter gap at lower throughput.\n");
}

/// Lock substrate: TATAS spinlock vs parking_lot::Mutex under the
/// MultiQueue's short critical sections.
fn lock_section(cfg: &Config) {
    println!("-- lock substrate under LockedPq (insert+remove pairs) --");
    let mut table = Table::new(&["lock", "threads", "Mops/s"]);
    let n = *cfg.threads.last().expect("non-empty");
    let m = 8 * n;

    let spin: Vec<LockedPq<u64>> = (0..m).map(|_| LockedPq::default()).collect();
    let t = run_throughput(n, cfg.duration, |tid| {
        let qs = &spin;
        let mut rng = Xoshiro256::new(cfg.seed ^ tid as u64);
        move |stop: &AtomicBool| {
            count_until_stopped(stop, || {
                use dlz_core::rng::Rng64;
                let i = rng.bounded(qs.len() as u64) as usize;
                qs[i].insert(rng.next_u64() >> 32, 1);
                let j = rng.bounded(qs.len() as u64) as usize;
                let _ = qs[j].remove_min();
            })
        }
    });
    table.row(vec!["spinlock".into(), n.to_string(), f3(t.mops())]);

    let parking: Vec<ParkingLotPq<u64>> = (0..m).map(|_| ParkingLotPq::default()).collect();
    let t = run_throughput(n, cfg.duration, |tid| {
        let qs = &parking;
        let mut rng = Xoshiro256::new(cfg.seed ^ tid as u64);
        move |stop: &AtomicBool| {
            count_until_stopped(stop, || {
                use dlz_core::rng::Rng64;
                let i = rng.bounded(qs.len() as u64) as usize;
                qs[i].insert(rng.next_u64() >> 32, 1);
                let j = rng.bounded(qs.len() as u64) as usize;
                let _ = qs[j].remove_min();
            })
        }
    });
    table.row(vec!["parking_lot".into(), n.to_string(), f3(t.mops())]);
    table.print();
    println!();
}

/// Internal sequential queue: binary heap vs pairing heap vs skip list.
fn substrate_section(cfg: &Config) {
    println!("-- internal queue substrate under the MultiQueue --");
    let mut table = Table::new(&["substrate", "mode", "threads", "Mops/s"]);
    let n = *cfg.threads.last().expect("non-empty");
    let m = 8 * n;

    fn bench_mq<Q>(cfg: &Config, n: usize, queues: Vec<Q>, mode: DeleteMode) -> f64
    where
        Q: SeqPriorityQueue<u64, u64> + Send,
    {
        let mq = MultiQueue::with_queues(queues, mode);
        // Prefill so dequeues rarely observe emptiness.
        {
            let mut prefill = mq.handle(cfg.seed);
            for k in 0..50_000u64 {
                prefill.insert(k, k);
            }
        }
        let t = run_throughput(n, cfg.duration, |tid| {
            let mut h = mq.handle(cfg.seed ^ ((tid as u64) << 7));
            let mut next = 50_000u64 + tid as u64;
            move |stop: &AtomicBool| {
                count_until_stopped(stop, || {
                    h.insert(next, next);
                    next += 1;
                    let _ = h.dequeue();
                })
            }
        });
        t.mops()
    }

    for mode in [DeleteMode::Strict, DeleteMode::TryLock] {
        let mode_name = match mode {
            DeleteMode::Strict => "strict",
            DeleteMode::TryLock => "trylock",
        };
        let binary = bench_mq(
            cfg,
            n,
            (0..m).map(|_| BinaryHeap::<u64, u64>::new()).collect(),
            mode,
        );
        table.row(vec![
            "binary-heap".into(),
            mode_name.into(),
            n.to_string(),
            f3(binary),
        ]);
        let pairing = bench_mq(
            cfg,
            n,
            (0..m).map(|_| PairingHeap::<u64, u64>::new()).collect(),
            mode,
        );
        table.row(vec![
            "pairing-heap".into(),
            mode_name.into(),
            n.to_string(),
            f3(pairing),
        ]);
        let skiplist = bench_mq(
            cfg,
            n,
            (0..m)
                .map(|i| SkipListPq::<u64, u64>::with_seed(cfg.seed ^ i as u64))
                .collect(),
            mode,
        );
        table.row(vec![
            "skiplist".into(),
            mode_name.into(),
            n.to_string(),
            f3(skiplist),
        ]);
    }
    table.print();
}

fn main() {
    let cfg = Config::from_args();
    println!("Ablations (threads = {:?})\n", cfg.threads);
    dchoice_section(&cfg);
    lock_section(&cfg);
    substrate_section(&cfg);
}
