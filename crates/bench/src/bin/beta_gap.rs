//! **Section 6.2 validation** — the (1+β)-choice process and the
//! majorization chain of Lemma 6.4.
//!
//! Sweeps β and reports the (1+β) gap against the O(log m / β) theory
//! line, then numerically verifies that good(γ) operation probability
//! vectors majorize the (1+β = 2γ) vectors across m — the inequality
//! the whole concurrent analysis hinges on.
//!
//! ```text
//! cargo run -p dlz-bench --release --bin beta_gap
//! ```

use dlz_bench::tables::f3;
use dlz_bench::{Config, Table};
use dlz_sim::process::{good_op_probabilities, majorizes, one_plus_beta_probabilities};
use dlz_sim::{BallsProcess, OnePlusBeta};

fn main() {
    let cfg = Config::from_args();
    let m = 256usize;
    let steps = cfg.steps(2_000_000);
    let lnm = (m as f64).ln();

    println!("Section 6.2: (1+beta)-choice process, m = {m}, {steps} steps\n");
    let mut table = Table::new(&["beta", "max_gap", "ln(m)/beta", "gap·beta/ln(m)"]);
    for beta in [1.0, 0.5, 0.25, 0.125, 0.0625] {
        let mut p = OnePlusBeta::new(m, beta, cfg.seed);
        let mut max_gap: f64 = 0.0;
        let chunk = 10_000;
        let mut done = 0;
        while done < steps {
            p.run(chunk.min(steps - done));
            done += chunk;
            max_gap = max_gap.max(p.bins().gap());
        }
        table.row(vec![
            f3(beta),
            f3(max_gap),
            f3(lnm / beta),
            f3(max_gap * beta / lnm),
        ]);
    }
    table.print();
    println!("\nExpected ([25]): gap = O(log m / beta), i.e. the last column stays O(1).\n");

    println!("Lemma 6.4 majorization: good(gamma) ops vs (1+2*gamma) process");
    let mut mtable = Table::new(&["m", "gamma", "rho=1/2+gamma", "majorizes(1+2g)?"]);
    for &mm in &[8usize, 64, 512] {
        for gamma in [0.05, 0.1, 0.2, 1.0 / 5.0, 0.4] {
            let p = good_op_probabilities(mm, 0.5 + gamma);
            let q = one_plus_beta_probabilities(mm, 2.0 * gamma);
            mtable.row(vec![
                mm.to_string(),
                f3(gamma),
                f3(0.5 + gamma),
                majorizes(&p, &q).to_string(),
            ]);
        }
    }
    mtable.print();
    println!("\nExpected: true everywhere (the Lemma's algebraic identity).");
}
