//! **Scenario runner** — drives the named workload catalog against
//! every backend of the matching family and emits machine-readable
//! JSON.
//!
//! ```text
//! cargo run --release -p dlz-bench --bin scenarios -- --list
//! cargo run --release -p dlz-bench --bin scenarios -- --scenario queue-balanced
//! cargo run --release -p dlz-bench --bin scenarios -- --scenario stm-hot-keys \
//!     --threads 8 --duration-ms 1000 --backends relaxed --json out.json
//! ```
//!
//! The JSON array (one object per scenario × backend pair) goes to
//! stdout; human-readable progress goes to stderr, so the output can be
//! piped straight into `jq` or a plotting script. Overrides: `--threads`
//! takes the *last* value of the sweep list as the worker count;
//! `--duration-ms` replaces timed budgets; `--quick` shrinks everything.

use std::io::Write as _;
use std::time::Duration;

use dlz_bench::{Config, Table};
use dlz_workload::backends::roster;
use dlz_workload::{engine, json, Budget, RunReport, Scenario};

fn list(catalog: &[Scenario]) {
    let mut table = Table::new(&["scenario", "family", "threads", "description"]);
    for s in catalog {
        table.row(vec![
            s.name.clone(),
            s.family.label().to_string(),
            s.threads.to_string(),
            s.about.clone(),
        ]);
    }
    table.print();
    println!("\nrun one: cargo run --release -p dlz-bench --bin scenarios -- --scenario <name>");
}

/// Applies CLI overrides and quick-mode shrinking to a preset.
fn customize(mut s: Scenario, cfg: &Config) -> Scenario {
    if cfg.was_set("threads") {
        s.threads = *cfg.threads.last().expect("non-empty sweep");
    }
    if cfg.was_set("seed") {
        s.seed = cfg.seed;
    }
    match s.budget {
        Budget::Timed(_) if cfg.was_set("duration-ms") => {
            s.budget = Budget::Timed(cfg.duration);
        }
        _ => {}
    }
    if cfg.quick {
        s.budget = match s.budget {
            Budget::Timed(d) => Budget::Timed(d.min(Duration::from_millis(50))),
            Budget::OpsPerWorker(n) => Budget::OpsPerWorker((n / 10).max(100)),
        };
        s.threads = s.threads.min(2);
        s.prefill = s.prefill.min(2_000);
    }
    s
}

fn main() {
    let cfg = Config::from_args();
    let catalog = Scenario::catalog();

    if cfg.list {
        list(&catalog);
        return;
    }

    let selected: Vec<Scenario> = match &cfg.scenario {
        Some(name) => match Scenario::named(name) {
            Some(s) => vec![s],
            None => {
                eprintln!("unknown scenario '{name}'; available:");
                for s in &catalog {
                    eprintln!("  {}", s.name);
                }
                std::process::exit(2);
            }
        },
        None => catalog,
    };

    let mut reports: Vec<RunReport> = Vec::new();
    let mut summary = Table::new(&[
        "scenario", "backend", "threads", "mops", "p50_ns", "p99_ns", "quality", "verified",
    ]);
    for preset in selected {
        let scenario = customize(preset, &cfg);
        for backend in roster(&scenario) {
            if !cfg.backend_selected(&backend.name()) {
                continue;
            }
            eprintln!("running {} on {} ...", scenario.name, backend.name());
            let report = engine::run(&scenario, backend.as_ref());
            let q = &report.quality;
            let quality_cell = match q.summary {
                Some(s) => format!("{}: p99={:.1}", q.metric, s.p99),
                None => match q.get("abort_rate") {
                    Some(r) => format!("abort_rate={:.3}", r),
                    None => q.metric.clone(),
                },
            };
            summary.row(vec![
                report.scenario.clone(),
                report.backend.clone(),
                report.threads.to_string(),
                format!("{:.3}", report.mops()),
                report.latency.p50_ns.to_string(),
                report.latency.p99_ns.to_string(),
                quality_cell,
                report.verified().to_string(),
            ]);
            reports.push(report);
        }
    }

    let rendered: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    let array = json::array(&rendered);
    println!("{array}");

    if let Some(path) = &cfg.json {
        let mut f = std::fs::File::create(path).expect("create --json file");
        f.write_all(array.as_bytes()).expect("write --json file");
        f.write_all(b"\n").expect("write --json file");
        eprintln!("wrote {} reports to {path}", reports.len());
    }

    eprintln!();
    eprint!("{}", summary.render());
    let unverified: Vec<&RunReport> = reports.iter().filter(|r| !r.verified()).collect();
    if !unverified.is_empty() {
        for r in &unverified {
            eprintln!(
                "VERIFY FAILED: {} on {}: {}",
                r.scenario,
                r.backend,
                r.verify_error.as_deref().unwrap_or("?")
            );
        }
        std::process::exit(1);
    }
}
