//! **Scenario runner** — drives the named workload catalog against
//! every backend of the matching family and emits machine-readable
//! JSON.
//!
//! ```text
//! cargo run --release -p dlz-bench --bin scenarios -- --list
//! cargo run --release -p dlz-bench --bin scenarios -- --scenario queue-balanced
//! cargo run --release -p dlz-bench --bin scenarios -- --scenario stm-hot-keys \
//!     --threads 8 --duration-ms 1000 --backends relaxed --json out.json
//!
//! # sweep grids: threads × policies × mixes, one JSON array out
//! cargo run --release -p dlz-bench --bin scenarios -- --sweep \
//!     --scenario queue-balanced --threads 1,2,4,8 \
//!     --policies two-choice,sticky=16
//! ```
//!
//! Every run is a sweep grid (the single-run path is a 1×1 grid): the
//! JSON array holds one object per (cell × backend), each tagged with
//! its cell name and grid coordinates. `--threads 2,4,8` runs **every**
//! listed thread count — nothing is silently dropped. `--sweep` without
//! `--threads` sweeps the default power-of-two thread ladder. JSON goes
//! to stdout; human-readable progress goes to stderr, so the output can
//! be piped straight into `jq` or a plotting script. `--quick` shrinks
//! only the dimensions not explicitly set.

use std::collections::BTreeSet;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use dlz_bench::config::DEFAULT_DIST_N;
use dlz_bench::{Config, Table};
use dlz_workload::backends::{policy_roster, roster};
use dlz_workload::{engine, json, Budget, Dist, Family, RunReport, Scenario, SweepSpec};

fn list(catalog: &[Scenario]) {
    let mut table = Table::new(&["scenario", "family", "threads", "description"]);
    for s in catalog {
        table.row(vec![
            s.name.clone(),
            s.family.label().to_string(),
            s.threads.to_string(),
            s.about.clone(),
        ]);
    }
    table.print();
    println!("\nrun one: cargo run --release -p dlz-bench --bin scenarios -- --scenario <name>");
}

/// Applies CLI overrides and quick-mode shrinking to a preset's base
/// scenario. Quick mode only shrinks dimensions the user did **not**
/// explicitly set: `--quick --threads 8` runs 8 threads.
fn customize(mut s: Scenario, cfg: &Config) -> Scenario {
    if cfg.was_set("threads") {
        // Base value only; the sweep grid carries the full list.
        s.threads = *cfg.threads.last().expect("non-empty sweep");
    }
    if cfg.was_set("seed") {
        s.seed = cfg.seed;
    }
    match s.budget {
        Budget::Timed(_) if cfg.was_set("duration-ms") => {
            s.budget = Budget::Timed(cfg.duration);
        }
        _ => {}
    }
    if cfg.quick {
        s.budget = match s.budget {
            Budget::Timed(d) if !cfg.was_set("duration-ms") => {
                Budget::Timed(d.min(Duration::from_millis(50)))
            }
            Budget::OpsPerWorker(n) => Budget::OpsPerWorker((n / 10).max(100)),
            other => other,
        };
        if !cfg.was_set("threads") {
            s.threads = s.threads.min(2);
        }
        s.prefill = s.prefill.min(2_000);
    }
    if cfg.telemetry {
        s.telemetry_interval = Some(cfg.telemetry_interval);
    }
    if let Some(plan) = &cfg.faults {
        // The highest thread count anywhere in the grid bounds the
        // worker ids a plan may name; the engine simply never compiles
        // faults for workers a smaller cell does not spawn.
        let max_threads = if cfg.sweep || cfg.was_set("threads") {
            cfg.threads.iter().copied().max().unwrap_or(s.threads)
        } else {
            s.threads
        };
        if plan.max_worker() >= max_threads {
            eprintln!(
                "error: --faults names worker {} but no cell runs more than {} threads",
                plan.max_worker(),
                max_threads
            );
            std::process::exit(2);
        }
        s.faults = Some(plan.clone());
    }
    if let Some(dir) = &cfg.export_histories {
        // The export directory also receives `.prom` telemetry files,
        // so telemetry-enabled runs export even without a history.
        if s.record_history || cfg.telemetry {
            s.export = Some(PathBuf::from(dir));
        } else {
            // An ineffective flag must not pass silently.
            eprintln!(
                "note: --export-histories skips '{}' (the scenario records no history)",
                s.name
            );
        }
    }
    s
}

/// Builds the sweep grid for one catalog preset: the customized base
/// plus the CLI axes. Without `--sweep` and without explicit axes this
/// is a 1×1 grid — the single-run path.
fn build_spec(base: Scenario, cfg: &Config) -> SweepSpec {
    let family = base.family;
    let mut spec = SweepSpec::new(base);
    if cfg.sweep || cfg.was_set("threads") {
        spec = spec.threads(&cfg.threads);
    }
    if !cfg.policies.is_empty() {
        if family == Family::Queue {
            spec = spec.policies(&cfg.policies);
        } else {
            eprintln!(
                "note: --policies only applies to queue scenarios; ignored for this {} scenario",
                family.label()
            );
        }
    }
    if !cfg.substrates.is_empty() {
        if family == Family::Queue {
            spec = spec.substrates(&cfg.substrates);
        } else {
            eprintln!(
                "note: --substrates only applies to queue scenarios; ignored for this {} scenario",
                family.label()
            );
        }
    }
    if !cfg.mixes.is_empty() {
        spec = spec.mixes(&cfg.mixes);
    }
    if !cfg.clients.is_empty() {
        spec = spec.clients(&cfg.clients);
    }
    if !cfg.arrival_shapes.is_empty() {
        spec = spec.arrival_shapes(&cfg.arrival_shapes);
    }
    if !cfg.keys.is_empty() {
        spec = spec.keys(&cfg.keys);
    }
    if !cfg.prios.is_empty() {
        spec = spec.priorities(&cfg.prios);
    }
    if !cfg.zipf.is_empty() {
        // Skew shorthand: one Zipf axis over the listed thetas, applied
        // to the family's natural skew dimension — priorities for queue
        // scenarios (their keys are unused), keys everywhere else.
        let dists: Vec<Dist> = cfg
            .zipf
            .iter()
            .map(|&theta| Dist::Zipf {
                n: DEFAULT_DIST_N,
                theta,
            })
            .collect();
        spec = if family == Family::Queue {
            spec.priorities(&dists)
        } else {
            spec.keys(&dists)
        };
    }
    spec
}

fn main() {
    let cfg = Config::from_args();
    let catalog = Scenario::catalog();

    if cfg.list {
        list(&catalog);
        return;
    }

    let selected: Vec<Scenario> = match &cfg.scenario {
        Some(name) => match Scenario::named(name) {
            Some(s) => vec![s],
            None => {
                eprintln!("unknown scenario '{name}'; available:");
                for s in &catalog {
                    eprintln!("  {}", s.name);
                }
                std::process::exit(2);
            }
        },
        None => {
            // Chaos presets ship armed fault plans and *expect* worker
            // deaths, so a bare catalog run skips them — run one
            // explicitly (`--scenario chaos-stall-audit`) to opt in.
            let (chaos, rest): (Vec<Scenario>, Vec<Scenario>) =
                catalog.into_iter().partition(|s| s.faults.is_some());
            for s in &chaos {
                eprintln!(
                    "note: skipping chaos preset '{}' (opt in with --scenario)",
                    s.name
                );
            }
            rest
        }
    };

    let mut reports: Vec<RunReport> = Vec::new();
    // Every roster backend seen, selected or not — listed when a
    // --backends filter matches nothing.
    let mut roster_names: BTreeSet<String> = BTreeSet::new();
    let mut matched = 0usize;
    for preset in selected {
        let base = customize(preset, &cfg);
        if cfg.was_set("duration-ms") && matches!(base.budget, Budget::OpsPerWorker(_)) {
            // An ineffective override must not pass silently.
            eprintln!(
                "warning: --duration-ms has no effect on '{}' (fixed-op budget {:?})",
                base.name, base.budget
            );
        }
        let spec = build_spec(base, &cfg);
        reports.extend(engine::run_sweep(&spec, |cell| {
            // Along a policy axis, run only backends that act on the
            // swept policy — same set in every cell, so the series is
            // rectangular and no policy-oblivious backend gets tagged
            // with a label it ignored. Other sweeps keep the full
            // family roster.
            let cell_roster = if cell.coords.iter().any(|(k, _)| k == "policy") {
                policy_roster(&cell.scenario)
            } else {
                roster(&cell.scenario)
            };
            let mut kept: Vec<Box<dyn dlz_workload::Backend>> = Vec::new();
            for backend in cell_roster {
                let name = backend.name();
                roster_names.insert(name.clone());
                if cfg.backend_selected(&name) {
                    eprintln!("running {} on {name} ...", cell.name);
                    kept.push(backend);
                }
            }
            matched += kept.len();
            kept
        }));
    }

    if !cfg.backends.is_empty() && matched == 0 {
        eprintln!(
            "error: --backends filter [{}] matched no backend; roster:",
            cfg.backends.join(",")
        );
        for name in &roster_names {
            eprintln!("  {name}");
        }
        std::process::exit(2);
    }

    let mut summary = Table::new(&[
        "cell", "backend", "threads", "mops", "p50_ns", "p99_ns", "quality", "verified",
    ]);
    for report in &reports {
        let q = &report.quality;
        let quality_cell = match q.summary {
            Some(s) => format!("{}: p99={:.1}", q.metric, s.p99),
            None => match q.get("abort_rate") {
                Some(r) => format!("abort_rate={:.3}", r),
                None => q.metric.clone(),
            },
        };
        summary.row(vec![
            report
                .cell
                .clone()
                .unwrap_or_else(|| report.scenario.clone()),
            report.backend.clone(),
            report.threads.to_string(),
            format!("{:.3}", report.mops()),
            report.latency.p50_ns.to_string(),
            report.latency.p99_ns.to_string(),
            quality_cell,
            report.verified().to_string(),
        ]);
    }

    let rendered: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
    let array = json::array(&rendered);
    println!("{array}");

    if let Some(path) = &cfg.json {
        let mut f = std::fs::File::create(path).expect("create --json file");
        f.write_all(array.as_bytes()).expect("write --json file");
        f.write_all(b"\n").expect("write --json file");
        eprintln!("wrote {} reports to {path}", reports.len());
    }

    eprintln!();
    eprint!("{}", summary.render());
    // A run is clean only if it verified, exported without errors, and
    // every worker completed — fault casualties and export failures
    // surface in the exit code, not just the JSON.
    let failed: Vec<&RunReport> = reports.iter().filter(|r| !r.ok()).collect();
    if !failed.is_empty() {
        for r in &failed {
            let cell = r.cell.as_deref().unwrap_or(&r.scenario);
            if !r.verified() {
                eprintln!(
                    "VERIFY FAILED: {cell} on {}: {}",
                    r.backend,
                    r.verify_error.as_deref().unwrap_or("?")
                );
            }
            for e in &r.export_errors {
                eprintln!("EXPORT FAILED: {cell} on {}: {e}", r.backend);
            }
            if let Some(f) = &r.faults {
                for (id, w) in f.workers.iter().enumerate() {
                    if let Some(detail) = w.detail() {
                        eprintln!(
                            "WORKER {}: {cell} on {}: worker {id}: {detail}",
                            w.label().to_uppercase(),
                            r.backend
                        );
                    }
                }
            }
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlz_core::PolicyCfg;

    #[test]
    fn quick_only_shrinks_dimensions_the_user_did_not_set() {
        // Regression: `--quick --threads 8` used to clamp to 2 threads
        // because customize() applied the quick shrink after the
        // explicit --threads override.
        let cfg = Config::parse(vec!["--quick".into(), "--threads".into(), "8".into()]);
        let s = customize(Scenario::named("queue-balanced").expect("catalog"), &cfg);
        assert_eq!(s.threads, 8, "--quick must not clamp an explicit --threads");
        // Unset dimensions still shrink.
        assert!(matches!(s.budget, Budget::Timed(d) if d <= Duration::from_millis(50)));

        // Without an explicit thread count, quick still clamps.
        let cfg = Config::parse(vec!["--quick".into()]);
        let s = customize(
            Scenario::named("mq-hotpath-dequeue-heavy").expect("catalog"),
            &cfg,
        );
        assert_eq!(s.threads, 2);

        // An explicit duration survives quick mode too.
        let cfg = Config::parse(vec!["--quick".into(), "--duration-ms".into(), "400".into()]);
        let s = customize(Scenario::named("queue-balanced").expect("catalog"), &cfg);
        assert_eq!(s.budget, Budget::Timed(Duration::from_millis(400)));
    }

    #[test]
    fn build_spec_expands_cli_axes() {
        let cfg = Config::parse(vec![
            "--sweep".into(),
            "--threads".into(),
            "1,2".into(),
            "--policies".into(),
            "two-choice,sticky=16".into(),
        ]);
        let base = customize(Scenario::named("queue-balanced").expect("catalog"), &cfg);
        let spec = build_spec(base, &cfg);
        assert_eq!(spec.len(), 4, "2 threads × 2 policies");
        let cells = spec.cells();
        assert!(cells[0].name.starts_with("queue-balanced/t=1/policy="));
        assert!(cells
            .iter()
            .any(|c| c.scenario.choice_policy == PolicyCfg::Sticky { ops: 16 }));

        // Single-run path: a 1×1 grid, nothing dropped.
        let cfg = Config::parse(vec![]);
        let base = customize(Scenario::named("queue-balanced").expect("catalog"), &cfg);
        let spec = build_spec(base, &cfg);
        assert_eq!(spec.len(), 1);

        // `--threads 2,4,8` without --sweep runs every listed count.
        let cfg = Config::parse(vec!["--threads".into(), "2,4,8".into()]);
        let base = customize(Scenario::named("queue-balanced").expect("catalog"), &cfg);
        let spec = build_spec(base, &cfg);
        assert_eq!(spec.len(), 3, "an explicit sweep list must not be dropped");
        let threads: Vec<usize> = spec.cells().iter().map(|c| c.scenario.threads).collect();
        assert_eq!(threads, vec![2, 4, 8]);

        // --policies on a non-queue family is ignored (with a note).
        let cfg = Config::parse(vec!["--policies".into(), "sticky=4".into()]);
        let base = customize(
            Scenario::named("counter-read-heavy").expect("catalog"),
            &cfg,
        );
        let spec = build_spec(base, &cfg);
        assert_eq!(spec.len(), 1);
    }

    #[test]
    fn substrate_axis_threads_into_the_grid() {
        use dlz_core::SubstrateCfg;
        let cfg = Config::parse(vec![
            "--substrates".into(),
            "locked,lockfree,combining".into(),
            "--policies".into(),
            "two-choice,sticky=16".into(),
        ]);
        let base = customize(Scenario::named("queue-balanced").expect("catalog"), &cfg);
        let spec = build_spec(base, &cfg);
        assert_eq!(spec.len(), 6, "3 substrates × 2 policies");
        let cells = spec.cells();
        assert!(cells[0].name.contains("/sub=locked"), "{}", cells[0].name);
        assert!(cells
            .iter()
            .any(|c| c.scenario.substrate == SubstrateCfg::Combining
                && c.name.contains("/sub=combining")));
        // Non-queue families ignore the axis (with a note).
        let base = customize(
            Scenario::named("counter-read-heavy").expect("catalog"),
            &cfg,
        );
        let spec = build_spec(base, &cfg);
        assert_eq!(spec.len(), 1);
    }

    #[test]
    fn client_axes_thread_into_the_grid_and_survive_quick() {
        use dlz_workload::ArrivalShape;
        // `--quick` must not shrink the client population: the preset
        // keeps its 100k clients while budgets and prefill shrink.
        let cfg = Config::parse(vec![
            "--quick".into(),
            "--clients".into(),
            "200000".into(),
            "--arrival-shape".into(),
            "poisson:50,periodic:50".into(),
        ]);
        let base = customize(
            Scenario::named("clients-poisson-100k").expect("catalog"),
            &cfg,
        );
        let spec = build_spec(base, &cfg);
        assert_eq!(spec.len(), 2, "1 clients × 2 shapes");
        let cells = spec.cells();
        assert!(cells.iter().all(|c| c.scenario.clients == 200_000));
        assert!(cells[0].name.contains("/clients=200000/shape=poisson("));
        assert!(cells[1].name.contains("/shape=periodic("));
        // Without the flags, the preset's own client setup rules.
        let cfg = Config::parse(vec!["--quick".into()]);
        let base = customize(
            Scenario::named("clients-poisson-100k").expect("catalog"),
            &cfg,
        );
        assert_eq!(base.clients, 100_000, "quick must not shrink clients");
        assert_eq!(base.arrival_shape, ArrivalShape::Poisson { rate: 50.0 });
        let spec = build_spec(base, &cfg);
        assert_eq!(spec.len(), 1);
    }

    #[test]
    fn skew_axes_follow_the_family() {
        // Queue scenarios skew their priorities ...
        let cfg = Config::parse(vec!["--zipf".into(), "0.6,0.9".into()]);
        let base = customize(Scenario::named("queue-balanced").expect("catalog"), &cfg);
        let spec = build_spec(base, &cfg);
        assert_eq!(spec.len(), 2);
        let cells = spec.cells();
        assert!(cells
            .iter()
            .all(|c| matches!(c.scenario.priorities, Dist::Zipf { .. })));
        assert!(cells[0].name.contains("/prio=zipf("), "{}", cells[0].name);

        // ... counter (and STM) scenarios skew their keys.
        let base = customize(
            Scenario::named("counter-read-heavy").expect("catalog"),
            &cfg,
        );
        let cells = build_spec(base, &cfg).cells();
        assert_eq!(cells.len(), 2);
        assert!(cells
            .iter()
            .all(|c| matches!(c.scenario.keys, Dist::Zipf { .. })));

        // Explicit --keys/--prios apply verbatim and compose.
        let cfg = Config::parse(vec![
            "--keys".into(),
            "uniform:64,zipf:128:0.9".into(),
            "--prios".into(),
            "monotonic".into(),
        ]);
        let base = customize(Scenario::named("queue-balanced").expect("catalog"), &cfg);
        let spec = build_spec(base, &cfg);
        assert_eq!(spec.len(), 2, "2 keys × 1 prio");
        assert!(spec.cells()[0].name.contains("keys=uniform(64)"));
    }

    #[test]
    fn export_histories_applies_only_to_history_scenarios() {
        let cfg = Config::parse(vec!["--export-histories".into(), "histdir".into()]);
        let audit = customize(
            Scenario::named("queue-balanced-audit").expect("catalog"),
            &cfg,
        );
        assert_eq!(
            audit.export.as_deref(),
            Some(std::path::Path::new("histdir"))
        );
        let plain = customize(Scenario::named("queue-balanced").expect("catalog"), &cfg);
        assert!(plain.export.is_none(), "no history, nothing to export");
    }

    #[test]
    fn faults_flag_threads_the_plan_into_every_scenario() {
        let cfg = Config::parse(vec!["--faults".into(), "panic:0@50;slow:1:2..9".into()]);
        let s = customize(Scenario::named("queue-balanced").expect("catalog"), &cfg);
        assert_eq!(
            s.faults.as_ref().map(|p| p.spec()),
            Some("panic:0@50;slow:1:2..9")
        );
        // Off by default.
        let cfg = Config::parse(vec![]);
        let s = customize(Scenario::named("queue-balanced").expect("catalog"), &cfg);
        assert!(s.faults.is_none());
    }

    #[test]
    fn telemetry_flag_arms_interval_snapshots() {
        let cfg = Config::parse(vec!["--telemetry-interval-ms".into(), "20".into()]);
        let s = customize(Scenario::named("queue-balanced").expect("catalog"), &cfg);
        assert_eq!(s.telemetry_interval, Some(Duration::from_millis(20)));
        // Off by default.
        let cfg = Config::parse(vec![]);
        let s = customize(Scenario::named("queue-balanced").expect("catalog"), &cfg);
        assert!(s.telemetry_interval.is_none());
        // Telemetry-enabled runs export .prom files even without a
        // recorded history.
        let cfg = Config::parse(vec![
            "--telemetry".into(),
            "--export-histories".into(),
            "artifacts".into(),
        ]);
        let s = customize(Scenario::named("queue-balanced").expect("catalog"), &cfg);
        assert_eq!(s.export.as_deref(), Some(std::path::Path::new("artifacts")));
    }
}
