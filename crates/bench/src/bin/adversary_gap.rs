//! **Theorem 6.1 / Lemma 6.8 validation** — gap and potential of the
//! asynchronous two-choice process under adversarial schedules.
//!
//! For each m and schedule, runs the stale-read process for a long
//! stretch and reports max gap, the Γ/m ratio (Lemma 6.7 says E\[Γ\] =
//! O(m)), and the fraction of "wrong-bin" updates the adversary managed
//! to cause. The paper's claim: with m ≥ C·n, the gap is O(log m) at
//! any time t, for any oblivious schedule.
//!
//! ```text
//! cargo run -p dlz-bench --release --bin adversary_gap
//! ```

use dlz_bench::tables::f3;
use dlz_bench::{Config, Table};
use dlz_sim::{AsyncTwoChoice, PotentialTrace, Schedule};

fn main() {
    let cfg = Config::from_args();
    let steps = cfg.steps(2_000_000);
    let alpha = 0.5; // potential exponent for reporting (any α works)

    println!("Theorem 6.1: async two-choice under oblivious schedules");
    println!("steps per cell: {steps}; potential Γ sampled every 10k steps (α = {alpha})\n");

    let mut table = Table::new(&[
        "m",
        "n",
        "schedule",
        "max_gap",
        "ln(m)",
        "gap/ln(m)",
        "max Γ/m",
        "wrong-bin %",
    ]);

    for &m in &[64usize, 256, 1024] {
        let n = m / 8; // the m ≥ Cn regime with C = 8
        let schedules = [
            ("sequential", Schedule::Sequential),
            ("stampede(n)", Schedule::BatchStampede { n }),
            ("roundrobin(n)", Schedule::RoundRobin { n }),
            ("uniform(2n)", Schedule::UniformDelay { max: 2 * n }),
        ];
        for (name, sched) in schedules {
            let mut p = AsyncTwoChoice::new(m, sched, cfg.seed ^ m as u64);
            let mut trace = PotentialTrace::new(alpha, 10_000);
            trace.run(&mut p, steps);
            let lnm = (m as f64).ln();
            let wrong = 100.0 * p.wrong_choices() as f64 / steps as f64;
            table.row(vec![
                m.to_string(),
                n.to_string(),
                name.to_string(),
                f3(trace.max_gap()),
                f3(lnm),
                f3(trace.max_gap() / lnm),
                f3(trace.max_gamma() / m as f64),
                format!("{wrong:.2}"),
            ]);
        }
    }
    table.print();
    println!("\nExpected shape (Thm 6.1): gap/ln(m) stays O(1) across schedules and m;");
    println!("Γ/m stays bounded (Lemma 6.7); staleness induces some wrong-bin updates");
    println!("but the m >= Cn regime keeps their effect bounded.");
}
