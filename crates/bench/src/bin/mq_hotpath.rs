//! **MultiQueue hot-path benchmark** — the before/after snapshot for
//! the packed/padded/sticky contention work, recorded as
//! `BENCH_mq_hotpath.json`.
//!
//! For each `mq-hotpath-*` throughput scenario the binary runs the
//! *same* workload twice at ≥ 8 threads:
//!
//! * **baseline** — the plain MultiQueue (fresh random draws every op,
//!   one op per lock acquisition), and
//! * **optimized** — the tuned configuration the scenario declares
//!   (sticky queue choice for `s` consecutive ops, `k` ops batched per
//!   lock acquisition),
//!
//! then reports the throughput improvement. The sticky-mode rank
//! guardrail runs `mq-hotpath-rank-audit` with history recording on:
//! the checker-exact dequeue ranks must stay within the documented
//! O(s·m) envelope, and the resulting metrics are embedded in the JSON.
//!
//! ```text
//! cargo run --release -p dlz-bench --bin mq_hotpath
//! cargo run --release -p dlz-bench --bin mq_hotpath -- --quick --json /tmp/out.json
//! ```

use std::io::Write as _;

use dlz_bench::{Config, Table};
use dlz_core::DeleteMode;
use dlz_workload::backends::MultiQueueBackend;
use dlz_workload::json::JsonObject;
use dlz_workload::{engine, Backend, Budget, RunReport, Scenario};

const DEFAULT_OUT: &str = "BENCH_mq_hotpath.json";
/// Acceptance target on the contended dequeue-heavy point.
const TARGET_PCT: f64 = 15.0;

/// Applies thread/duration overrides and quick-mode shrinking.
fn customize(mut s: Scenario, cfg: &Config, threads: usize) -> Scenario {
    s.threads = threads;
    if cfg.was_set("seed") {
        s.seed = cfg.seed;
    }
    if let (Budget::Timed(_), true) = (s.budget, cfg.was_set("duration-ms")) {
        s.budget = Budget::Timed(cfg.duration);
    }
    if cfg.quick {
        s.budget = match s.budget {
            Budget::Timed(d) => Budget::Timed(d.min(std::time::Duration::from_millis(50))),
            Budget::OpsPerWorker(n) => Budget::OpsPerWorker((n / 20).max(100)),
        };
        s.prefill = s.prefill.min(5_000);
    }
    s
}

/// One verified engine run against a *fresh* backend (reusing one
/// would carry residual items between rounds and break the
/// conservation check).
fn run_once<B: Backend>(scenario: &Scenario, make: &impl Fn() -> B) -> RunReport {
    let backend = make();
    let r = engine::run(scenario, &backend);
    assert!(
        r.verified(),
        "{} on {} failed verify: {:?}",
        scenario.name,
        r.backend,
        r.verify_error
    );
    r
}

/// The run with median throughput — symmetric against scheduler noise,
/// unlike best-of.
fn median(mut runs: Vec<RunReport>) -> RunReport {
    runs.sort_by(|a, b| a.mops().partial_cmp(&b.mops()).expect("finite mops"));
    runs.swap_remove(runs.len() / 2)
}

fn main() {
    let cfg = Config::from_args();
    // The contended point: at least 8 workers even on small boxes —
    // oversubscription is part of what the sticky/batched path fixes.
    let threads = if cfg.was_set("threads") {
        *cfg.threads.last().expect("non-empty sweep")
    } else {
        8
    }
    .max(8);
    let rounds = if cfg.quick { 1 } else { 5 };

    let mut table = Table::new(&[
        "scenario",
        "threads",
        "baseline",
        "optimized",
        "mops_base",
        "mops_opt",
        "gain_%",
    ]);
    let mut points: Vec<String> = Vec::new();
    let mut worst_gain = f64::INFINITY;
    // The acceptance target applies to the contended dequeue-heavy point.
    let mut target_gain = f64::NAN;

    for name in ["mq-hotpath-dequeue-heavy", "mq-hotpath-balanced"] {
        let scenario = customize(
            Scenario::named(name).expect("catalog scenario"),
            &cfg,
            threads,
        );
        // Ratio C = m/n = 8: plenty of queues per thread, so the
        // baseline's per-op cost is dominated by exactly what the
        // sticky/batched path removes (fresh draws, hint-line reads,
        // per-op lock and publish traffic). Lower ratios shift cost
        // into lock waiting, which batching's longer critical sections
        // do not help.
        let m = 8 * threads;
        let make_base = || MultiQueueBackend::heap(m, DeleteMode::Strict);
        let make_opt = || {
            MultiQueueBackend::heap_tuned(
                m,
                DeleteMode::Strict,
                scenario.sticky_ops,
                scenario.batch,
            )
        };
        // Interleave baseline/optimized rounds so slow drifts in
        // machine load hit both configurations equally.
        let mut base_runs = Vec::new();
        let mut opt_runs = Vec::new();
        for round in 0..rounds {
            eprintln!("running {name} round {}/{rounds} ...", round + 1);
            base_runs.push(run_once(&scenario, &make_base));
            opt_runs.push(run_once(&scenario, &make_opt));
        }
        let base = median(base_runs);
        let opt = median(opt_runs);

        let gain = (opt.mops() - base.mops()) / base.mops() * 100.0;
        worst_gain = worst_gain.min(gain);
        if name == "mq-hotpath-dequeue-heavy" {
            target_gain = gain;
        }
        table.row(vec![
            name.to_string(),
            threads.to_string(),
            base.backend.clone(),
            opt.backend.clone(),
            format!("{:.3}", base.mops()),
            format!("{:.3}", opt.mops()),
            format!("{gain:+.1}"),
        ]);

        let mut o = JsonObject::new();
        o.str("scenario", name)
            .u64("threads", threads as u64)
            .u64("sticky_ops", scenario.sticky_ops as u64)
            .u64("batch", scenario.batch as u64)
            .f64("mops_baseline", base.mops())
            .f64("mops_optimized", opt.mops())
            .f64("improvement_pct", gain)
            .bool("meets_target", gain >= TARGET_PCT)
            .raw("baseline", &base.to_json())
            .raw("optimized", &opt.to_json());
        points.push(o.finish());
    }

    // Rank guardrail: sticky-mode checker-exact dequeue ranks must sit
    // inside the O(s·m) envelope the implementation documents.
    let audit_scenario = {
        let mut s = Scenario::named("mq-hotpath-rank-audit").expect("catalog scenario");
        if cfg.quick {
            s.budget = Budget::OpsPerWorker(1_000);
            s.prefill = 500;
        }
        if cfg.was_set("seed") {
            s.seed = cfg.seed;
        }
        s
    };
    let audit_backend = MultiQueueBackend::heap_tuned(
        4 * audit_scenario.threads,
        DeleteMode::Strict,
        audit_scenario.sticky_ops,
        1,
    );
    eprintln!(
        "running {} ({}) ...",
        audit_scenario.name,
        audit_backend.name()
    );
    let audit = engine::run(&audit_scenario, &audit_backend);
    assert!(audit.verified(), "audit verify: {:?}", audit.verify_error);
    let rank_samples = audit.quality.summary.map(|s| s.count).unwrap_or(0);
    assert!(
        rank_samples > 0,
        "rank audit produced no samples — the envelope would pass vacuously"
    );
    let within = audit.quality.get("within_sticky_bound") == Some(1.0);
    let linearizable = audit.quality.get("linearizable") == Some(1.0);

    let mut root = JsonObject::new();
    root.str("bench", "mq_hotpath")
        .u64("threads", threads as u64)
        .f64("target_improvement_pct", TARGET_PCT)
        .f64("dequeue_heavy_improvement_pct", target_gain)
        .bool("meets_target", target_gain >= TARGET_PCT)
        .f64("worst_improvement_pct", worst_gain)
        .raw("points", &dlz_workload::json::array(&points))
        .raw("rank_audit", &audit.to_json())
        .bool("rank_within_s_m_bound", within)
        .bool("rank_audit_linearizable", linearizable);
    let rendered = root.finish();

    let path = cfg.json.clone().unwrap_or_else(|| DEFAULT_OUT.to_string());
    let mut f = std::fs::File::create(&path).expect("create output file");
    f.write_all(rendered.as_bytes()).expect("write output file");
    f.write_all(b"\n").expect("write output file");
    eprintln!("wrote {path}");

    eprintln!();
    eprint!("{}", table.render());
    let rank_mean = audit.quality.summary.map(|s| s.mean).unwrap_or(0.0);
    let rank_bound = audit.quality.get("rank_bound_s_m").unwrap_or(0.0);
    eprintln!(
        "rank audit: mean={rank_mean:.1} bound(O(s·m))={rank_bound:.1} within={within} linearizable={linearizable}"
    );
    if !within || !linearizable {
        eprintln!("RANK GUARDRAIL VIOLATED");
        std::process::exit(1);
    }
    if target_gain < TARGET_PCT {
        eprintln!(
            "note: dequeue-heavy improvement {target_gain:.1}% below the {TARGET_PCT}% target on this machine"
        );
    }
}
