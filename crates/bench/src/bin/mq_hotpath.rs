//! **MultiQueue hot-path benchmark** — the recurring before/after
//! snapshot for the contention work, recorded as a *trajectory* in
//! `BENCH_mq_hotpath.json` (one JSON array element per snapshot, so
//! regressions across PRs stay visible; the file is appended to, not
//! overwritten).
//!
//! For each `mq-hotpath-*` throughput scenario the binary runs the
//! *same* workload at ≥ 8 threads in three configurations:
//!
//! * **baseline** — the plain MultiQueue (fresh two-choice draws every
//!   op, one op per lock acquisition),
//! * **optimized** — the tuned configuration the scenario declares via
//!   its `choice_policy`/`batch` dimensions (sticky camping for `s`
//!   consecutive ops, `k` ops batched per lock acquisition), and
//! * **adaptive** (dequeue-heavy shape only) — `AdaptiveSticky` with
//!   `s_max` equal to the static policy's `s`, to check the online
//!   adaptation stays within noise of the best static stickiness,
//!
//! then reports the throughput improvements. The rank guardrails run
//! the `mq-hotpath-rank-audit` (static sticky) and
//! `mq-hotpath-adaptive-audit` (adaptive) scenarios with history
//! recording on: the checker-exact dequeue ranks must stay within the
//! policy envelope each backend reports (`O(s·m)`, observed-s for
//! adaptive), and the resulting metrics are embedded in the JSON.
//!
//! The **substrate head-to-head** runs the insert-heavy contended cell
//! (`mq-hotpath-insert-heavy`) on all three per-queue substrates —
//! packed lock, lock-free claim/drain, flat combining — at 8 and 16
//! threads (override with `--threads` or `DLZ_BENCH_THREADS=8,16`),
//! reporting each substrate's gain over the packed lock and, when the
//! lock-free substrate misses its 10% target at the low point, the
//! crossover thread count where it starts winning. The
//! `mq-substrate-lockfree-audit` / `mq-substrate-combining-audit`
//! scenarios replay each new substrate's stamped history through the
//! checker as a rank guardrail.
//!
//! ```text
//! cargo run --release -p dlz-bench --bin mq_hotpath
//! cargo run --release -p dlz-bench --bin mq_hotpath -- --quick --json /tmp/out.json
//! DLZ_BENCH_THREADS=8,16,32 cargo run --release -p dlz-bench --bin mq_hotpath
//! ```

use std::io::Write as _;

use dlz_bench::{Config, Table};
use dlz_core::{DeleteMode, PolicyCfg, SubstrateCfg};
use dlz_workload::backends::MultiQueueBackend;
use dlz_workload::json::JsonObject;
use dlz_workload::{engine, ArrivalShape, Backend, Budget, RunReport, Scenario};

const DEFAULT_OUT: &str = "BENCH_mq_hotpath.json";
/// Acceptance target on the contended dequeue-heavy point.
const TARGET_PCT: f64 = 15.0;
/// Noise band for adaptive-vs-static stickiness throughput.
const NOISE_PCT: f64 = 5.0;
/// Acceptance target for the lock-free substrate on the insert-heavy
/// contended cell (vs the packed lock).
const SUBSTRATE_TARGET_PCT: f64 = 10.0;

/// Applies thread/duration overrides and quick-mode shrinking.
fn customize(mut s: Scenario, cfg: &Config, threads: usize) -> Scenario {
    s.threads = threads;
    if cfg.was_set("seed") {
        s.seed = cfg.seed;
    }
    if let (Budget::Timed(_), true) = (s.budget, cfg.was_set("duration-ms")) {
        s.budget = Budget::Timed(cfg.duration);
    }
    if cfg.quick {
        s.budget = match s.budget {
            Budget::Timed(d) => Budget::Timed(d.min(std::time::Duration::from_millis(50))),
            Budget::OpsPerWorker(n) => Budget::OpsPerWorker((n / 20).max(100)),
        };
        s.prefill = s.prefill.min(5_000);
    }
    s
}

/// One verified engine run against a *fresh* backend (reusing one
/// would carry residual items between rounds and break the
/// conservation check).
fn run_once<B: Backend>(scenario: &Scenario, make: &impl Fn() -> B) -> RunReport {
    let backend = make();
    let r = engine::run(scenario, &backend);
    assert!(
        r.verified(),
        "{} on {} failed verify: {:?}",
        scenario.name,
        r.backend,
        r.verify_error
    );
    r
}

/// The run with median throughput — symmetric against scheduler noise,
/// unlike best-of.
fn median(mut runs: Vec<RunReport>) -> RunReport {
    runs.sort_by(|a, b| a.mops().partial_cmp(&b.mops()).expect("finite mops"));
    runs.swap_remove(runs.len() / 2)
}

/// Runs a history-recording audit scenario and asserts the checker's
/// samples are non-vacuous; returns (report, within_bound, linearizable).
fn run_audit(name: &str, cfg: &Config) -> (RunReport, bool, bool) {
    let mut s = Scenario::named(name).expect("catalog scenario");
    if cfg.quick {
        s.budget = Budget::OpsPerWorker(1_000);
        s.prefill = 500;
    }
    if cfg.was_set("seed") {
        s.seed = cfg.seed;
    }
    let backend = MultiQueueBackend::heap_full(
        4 * s.threads,
        DeleteMode::Strict,
        s.choice_policy,
        1,
        s.substrate,
    );
    eprintln!("running {} ({}) ...", s.name, backend.name());
    let r = engine::run(&s, &backend);
    assert!(r.verified(), "audit verify: {:?}", r.verify_error);
    let samples = r.quality.summary.map(|s| s.count).unwrap_or(0);
    assert!(
        samples > 0,
        "{name} produced no rank samples — the envelope would pass vacuously"
    );
    let within = r.quality.get("within_policy_bound") == Some(1.0);
    let linearizable = r.quality.get("linearizable") == Some(1.0);
    (r, within, linearizable)
}

/// Appends `snapshot` to the JSON-array trajectory at `path` (wrapping
/// a pre-trajectory single-object file into an array first).
fn append_snapshot(path: &str, snapshot: &str) -> String {
    let rendered = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim();
            if let Some(body) = trimmed.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
                let body = body.trim();
                if body.is_empty() {
                    format!("[{snapshot}]")
                } else {
                    format!("[{body},{snapshot}]")
                }
            } else if trimmed.starts_with('{') {
                // Legacy single-snapshot file: wrap into a trajectory.
                format!("[{trimmed},{snapshot}]")
            } else {
                format!("[{snapshot}]")
            }
        }
        Err(_) => format!("[{snapshot}]"),
    };
    let mut f = std::fs::File::create(path).expect("create output file");
    f.write_all(rendered.as_bytes()).expect("write output file");
    f.write_all(b"\n").expect("write output file");
    rendered
}

fn main() {
    let cfg = Config::from_args();
    // The contended point: at least 8 workers even on small boxes —
    // oversubscription is part of what the sticky/batched path fixes.
    let threads = if cfg.was_set("threads") {
        *cfg.threads.last().expect("non-empty sweep")
    } else {
        8
    }
    .max(8);
    let rounds = if cfg.quick { 1 } else { 5 };

    let mut table = Table::new(&[
        "scenario",
        "threads",
        "baseline",
        "optimized",
        "mops_base",
        "mops_opt",
        "gain_%",
    ]);
    let mut points: Vec<String> = Vec::new();
    let mut worst_gain = f64::INFINITY;
    // The acceptance target applies to the contended dequeue-heavy point.
    let mut target_gain = f64::NAN;
    // Adaptive-vs-static comparison on the dequeue-heavy shape.
    let mut adaptive_cmp: Option<String> = None;
    let mut adaptive_delta = f64::NAN;
    // The balanced scenario + its optimized median, kept for the
    // telemetry-overhead point below.
    let mut balanced_opt: Option<(Scenario, f64)> = None;

    for name in ["mq-hotpath-dequeue-heavy", "mq-hotpath-balanced"] {
        let scenario = customize(
            Scenario::named(name).expect("catalog scenario"),
            &cfg,
            threads,
        );
        // Ratio C = m/n = 8: plenty of queues per thread, so the
        // baseline's per-op cost is dominated by exactly what the
        // sticky/batched path removes (fresh draws, hint-line reads,
        // per-op lock and publish traffic). Lower ratios shift cost
        // into lock waiting, which batching's longer critical sections
        // do not help.
        let m = 8 * threads;
        let make_base = || MultiQueueBackend::heap(m, DeleteMode::Strict);
        let make_opt = || {
            MultiQueueBackend::heap_policy(
                m,
                DeleteMode::Strict,
                scenario.choice_policy,
                scenario.batch,
            )
        };
        // s_max = the static policy's s, so adaptive can at best match
        // the static camp length and at worst narrows under contention.
        let s_max = match scenario.choice_policy {
            PolicyCfg::Sticky { ops } => ops,
            PolicyCfg::AdaptiveSticky { s_max } => s_max,
            _ => 16,
        };
        let make_adaptive = || {
            MultiQueueBackend::heap_policy(
                m,
                DeleteMode::Strict,
                PolicyCfg::AdaptiveSticky { s_max },
                scenario.batch,
            )
        };
        let compare_adaptive = name == "mq-hotpath-dequeue-heavy";
        // Interleave rounds so slow drifts in machine load hit every
        // configuration equally.
        let mut base_runs = Vec::new();
        let mut opt_runs = Vec::new();
        let mut adaptive_runs = Vec::new();
        for round in 0..rounds {
            eprintln!("running {name} round {}/{rounds} ...", round + 1);
            base_runs.push(run_once(&scenario, &make_base));
            opt_runs.push(run_once(&scenario, &make_opt));
            if compare_adaptive {
                adaptive_runs.push(run_once(&scenario, &make_adaptive));
            }
        }
        let base = median(base_runs);
        let opt = median(opt_runs);

        let gain = (opt.mops() - base.mops()) / base.mops() * 100.0;
        worst_gain = worst_gain.min(gain);
        if name == "mq-hotpath-dequeue-heavy" {
            target_gain = gain;
        }
        if name == "mq-hotpath-balanced" {
            balanced_opt = Some((scenario.clone(), opt.mops()));
        }
        table.row(vec![
            name.to_string(),
            threads.to_string(),
            base.backend.clone(),
            opt.backend.clone(),
            format!("{:.3}", base.mops()),
            format!("{:.3}", opt.mops()),
            format!("{gain:+.1}"),
        ]);

        let mut o = JsonObject::new();
        o.str("scenario", name)
            .u64("threads", threads as u64)
            .str("choice_policy", &scenario.choice_policy.label())
            .u64("batch", scenario.batch as u64)
            .f64("mops_baseline", base.mops())
            .f64("mops_optimized", opt.mops())
            .f64("improvement_pct", gain)
            .bool("meets_target", gain >= TARGET_PCT)
            .raw("baseline", &base.to_json())
            .raw("optimized", &opt.to_json());
        points.push(o.finish());

        if compare_adaptive {
            let adaptive = median(adaptive_runs);
            adaptive_delta = (adaptive.mops() - opt.mops()) / opt.mops() * 100.0;
            table.row(vec![
                format!("{name} (adaptive)"),
                threads.to_string(),
                opt.backend.clone(),
                adaptive.backend.clone(),
                format!("{:.3}", opt.mops()),
                format!("{:.3}", adaptive.mops()),
                format!("{adaptive_delta:+.1}"),
            ]);
            let mut a = JsonObject::new();
            a.str("scenario", name)
                .str("static_policy", &scenario.choice_policy.label())
                .str(
                    "adaptive_policy",
                    &PolicyCfg::AdaptiveSticky { s_max }.label(),
                )
                .f64("mops_static", opt.mops())
                .f64("mops_adaptive", adaptive.mops())
                .f64("adaptive_vs_static_pct", adaptive_delta)
                .bool("within_noise", adaptive_delta.abs() <= NOISE_PCT)
                .raw("adaptive", &adaptive.to_json());
            adaptive_cmp = Some(a.finish());
        }
    }

    // Substrate head-to-head: the insert-heavy contended cell on the
    // packed-lock, lock-free and flat-combining substrates at every
    // comparison thread count (default 8 and 16; `DLZ_BENCH_THREADS`
    // or `--threads` override). Insert is where the substrates differ
    // most: the lock-free path turns it into one CAS push onto the
    // pending stack, while the packed lock still round-trips the
    // header word per op.
    let mut sub_threads: Vec<usize> = match std::env::var("DLZ_BENCH_THREADS") {
        Ok(v) => {
            let parsed: Vec<usize> = v
                .split(',')
                .filter(|p| !p.trim().is_empty())
                .filter_map(|p| p.trim().parse().ok())
                .filter(|&t| t >= 1)
                .collect();
            if parsed.is_empty() {
                eprintln!(
                    "warning: DLZ_BENCH_THREADS='{v}' has no usable thread counts; using 8,16"
                );
                vec![8, 16]
            } else {
                parsed
            }
        }
        Err(_) if cfg.was_set("threads") => cfg.threads.clone(),
        Err(_) => vec![8, 16],
    };
    sub_threads.sort_unstable();
    sub_threads.dedup();
    let mut substrate_points: Vec<String> = Vec::new();
    // Gain of the lock-free substrate at the lowest compared thread
    // count (the acceptance point) and the best gain anywhere.
    let mut lockfree_low_gain = f64::NAN;
    let mut lockfree_best_gain = f64::NEG_INFINITY;
    // Lowest thread count where lock-free clears its target — recorded
    // honestly even when the low point misses.
    let mut lockfree_crossover: Option<usize> = None;
    for &t in &sub_threads {
        let scenario = customize(
            Scenario::named("mq-hotpath-insert-heavy").expect("catalog scenario"),
            &cfg,
            t,
        );
        let m = 8 * t;
        let mut runs: Vec<Vec<RunReport>> = vec![Vec::new(); 3];
        for round in 0..rounds {
            eprintln!(
                "running substrate head-to-head t={t} round {}/{rounds} ...",
                round + 1
            );
            for (i, sub) in SubstrateCfg::all().into_iter().enumerate() {
                let make = || {
                    MultiQueueBackend::heap_full(
                        m,
                        DeleteMode::Strict,
                        scenario.choice_policy,
                        scenario.batch,
                        sub,
                    )
                };
                runs[i].push(run_once(&scenario, &make));
            }
        }
        let meds: Vec<(SubstrateCfg, RunReport)> = SubstrateCfg::all()
            .into_iter()
            .zip(runs.into_iter().map(median))
            .collect();
        let locked_mops = meds[0].1.mops();
        let lf_gain = (meds[1].1.mops() - locked_mops) / locked_mops * 100.0;
        let fc_gain = (meds[2].1.mops() - locked_mops) / locked_mops * 100.0;
        for (label, i, gain) in [("lockfree", 1usize, lf_gain), ("combining", 2, fc_gain)] {
            table.row(vec![
                format!("{} ({label})", scenario.name),
                t.to_string(),
                meds[0].1.backend.clone(),
                meds[i].1.backend.clone(),
                format!("{locked_mops:.3}"),
                format!("{:.3}", meds[i].1.mops()),
                format!("{gain:+.1}"),
            ]);
        }
        let mut o = JsonObject::new();
        o.str("scenario", &scenario.name)
            .u64("threads", t as u64)
            .str("choice_policy", &scenario.choice_policy.label())
            .u64("batch", scenario.batch as u64)
            .f64("mops_locked", locked_mops)
            .f64("mops_lockfree", meds[1].1.mops())
            .f64("mops_combining", meds[2].1.mops())
            .f64("lockfree_gain_pct", lf_gain)
            .f64("combining_gain_pct", fc_gain)
            .bool("lockfree_meets_target", lf_gain >= SUBSTRATE_TARGET_PCT)
            .raw("locked", &meds[0].1.to_json())
            .raw("lockfree", &meds[1].1.to_json())
            .raw("combining", &meds[2].1.to_json());
        substrate_points.push(o.finish());
        if lockfree_low_gain.is_nan() {
            lockfree_low_gain = lf_gain;
        }
        lockfree_best_gain = lockfree_best_gain.max(lf_gain);
        if lf_gain >= SUBSTRATE_TARGET_PCT && lockfree_crossover.is_none() {
            lockfree_crossover = Some(t);
        }
    }

    // Telemetry-overhead point: the optimized balanced configuration
    // with interval snapshots off vs on. "Off" must match the optimized
    // median above within noise (the interval tracker is one untaken
    // branch per op when disabled); snapshots at the configured
    // interval (default 100 ms) must cost at most a few percent.
    let (telemetry_scenario, opt_mops) = balanced_opt.expect("balanced scenario ran");
    let interval = cfg.telemetry_interval;
    let mut on_scenario = telemetry_scenario.clone();
    on_scenario.telemetry_interval = Some(interval);
    let telemetry_m = 8 * threads;
    let make_telem = || {
        MultiQueueBackend::heap_policy(
            telemetry_m,
            DeleteMode::Strict,
            telemetry_scenario.choice_policy,
            telemetry_scenario.batch,
        )
    };
    let mut off_runs = Vec::new();
    let mut on_runs = Vec::new();
    for round in 0..rounds {
        eprintln!(
            "running telemetry overhead round {}/{rounds} ...",
            round + 1
        );
        off_runs.push(run_once(&telemetry_scenario, &make_telem));
        on_runs.push(run_once(&on_scenario, &make_telem));
    }
    let off = median(off_runs);
    let on = median(on_runs);
    let off_delta = (off.mops() - opt_mops) / opt_mops * 100.0;
    let snapshot_overhead = (off.mops() - on.mops()) / off.mops() * 100.0;
    let intervals_recorded = on
        .telemetry
        .as_ref()
        .map(|t| t.intervals.len())
        .unwrap_or(0);
    table.row(vec![
        format!("{} (telemetry)", telemetry_scenario.name),
        threads.to_string(),
        "telemetry off".to_string(),
        format!("{}ms snapshots", interval.as_millis()),
        format!("{:.3}", off.mops()),
        format!("{:.3}", on.mops()),
        format!("{:+.1}", -snapshot_overhead),
    ]);
    let telemetry_point = {
        let mut t = JsonObject::new();
        t.str("scenario", &telemetry_scenario.name)
            .u64("threads", threads as u64)
            .u64("interval_ms", interval.as_millis() as u64)
            .f64("mops_telemetry_off", off.mops())
            .f64("mops_telemetry_on", on.mops())
            .f64("off_vs_optimized_pct", off_delta)
            .f64("snapshot_overhead_pct", snapshot_overhead)
            .u64("intervals_recorded", intervals_recorded as u64)
            .bool("off_within_noise", off_delta.abs() <= 1.0)
            .bool("on_within_budget", snapshot_overhead <= 5.0);
        t.finish()
    };

    // Faults-off overhead point: the optimized balanced configuration
    // runs through the chaos gate in every engine loop — one untaken
    // branch per op when no fault plan is armed. "Off" must match the
    // optimized median above within 1% (the ≤1%-when-disabled budget
    // the fault hooks were designed to); an armed-but-inert plan
    // (`slow:0:0` — zero-microsecond delays) additionally prices the
    // per-op fault check + progress counter + watchdog when chaos IS
    // requested.
    let faults_off_scenario = telemetry_scenario.clone();
    let mut armed_scenario = telemetry_scenario.clone();
    armed_scenario.faults = Some("slow:0:0".parse().expect("inert fault plan"));
    let mut faults_off_runs = Vec::new();
    let mut armed_runs = Vec::new();
    for round in 0..rounds {
        eprintln!("running faults overhead round {}/{rounds} ...", round + 1);
        faults_off_runs.push(run_once(&faults_off_scenario, &make_telem));
        armed_runs.push(run_once(&armed_scenario, &make_telem));
    }
    let faults_off = median(faults_off_runs);
    let armed = median(armed_runs);
    let faults_off_delta = (faults_off.mops() - opt_mops) / opt_mops * 100.0;
    let armed_overhead = (faults_off.mops() - armed.mops()) / faults_off.mops() * 100.0;
    table.row(vec![
        format!("{} (faults)", faults_off_scenario.name),
        threads.to_string(),
        "faults off".to_string(),
        "armed inert plan".to_string(),
        format!("{:.3}", faults_off.mops()),
        format!("{:.3}", armed.mops()),
        format!("{:+.1}", -armed_overhead),
    ]);
    let faults_point = {
        let mut fo = JsonObject::new();
        fo.str("scenario", &faults_off_scenario.name)
            .u64("threads", threads as u64)
            .f64("mops_faults_off", faults_off.mops())
            .f64("mops_faults_armed_inert", armed.mops())
            .f64("off_vs_optimized_pct", faults_off_delta)
            .f64("armed_overhead_pct", armed_overhead)
            .bool("off_within_budget", faults_off_delta.abs() <= 1.0);
        fo.finish()
    };

    // Client-driver overhead point: the optimized balanced
    // configuration under the plain closed loop vs the simulated-client
    // frontend with one self-paced client per worker. Self-paced
    // clients reschedule at completion, so the workload is the closed
    // loop plus the timer wheel, per-client RNG streams and the
    // queueing/service latency split — the point prices exactly that
    // frontend machinery.
    let closed_scenario = telemetry_scenario.clone();
    let mut driven_scenario = telemetry_scenario.clone();
    driven_scenario.clients = threads;
    driven_scenario.arrival_shape = ArrivalShape::SelfPaced;
    let mut closed_runs = Vec::new();
    let mut driven_runs = Vec::new();
    for round in 0..rounds {
        eprintln!(
            "running client-driver overhead round {}/{rounds} ...",
            round + 1
        );
        closed_runs.push(run_once(&closed_scenario, &make_telem));
        driven_runs.push(run_once(&driven_scenario, &make_telem));
    }
    let closed = median(closed_runs);
    let driven = median(driven_runs);
    let client_overhead = (closed.mops() - driven.mops()) / closed.mops() * 100.0;
    table.row(vec![
        format!("{} (clients)", closed_scenario.name),
        threads.to_string(),
        "closed loop".to_string(),
        format!("{} self-paced clients", driven_scenario.clients),
        format!("{:.3}", closed.mops()),
        format!("{:.3}", driven.mops()),
        format!("{:+.1}", -client_overhead),
    ]);
    let clients_point = {
        let mut c = JsonObject::new();
        c.str("scenario", &closed_scenario.name)
            .u64("threads", threads as u64)
            .u64("clients", driven_scenario.clients as u64)
            .str("arrival_shape", &driven_scenario.arrival_shape.label())
            .f64("mops_closed_loop", closed.mops())
            .f64("mops_client_driver", driven.mops())
            .f64("client_driver_overhead_pct", client_overhead)
            .bool("within_budget", client_overhead <= 20.0);
        c.finish()
    };

    // Rank guardrails: checker-exact dequeue ranks must sit inside the
    // envelope each policy reports (O(s·m) static, observed-s adaptive).
    let (audit, within, linearizable) = run_audit("mq-hotpath-rank-audit", &cfg);
    let (adaptive_audit, adaptive_within, adaptive_linearizable) =
        run_audit("mq-hotpath-adaptive-audit", &cfg);
    // The new substrates get the same treatment: their stamped
    // histories must replay checker-linearizable with exact dequeue
    // ranks inside the policy envelope.
    let (lf_audit, lf_within, lf_linearizable) = run_audit("mq-substrate-lockfree-audit", &cfg);
    let (fc_audit, fc_within, fc_linearizable) = run_audit("mq-substrate-combining-audit", &cfg);

    let mut root = JsonObject::new();
    root.str("bench", "mq_hotpath")
        .str(
            "change",
            "lock-free & flat-combining PQ substrates: no lock bit on the contended insert path",
        )
        .u64("threads", threads as u64)
        .f64("target_improvement_pct", TARGET_PCT)
        .f64("dequeue_heavy_improvement_pct", target_gain)
        .bool("meets_target", target_gain >= TARGET_PCT)
        .f64("worst_improvement_pct", worst_gain)
        .f64("adaptive_vs_static_pct", adaptive_delta)
        .raw("points", &dlz_workload::json::array(&points))
        .raw(
            "substrate_comparison",
            &dlz_workload::json::array(&substrate_points),
        )
        .f64("substrate_target_pct", SUBSTRATE_TARGET_PCT)
        .f64("lockfree_insert_heavy_gain_pct", lockfree_low_gain)
        .f64("lockfree_best_gain_pct", lockfree_best_gain)
        .bool(
            "lockfree_meets_substrate_target",
            lockfree_best_gain >= SUBSTRATE_TARGET_PCT,
        );
    match lockfree_crossover {
        Some(t) => root.u64("lockfree_crossover_threads", t as u64),
        None => root.null("lockfree_crossover_threads"),
    };
    root.raw("telemetry_overhead", &telemetry_point)
        .raw("faults_overhead", &faults_point)
        .raw("client_driver_overhead", &clients_point);
    if let Some(a) = &adaptive_cmp {
        root.raw("adaptive_vs_static", a);
    }
    root.raw("rank_audit", &audit.to_json())
        .bool("rank_within_policy_bound", within)
        .bool("rank_audit_linearizable", linearizable)
        .raw("adaptive_rank_audit", &adaptive_audit.to_json())
        .bool("adaptive_rank_within_bound", adaptive_within)
        .bool("adaptive_rank_audit_linearizable", adaptive_linearizable)
        .raw("lockfree_rank_audit", &lf_audit.to_json())
        .bool("lockfree_rank_within_bound", lf_within)
        .bool("lockfree_rank_audit_linearizable", lf_linearizable)
        .raw("combining_rank_audit", &fc_audit.to_json())
        .bool("combining_rank_within_bound", fc_within)
        .bool("combining_rank_audit_linearizable", fc_linearizable);
    let snapshot = root.finish();

    let path = cfg.json.clone().unwrap_or_else(|| DEFAULT_OUT.to_string());
    append_snapshot(&path, &snapshot);
    eprintln!("appended snapshot to {path}");

    eprintln!();
    eprint!("{}", table.render());
    for (label, r, w, l) in [
        ("static", &audit, within, linearizable),
        (
            "adaptive",
            &adaptive_audit,
            adaptive_within,
            adaptive_linearizable,
        ),
        ("lockfree", &lf_audit, lf_within, lf_linearizable),
        ("combining", &fc_audit, fc_within, fc_linearizable),
    ] {
        let mean = r.quality.summary.map(|s| s.mean).unwrap_or(0.0);
        let bound = r.quality.get("rank_bound_policy").unwrap_or(0.0);
        eprintln!(
            "{label} rank audit: mean={mean:.1} bound={bound:.1} within={w} linearizable={l}"
        );
    }
    if !within
        || !linearizable
        || !adaptive_within
        || !adaptive_linearizable
        || !lf_within
        || !lf_linearizable
        || !fc_within
        || !fc_linearizable
    {
        eprintln!("RANK GUARDRAIL VIOLATED");
        std::process::exit(1);
    }
    if target_gain < TARGET_PCT {
        eprintln!(
            "note: dequeue-heavy improvement {target_gain:.1}% below the {TARGET_PCT}% target on this machine"
        );
    }
    match lockfree_crossover {
        Some(t) if lockfree_low_gain < SUBSTRATE_TARGET_PCT => eprintln!(
            "note: lock-free substrate crosses its {SUBSTRATE_TARGET_PCT}% target at {t} threads \
             (low point {lockfree_low_gain:+.1}%)"
        ),
        Some(_) => {}
        None => eprintln!(
            "note: lock-free substrate best gain {lockfree_best_gain:+.1}% stays below the \
             {SUBSTRATE_TARGET_PCT}% target at every compared thread count on this machine"
        ),
    }
    if adaptive_delta.abs() > NOISE_PCT {
        eprintln!(
            "note: adaptive stickiness {adaptive_delta:+.1}% vs static (outside the ±{NOISE_PCT}% noise band on this machine)"
        );
    }
    eprintln!(
        "telemetry: off {:.3} mops ({off_delta:+.1}% vs optimized), {} ms snapshots {:.3} mops ({snapshot_overhead:.1}% overhead, {intervals_recorded} intervals)",
        off.mops(),
        interval.as_millis(),
        on.mops(),
    );
    if snapshot_overhead > 5.0 {
        eprintln!(
            "note: {} ms snapshots cost {snapshot_overhead:.1}% on this machine (above the 5% budget)",
            interval.as_millis()
        );
    }
    eprintln!(
        "faults: off {:.3} mops ({faults_off_delta:+.1}% vs optimized), armed inert {:.3} mops ({armed_overhead:.1}% overhead)",
        faults_off.mops(),
        armed.mops(),
    );
    if faults_off_delta.abs() > 1.0 {
        eprintln!(
            "note: faults-off point {faults_off_delta:+.1}% vs optimized (outside the ±1% disabled-hook budget on this machine)"
        );
    }
    eprintln!(
        "clients: closed loop {:.3} mops, {} self-paced clients {:.3} mops ({client_overhead:.1}% overhead)",
        closed.mops(),
        driven_scenario.clients,
        driven.mops(),
    );
    if client_overhead > 20.0 {
        eprintln!(
            "note: client driver costs {client_overhead:.1}% on this machine (above the 20% budget)"
        );
    }
}
