//! **Ablation: relaxed-clock parameters (m, Δ)** — the trade-off behind
//! Section 8's "for some settings of parameters".
//!
//! The safety margin Δ must exceed the MultiCounter's skew (≈ m·gap ≈
//! O(m log m)), but every future-stamped object is unreadable until the
//! clock advances Δ past its stamp, so the *cost* of the relaxed clock
//! grows superlinearly in Δ: the future-window covers ~2Δ/M of the
//! array, and each hit costs ~Δ ticks of waiting. Small counters (m ≈
//! 2n) with tight margins are therefore the right setting at laptop
//! scale, and this binary shows the whole curve.
//!
//! ```text
//! cargo run -p dlz-bench --release --bin clock_tuning
//! ```

use std::sync::Mutex;
use std::time::Instant;

use dlz_bench::tables::f3;
use dlz_bench::{Config, Table};
use dlz_core::rng::{Rng64, Xoshiro256};
use dlz_core::MultiCounter;
use dlz_stm::{ClockStrategy, ExactClock, Gv4Clock, Gv5Clock, RelaxedClock, Tl2, TxStats};

fn run<C: ClockStrategy>(stm: &Tl2<C>, threads: usize, per: usize, seed: u64) -> (f64, TxStats) {
    let all = Mutex::new(TxStats::default());
    let objects = stm.array().len() as u64;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let stm = &stm;
            let all = &all;
            s.spawn(move || {
                let mut h = stm.thread();
                let mut rng = Xoshiro256::new(seed + t as u64);
                for _ in 0..per {
                    let i = rng.bounded(objects) as usize;
                    let j = rng.bounded(objects) as usize;
                    h.run(|tx| {
                        tx.add(i, 1)?;
                        tx.add(j, 1)?;
                        Ok(())
                    });
                }
                all.lock().unwrap().merge(&h.stats());
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = all.into_inner().unwrap();
    assert_eq!(
        stm.array().sum_quiescent(),
        2 * stats.commits as u128,
        "safety check"
    );
    (stats.commits as f64 / elapsed / 1e6, stats)
}

fn main() {
    let cfg = Config::from_args();
    let threads = *cfg.threads.last().expect("non-empty");
    let objects = 100_000;
    let per = cfg.steps(100_000) as usize;

    println!(
        "Relaxed-clock parameter sweep: {threads} threads, {objects} objects, {per} txns/thread\n"
    );
    let mut table = Table::new(&["clock", "m", "delta", "Mtx/s", "abort%", "future aborts"]);

    let exact = Tl2::new(objects, ExactClock::new());
    let (mops, stats) = run(&exact, threads, per, cfg.seed);
    table.row(vec![
        "exact(GV1)".into(),
        "-".into(),
        "-".into(),
        f3(mops),
        format!("{:.2}", stats.abort_rate() * 100.0),
        stats.future_version.to_string(),
    ]);

    // TL2's own improved clocks, for context: the deterministic points
    // on the same traffic-vs-aborts trade-off curve the MultiCounter
    // clock explores probabilistically.
    let gv4 = Tl2::new(objects, Gv4Clock::new());
    let (mops, stats) = run(&gv4, threads, per, cfg.seed);
    table.row(vec![
        "gv4(CAS)".into(),
        "-".into(),
        "-".into(),
        f3(mops),
        format!("{:.2}", stats.abort_rate() * 100.0),
        stats.future_version.to_string(),
    ]);
    let gv5 = Tl2::new(objects, Gv5Clock::new());
    let (mops, stats) = run(&gv5, threads, per, cfg.seed);
    table.row(vec![
        "gv5(inc-on-abort)".into(),
        "-".into(),
        "-".into(),
        f3(mops),
        format!("{:.2}", stats.abort_rate() * 100.0),
        stats.future_version.to_string(),
    ]);

    for (m_factor, kappa) in [(8usize, 4.0), (4, 2.0), (2, 3.0), (2, 1.0), (1, 1.0)] {
        let m = (m_factor * threads).max(2);
        let delta = RelaxedClock::suggested_delta(m, kappa);
        let stm = Tl2::new(objects, RelaxedClock::new(MultiCounter::new(m), delta));
        let (mops, stats) = run(&stm, threads, per, cfg.seed);
        table.row(vec![
            "relaxed".into(),
            m.to_string(),
            delta.to_string(),
            f3(mops),
            format!("{:.2}", stats.abort_rate() * 100.0),
            stats.future_version.to_string(),
        ]);
    }
    table.print();
    println!("\nExpected shape: throughput falls and future-version aborts climb as Δ grows;");
    println!("the knee sits where the future-window (2Δ/M of objects) times the hole wait");
    println!("(~Δ clock ticks) starts to dominate. All rows pass the sum == 2·commits check.");
}
