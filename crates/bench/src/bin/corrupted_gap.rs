//! **Section 6.3 robustness** — the ε-corrupted two-choice process.
//!
//! The core of the paper's proof is that a two-choice process in which
//! an ε fraction of updates is *adversarially* redirected to the more
//! loaded bin — in any order, including bursts — still keeps an
//! O(log m) gap. This binary sweeps ε and the corruption pattern and
//! reports the resulting gaps, including the divergent ε = 1 control.
//!
//! ```text
//! cargo run -p dlz-bench --release --bin corrupted_gap
//! ```

use dlz_bench::tables::f3;
use dlz_bench::{Config, Table};
use dlz_sim::{BallsProcess, CorruptedTwoChoice, CorruptionPattern};

fn main() {
    let cfg = Config::from_args();
    let steps = cfg.steps(2_000_000);
    let m = 256usize;
    let lnm = (m as f64).ln();

    println!("Section 6.3: epsilon-corrupted two-choice (m = {m}, {steps} steps)");
    println!("corrupted step = insert into the MORE loaded of the two choices\n");

    let mut table = Table::new(&["pattern", "eps", "max_gap", "gap/ln(m)", "corrupted%"]);

    let patterns: Vec<(String, CorruptionPattern)> = vec![
        ("none".into(), CorruptionPattern::None),
        ("iid".into(), CorruptionPattern::Iid { eps: 1.0 / 64.0 }),
        ("iid".into(), CorruptionPattern::Iid { eps: 1.0 / 16.0 }),
        ("iid".into(), CorruptionPattern::Iid { eps: 1.0 / 4.0 }),
        (
            "burst(n per Cn)".into(),
            CorruptionPattern::Burst {
                period: 16 * 32,
                burst: 32,
            },
        ),
        (
            "burst(n per Cn)".into(),
            CorruptionPattern::Burst {
                period: 4 * 32,
                burst: 32,
            },
        ),
        ("iid (control)".into(), CorruptionPattern::Iid { eps: 1.0 }),
    ];

    for (name, pattern) in patterns {
        let mut p = CorruptedTwoChoice::new(m, pattern, cfg.seed);
        // Sample the gap along the way; report the worst.
        let mut max_gap: f64 = 0.0;
        let chunk = 10_000.min(steps);
        let mut done = 0;
        while done < steps {
            p.run(chunk.min(steps - done));
            done += chunk;
            max_gap = max_gap.max(p.bins().gap());
        }
        table.row(vec![
            name,
            f3(pattern.rate()),
            f3(max_gap),
            f3(max_gap / lnm),
            f3(100.0 * p.corrupted_steps() as f64 / steps as f64),
        ]);
    }
    table.print();
    println!("\nExpected shape: gap/ln(m) = O(1) for small eps (iid AND bursty — the order");
    println!("does not matter, as the analysis requires); eps = 1 diverges (control).");
}
