//! **Figure 1(b)** — Quality of the concurrent counter in a
//! single-threaded execution: returned value vs true count, and the
//! maximum gap between cells, as increments accumulate (m = 64, as in
//! the paper).
//!
//! ```text
//! cargo run -p dlz-bench --release --bin fig1b
//! ```

use dlz_bench::{Config, Table};
use dlz_core::rng::Xoshiro256;
use dlz_core::{MultiCounter, RelaxedCounter};

fn main() {
    let cfg = Config::from_args();
    let m = 64usize;
    let total = cfg.steps(2_000_000);
    let checkpoints = 20u64;

    println!("Figure 1(b): counter quality, single thread, m = {m}");
    println!("x axis: #increments; series: relaxed read value, true count, max cell gap\n");

    let mc = MultiCounter::new(m);
    let mut rng = Xoshiro256::new(cfg.seed);
    let mut read_rng = Xoshiro256::new(cfg.seed ^ 0xabcdef);

    let mut table = Table::new(&[
        "increments",
        "read()",
        "true",
        "abs_err",
        "err_bound(m·ln m)",
        "max_gap",
    ]);
    let step = total / checkpoints;
    let bound = (m as f64) * (m as f64).ln();
    let mut worst_err = 0u64;
    let mut worst_gap = 0u64;
    for k in 1..=checkpoints {
        for _ in 0..step {
            mc.increment_with(&mut rng);
        }
        let true_count = mc.read_exact();
        let read = mc.read_with(&mut read_rng);
        let err = read.abs_diff(true_count);
        let gap = mc.max_gap();
        worst_err = worst_err.max(err);
        worst_gap = worst_gap.max(gap);
        table.row(vec![
            (k * step).to_string(),
            read.to_string(),
            true_count.to_string(),
            err.to_string(),
            format!("{bound:.0}"),
            gap.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nworst abs_err observed: {worst_err} (Lemma 6.8 scale m·ln m = {bound:.0}); worst gap: {worst_gap}"
    );
    println!(
        "Expected shape (paper): read tracks the true count; gap stays flat (no growth with t)."
    );
}
