//! **Figure 1(b)** — Quality of the concurrent counter in a
//! single-threaded execution: read deviation from the true count, and
//! the maximum gap between cells, as increments accumulate (m = 64, as
//! in the paper).
//!
//! The checkpoint sequence is a [`SweepSpec`] `seeds` axis driven
//! through `engine::run_sweep_shared`: the same MultiCounter backend
//! accumulates across all cells, exactly like the original long
//! single-threaded run; each cell samples read deviation on every read
//! and the backend reports the cell gap.
//!
//! ```text
//! cargo run -p dlz-bench --release --bin fig1b
//! ```

use dlz_bench::{Config, Table};
use dlz_workload::backends::CounterBackend;
use dlz_workload::{engine, Budget, Family, OpMix, Scenario, SweepSpec};

fn main() {
    let cfg = Config::from_args();
    let m = 64usize;
    let total = cfg.steps(2_000_000);
    let checkpoints = 20u64;
    let step = total / checkpoints;

    println!("Figure 1(b): counter quality, single thread, m = {m}");
    println!("x axis: #increments; series: read deviation from true count, max cell gap\n");

    // One backend instance accumulates across checkpoint cells.
    let backend = CounterBackend::multicounter(m);
    let bound = (m as f64) * (m as f64).ln();

    // ~5% reads, every one quality-sampled against the exact sum; each
    // checkpoint re-seeds so the drawn streams differ cell to cell.
    let base = Scenario::builder("fig1b-checkpoint", Family::Counter)
        .about("sequential quality checkpoint")
        .threads(1)
        .budget(Budget::OpsPerWorker(step))
        .mix(OpMix::new(95, 0, 5))
        .quality_every(1)
        .build();
    let seeds: Vec<u64> = (1..=checkpoints).map(|k| cfg.seed ^ k).collect();
    let spec = SweepSpec::new(base).seeds(&seeds);
    let reports = engine::run_sweep_shared(&spec, &backend);

    let mut table = Table::new(&[
        "increments",
        "mean_dev",
        "max_dev",
        "err_bound(m·ln m)",
        "max_gap",
    ]);
    let mut worst_err = 0f64;
    let mut worst_gap = 0f64;
    for report in &reports {
        assert!(report.verified(), "{:?}", report.verify_error);
        let q = &report.quality;
        let dev = q.summary.expect("reads sampled");
        let gap = q.get("max_gap").unwrap_or(0.0);
        worst_err = worst_err.max(dev.max);
        worst_gap = worst_gap.max(gap);
        table.row(vec![
            // The shared backend's exact sum *after* this cell — the
            // accumulated increment count the x axis plots.
            report.residual.to_string(),
            format!("{:.1}", dev.mean),
            format!("{:.0}", dev.max),
            format!("{bound:.0}"),
            format!("{gap:.0}"),
        ]);
    }
    table.print();
    println!(
        "\nworst read deviation observed: {worst_err:.0} (Lemma 6.8 scale m·ln m = {bound:.0}); worst gap: {worst_gap:.0}"
    );
    println!(
        "Expected shape (paper): deviation stays within the m·ln m scale; gap stays flat (no growth with t)."
    );
}
