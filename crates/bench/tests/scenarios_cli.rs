//! End-to-end tests of the `scenarios` binary's stdout contract:
//! stdout carries exactly one JSON document (the report array) and
//! nothing else — every diagnostic, warning, and summary table goes to
//! stderr — so `scenarios ... | jq` style pipelines never break, even
//! when the run raises warnings.

use std::process::{Command, Output};

use dlz_core::json;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_scenarios")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn scenarios")
}

/// Parses stdout as a single JSON document and returns the report
/// array; panics with context if anything but JSON landed there.
fn reports_from_stdout(out: &Output) -> Vec<json::JsonValue> {
    let stdout = String::from_utf8(out.stdout.clone()).expect("utf8 stdout");
    let value = json::parse(&stdout).unwrap_or_else(|e| {
        panic!(
            "stdout is not pure JSON ({e:?}); first 200 bytes: {:?}",
            &stdout[..stdout.len().min(200)]
        )
    });
    value
        .as_array()
        .unwrap_or_else(|| panic!("stdout JSON is not an array"))
        .to_vec()
}

#[test]
fn stdout_is_pure_json_even_when_warnings_fire() {
    // --duration-ms on a fixed-op scenario triggers the ineffective-
    // override warning; the warning must land on stderr, leaving stdout
    // parseable as one JSON array.
    let out = run(&[
        "--scenario",
        "queue-balanced-audit",
        "--duration-ms",
        "50",
        "--quick",
    ]);
    assert!(out.status.success(), "exit: {:?}", out.status);
    let stderr = String::from_utf8(out.stderr.clone()).expect("utf8 stderr");
    assert!(
        stderr.contains("warning: --duration-ms has no effect"),
        "expected the ineffective-override warning on stderr, got: {stderr}"
    );
    let reports = reports_from_stdout(&out);
    assert!(!reports.is_empty());
    for r in &reports {
        assert_eq!(
            r.get("scenario").and_then(|v| v.as_str()),
            Some("queue-balanced-audit")
        );
        assert_eq!(r.get("verified").and_then(|v| v.as_bool()), Some(true));
    }
}

#[test]
fn telemetry_runs_keep_stdout_pure_and_embed_series() {
    let out = run(&[
        "--scenario",
        "queue-balanced",
        "--telemetry-interval-ms",
        "5",
        "--quick",
    ]);
    assert!(out.status.success(), "exit: {:?}", out.status);
    let reports = reports_from_stdout(&out);
    assert!(!reports.is_empty());
    for r in &reports {
        let telemetry = r
            .get("telemetry")
            .unwrap_or_else(|| panic!("report missing telemetry block"));
        assert_eq!(
            telemetry.get("interval_ms").and_then(|v| v.as_u64()),
            Some(5)
        );
        let series = telemetry
            .get("series")
            .and_then(|v| v.as_array())
            .expect("series array");
        assert!(!series.is_empty());
        // Per-interval op counts must sum exactly to the report totals.
        let total: u64 = series
            .iter()
            .map(|iv| iv.get("updates").and_then(|v| v.as_u64()).unwrap_or(0))
            .sum();
        let reported = r
            .get("throughput")
            .and_then(|t| t.get("updates"))
            .and_then(|v| v.as_u64())
            .expect("updates");
        assert_eq!(total, reported, "interval updates drifted from totals");
    }
}

#[test]
fn telemetry_export_writes_parseable_prometheus_files() {
    let dir = std::env::temp_dir().join(format!("dlz-scenarios-prom-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let out = run(&[
        "--scenario",
        "queue-balanced",
        "--telemetry",
        "--quick",
        "--export-histories",
        dir.to_str().expect("utf8 dir"),
    ]);
    assert!(out.status.success(), "exit: {:?}", out.status);
    let _ = reports_from_stdout(&out);
    let cell_dir = dir.join("queue-balanced");
    let mut prom_files = 0;
    for entry in std::fs::read_dir(&cell_dir).expect("export dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "prom") {
            let text = std::fs::read_to_string(&path).expect("read .prom");
            let samples = dlz_workload::parse_prometheus(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert!(!samples.is_empty(), "{}: no samples", path.display());
            prom_files += 1;
        }
    }
    assert!(prom_files >= 2, "expected one .prom per backend");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_scenario_reports_faults_and_exits_1() {
    let out = run(&[
        "--scenario",
        "chaos-stall-audit",
        "--backends",
        "multiqueue-heap",
    ]);
    // A fault casualty is not a clean run: exit 1, but the JSON report
    // (with its faults section) still lands intact on stdout.
    assert_eq!(out.status.code(), Some(1), "exit: {:?}", out.status);
    let reports = reports_from_stdout(&out);
    assert!(!reports.is_empty());
    for r in &reports {
        assert_eq!(r.get("verified").and_then(|v| v.as_bool()), Some(true));
        let faults = r.get("faults").expect("faults section");
        assert_eq!(faults.get("aborted").and_then(|v| v.as_bool()), Some(false));
        let workers = faults
            .get("workers")
            .and_then(|v| v.as_array())
            .expect("workers array");
        assert_eq!(workers.len(), 4);
        let panicked: Vec<_> = workers
            .iter()
            .filter(|w| w.get("outcome").and_then(|v| v.as_str()) == Some("panicked"))
            .collect();
        assert_eq!(panicked.len(), 1, "exactly the faulted worker dies");
        assert_eq!(panicked[0].get("id").and_then(|v| v.as_u64()), Some(1));
    }
    let stderr = String::from_utf8(out.stderr.clone()).expect("utf8 stderr");
    assert!(stderr.contains("WORKER PANICKED"), "{stderr}");
}

#[test]
fn bare_catalog_run_skips_chaos_presets() {
    // A backend filter that matches nothing keeps this cheap (exit 2,
    // no measurements) while still exercising preset selection.
    let out = run(&["--quick", "--backends", "no-such-backend-zzz"]);
    assert_eq!(out.status.code(), Some(2), "exit: {:?}", out.status);
    let stderr = String::from_utf8(out.stderr.clone()).expect("utf8 stderr");
    assert!(
        stderr.contains("skipping chaos preset 'chaos-stall-audit'"),
        "chaos presets must be opt-in: {stderr}"
    );
}

#[test]
fn faults_flag_injects_a_plan_and_surfaces_casualties() {
    let out = run(&[
        "--scenario",
        "queue-balanced-audit",
        "--quick",
        "--backends",
        "multiqueue-heap",
        "--faults",
        "panic:0@25",
    ]);
    assert_eq!(out.status.code(), Some(1), "exit: {:?}", out.status);
    let reports = reports_from_stdout(&out);
    assert!(!reports.is_empty());
    for r in &reports {
        assert_eq!(
            r.get("verified").and_then(|v| v.as_bool()),
            Some(true),
            "salvaged runs must still verify conservation"
        );
        let faults = r.get("faults").expect("faults section");
        assert_eq!(
            faults.get("plan").and_then(|v| v.as_str()),
            Some("panic:0@25")
        );
    }
    // A malformed plan is a usage error, before any run starts.
    let out = run(&["--faults", "panic:zero@25"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(out.stdout.is_empty());
}

#[test]
fn unknown_scenario_exits_2_with_empty_stdout() {
    let out = run(&["--scenario", "no-such-scenario"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(out.stdout.is_empty(), "error paths must not pollute stdout");
    let stderr = String::from_utf8(out.stderr.clone()).expect("utf8 stderr");
    assert!(stderr.contains("unknown scenario"), "{stderr}");
}
