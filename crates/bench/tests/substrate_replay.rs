//! Substrate replay round-trips: stamped histories recorded on the
//! lock-free and flat-combining substrates, across **all four** choice
//! policies, must (a) replay checker-linearizable online, (b) survive
//! export → parse → re-export **bit-for-bit**, and (c) pass the
//! `histcheck` binary over the exported tree. Mixed-substrate sweep
//! grids must stay rectangular with correctly-labelled cells.

use std::path::{Path, PathBuf};
use std::process::Command;

use dlz_core::spec::HistoryArtifact;
use dlz_core::{DeleteMode, PolicyCfg, SubstrateCfg};
use dlz_workload::backends::MultiQueueBackend;
use dlz_workload::{engine, Budget, Family, OpMix, Scenario, SweepSpec};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dlz-subreplay-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn all_policies() -> [PolicyCfg; 4] {
    [
        PolicyCfg::TwoChoice,
        PolicyCfg::DChoice { d: 4 },
        PolicyCfg::Sticky { ops: 16 },
        PolicyCfg::AdaptiveSticky { s_max: 8 },
    ]
}

/// Every exported `.histjsonl` under `dir`, depth-first.
fn exported_artifacts(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("read_dir") {
            let p = entry.expect("entry").path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "histjsonl") {
                out.push(p);
            }
        }
    }
    out
}

#[test]
fn new_substrate_histories_replay_bit_for_bit_under_every_policy() {
    let dir = scratch("hist");
    let mut runs = 0usize;
    for sub in [SubstrateCfg::LockFree, SubstrateCfg::Combining] {
        for (pi, policy) in all_policies().into_iter().enumerate() {
            let name = format!("replay-{}-p{pi}", sub.label());
            let s = Scenario::builder(&name, Family::Queue)
                .threads(4)
                .budget(Budget::OpsPerWorker(2_000))
                .mix(OpMix::new(50, 50, 0))
                .prefill(500)
                .seed(0xc0ffee + pi as u64)
                .choice_policy(policy)
                .substrate(sub)
                .record_history(true)
                .export(dir.clone())
                .build();
            let b = MultiQueueBackend::heap_full(8, DeleteMode::Strict, policy, 1, sub);
            let r = engine::run(&s, &b);
            assert!(r.verified(), "{name}: {:?}", r.verify_error);
            assert!(r.export_errors.is_empty(), "{name}: {:?}", r.export_errors);
            assert_eq!(
                r.quality.get("linearizable"),
                Some(1.0),
                "{name} must replay linearizable online"
            );
            runs += 1;
        }
    }
    assert_eq!(runs, 8, "2 substrates x 4 policies");

    // Bit-for-bit: parse → re-serialize must reproduce every exported
    // artifact byte-identically (the replay contract downstream tools
    // rely on).
    let artifacts = exported_artifacts(&dir);
    assert_eq!(artifacts.len(), 8, "one artifact per run: {artifacts:?}");
    for path in &artifacts {
        let text = std::fs::read_to_string(path).expect("read artifact");
        let a = HistoryArtifact::from_json_lines(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            a.to_json_lines(),
            text,
            "{} must round-trip bit-for-bit",
            path.display()
        );
    }

    // The offline checker agrees: histcheck walks the whole tree and
    // passes every artifact.
    let out = Command::new(env!("CARGO_BIN_EXE_histcheck"))
        .arg(&dir)
        .output()
        .expect("spawn histcheck");
    assert!(
        out.status.success(),
        "histcheck failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let verdict = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        verdict.matches("\"linearizable\":true").count(),
        8,
        "one linearizable verdict per artifact: {verdict}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mixed_substrate_sweeps_stay_rectangular_with_labelled_cells() {
    let base = Scenario::builder("sub-grid", Family::Queue)
        .threads(2)
        .budget(Budget::OpsPerWorker(300))
        .mix(OpMix::new(50, 50, 0))
        .prefill(100)
        .build();
    let spec = SweepSpec::new(base)
        .substrates(&SubstrateCfg::all())
        .policies(&[PolicyCfg::TwoChoice, PolicyCfg::Sticky { ops: 8 }]);
    assert_eq!(spec.len(), 6, "3 substrates x 2 policies");
    let cells = spec.cells();
    assert_eq!(cells.len(), 6, "rectangular grid");
    for cell in &cells {
        let label = cell.scenario.substrate.label();
        assert!(
            cell.name.contains(&format!("/sub={label}")),
            "cell '{}' must carry its substrate label",
            cell.name
        );
    }
    // Each substrate appears in exactly as many cells as there are
    // policies — no cell dropped, none duplicated.
    for sub in SubstrateCfg::all() {
        let n = cells.iter().filter(|c| c.scenario.substrate == sub).count();
        assert_eq!(n, 2, "{} cells", sub.label());
    }
    // And the grid actually runs: every (cell x backend) report
    // conserves and verifies on its own substrate.
    let reports = engine::run_sweep(&spec, |cell| {
        vec![Box::new(MultiQueueBackend::heap_full(
            4,
            DeleteMode::Strict,
            cell.scenario.choice_policy,
            1,
            cell.scenario.substrate,
        )) as Box<dyn dlz_workload::Backend>]
    });
    assert_eq!(reports.len(), 6);
    for r in &reports {
        assert!(r.verified(), "{:?}: {:?}", r.cell, r.verify_error);
    }
}
