//! End-to-end tests of the `histcheck` binary: valid artifacts pass
//! with verdict JSON on stdout; corrupt/truncated artifacts fail loudly
//! (exit 2) naming the file and the 1-based line of the damage — never
//! a panic; non-linearizable histories exit 1.

use std::path::PathBuf;
use std::process::{Command, Output};

use dlz_core::spec::history::{Event, History};
use dlz_core::spec::{HistoryArtifact, PqOp};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_histcheck")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dlz-histcheck-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn histcheck")
}

fn ev(label: PqOp, stamp: u64) -> Event<PqOp> {
    Event {
        thread: 0,
        label,
        invoke: stamp * 10,
        update: stamp * 10 + 1,
        response: stamp * 10 + 2,
    }
}

fn valid_artifact() -> String {
    let history = History {
        events: vec![
            ev(PqOp::Insert { priority: 3 }, 0),
            ev(PqOp::Insert { priority: 7 }, 1),
            ev(PqOp::DeleteMin { removed: 7 }, 2), // rank 1
            ev(PqOp::DeleteMin { removed: 3 }, 3),
        ],
    };
    let mut a = HistoryArtifact::pq(history, "two-choice", 1.0, 4);
    a.threads = 1;
    a.cell = Some("t/t=1/policy=two-choice".into());
    a.grid = vec![
        ("t".into(), "1".into()),
        ("policy".into(), "two-choice".into()),
    ];
    a.to_json_lines()
}

#[test]
fn valid_artifact_passes_and_emits_verdict_json() {
    let dir = scratch("valid");
    std::fs::write(dir.join("a.histjsonl"), valid_artifact()).expect("write");
    let json_out = dir.join("check.json");
    let out = run(&["--json", json_out.to_str().unwrap(), dir.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"linearizable\":true",
        "\"kind\":\"pq\"",
        "\"policy\":\"two-choice\"",
        "\"cell\":\"t/t=1/policy=two-choice\"",
        "\"grid\":{\"t\":\"1\",\"policy\":\"two-choice\"}",
        "\"within_bound\":true",
        "\"cost_hist\":",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in {stdout}");
    }
    // --json writes the same array to the file.
    let written = std::fs::read_to_string(&json_out).expect("json file");
    assert_eq!(written.trim(), stdout.trim());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_artifact_fails_loudly_with_line_number() {
    let dir = scratch("corrupt");
    let mut lines: Vec<String> = valid_artifact().lines().map(String::from).collect();
    lines[2] = "{\"thread\":0,\"label\":GARBAGE".into();
    let path = dir.join("bad.histjsonl");
    std::fs::write(&path, lines.join("\n")).expect("write");
    let out = run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad.histjsonl"), "{stderr}");
    assert!(
        stderr.contains("line 3"),
        "must name the damaged line: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_artifact_fails_loudly_not_a_panic() {
    let dir = scratch("truncated");
    let full = valid_artifact();
    let truncated: Vec<&str> = full.lines().take(3).collect();
    let path = dir.join("cut.histjsonl");
    std::fs::write(&path, truncated.join("\n")).expect("write");
    let out = run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("truncated"), "{stderr}");
    assert!(stderr.contains("line 4"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn non_linearizable_history_exits_one() {
    let dir = scratch("verdict");
    // Dequeue of a never-inserted priority: unmappable, verdict fails.
    let history = History {
        events: vec![
            ev(PqOp::Insert { priority: 3 }, 0),
            ev(PqOp::DeleteMin { removed: 99 }, 1),
        ],
    };
    let a = HistoryArtifact::pq(history, "two-choice", 1.0, 4);
    let path = dir.join("bad-verdict.histjsonl");
    std::fs::write(&path, a.to_json_lines()).expect("write");
    let out = run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"linearizable\":false"), "{stdout}");
    assert!(stdout.contains("\"unmappable\":1"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn infinite_envelope_factor_passes_on_verdict_alone() {
    // A policy with no rank bound (e.g. d-choice=1) serializes its
    // envelope factor as null; the engine makes no envelope claim for
    // it, so neither may histcheck — a linearizable artifact must exit
    // 0, not "ENVELOPE EXCEEDED".
    let dir = scratch("inf-factor");
    let history = History {
        events: vec![
            ev(PqOp::Insert { priority: 3 }, 0),
            ev(PqOp::DeleteMin { removed: 3 }, 1),
        ],
    };
    let a = HistoryArtifact::pq(history, "d-choice(d=1)", f64::INFINITY, 4);
    let path = dir.join("unbounded.histjsonl");
    std::fs::write(&path, a.to_json_lines()).expect("write");
    let out = run(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"envelope_factor\":null"), "{stdout}");
    assert!(stdout.contains("\"within_bound\":true"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exceeded_envelope_is_reported_not_fatal() {
    use dlz_core::spec::CounterOp;
    // A counter history whose read deviation blows the 4·scale bound:
    // linearizable (the relaxation maps every read), envelope exceeded.
    let history = History {
        events: vec![
            Event {
                thread: 0,
                label: CounterOp::Inc,
                invoke: 0,
                update: 1,
                response: 2,
            },
            Event {
                thread: 0,
                label: CounterOp::Read { returned: 1_000 },
                invoke: 3,
                update: 4,
                response: 5,
            },
        ],
    };
    let a = HistoryArtifact::counter(history, 2.0 * 2f64.ln());
    let dir = scratch("envelope");
    let path = dir.join("wide.histjsonl");
    std::fs::write(&path, a.to_json_lines()).expect("write");
    let out = run(&[path.to_str().unwrap()]);
    // Verdict holds → exit 0; the exceeded envelope is reported data.
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"linearizable\":true"), "{stdout}");
    assert!(stdout.contains("\"within_bound\":false"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("envelope exceeded"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn symlink_cycles_do_not_overflow_the_walk() {
    let dir = scratch("symlink");
    std::fs::write(dir.join("a.histjsonl"), valid_artifact()).expect("write");
    // A self-referential symlink: following it would recurse forever.
    std::os::unix::fs::symlink(&dir, dir.join("loop")).expect("symlink");
    let out = run(&[dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    // Exactly one artifact found — the symlink was skipped, not walked.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("\"kind\":\"pq\"").count(), 1, "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_two() {
    // No paths at all.
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    // Nonexistent path.
    let out = run(&["/no/such/dlz-path"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // A directory with no artifacts.
    let dir = scratch("empty");
    let out = run(&[dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    std::fs::remove_dir_all(&dir).ok();
}
