//! Criterion micro-benchmarks: TL2 transaction cost by clock strategy.
//!
//! Single-threaded commit latency of the paper's 2-increment
//! transaction, plus read-only transactions — isolating the clock's
//! per-commit cost (FAA vs MultiCounter increment + sample).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlz_core::rng::{Rng64, Xoshiro256};
use dlz_core::MultiCounter;
use dlz_stm::{ExactClock, RelaxedClock, Tl2};

const OBJECTS: usize = 10_000;

fn bench_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("tl2_two_increment_txn");

    let exact = Tl2::new(OBJECTS, ExactClock::new());
    let mut handle = exact.thread();
    let mut rng = Xoshiro256::new(1);
    g.bench_function("exact_clock", |b| {
        b.iter(|| {
            let i = rng.bounded(OBJECTS as u64) as usize;
            let j = rng.bounded(OBJECTS as u64) as usize;
            handle.run(|tx| {
                tx.add(i, 1)?;
                tx.add(j, 1)?;
                Ok(())
            })
        })
    });

    let relaxed = Tl2::new(
        OBJECTS,
        RelaxedClock::new(
            MultiCounter::new(16),
            RelaxedClock::suggested_delta(16, 4.0),
        ),
    );
    let mut handle = relaxed.thread();
    let mut rng = Xoshiro256::new(2);
    g.bench_function("relaxed_clock", |b| {
        b.iter(|| {
            let i = rng.bounded(OBJECTS as u64) as usize;
            let j = rng.bounded(OBJECTS as u64) as usize;
            handle.run(|tx| {
                tx.add(i, 1)?;
                tx.add(j, 1)?;
                Ok(())
            })
        })
    });
    g.finish();
}

fn bench_read_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("tl2_read_only_txn");

    let exact = Tl2::new(OBJECTS, ExactClock::new());
    let mut handle = exact.thread();
    let mut rng = Xoshiro256::new(3);
    g.bench_function("exact_clock_2reads", |b| {
        b.iter(|| {
            let i = rng.bounded(OBJECTS as u64) as usize;
            let j = rng.bounded(OBJECTS as u64) as usize;
            black_box(handle.run(|tx| Ok(tx.read(i)? + tx.read(j)?)))
        })
    });

    let relaxed = Tl2::new(
        OBJECTS,
        RelaxedClock::new(
            MultiCounter::new(16),
            RelaxedClock::suggested_delta(16, 4.0),
        ),
    );
    let mut handle = relaxed.thread();
    let mut rng = Xoshiro256::new(4);
    g.bench_function("relaxed_clock_2reads", |b| {
        b.iter(|| {
            let i = rng.bounded(OBJECTS as u64) as usize;
            let j = rng.bounded(OBJECTS as u64) as usize;
            black_box(handle.run(|tx| Ok(tx.read(i)? + tx.read(j)?)))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .sample_size(30);
    targets = bench_commit, bench_read_only
}
criterion_main!(benches);
