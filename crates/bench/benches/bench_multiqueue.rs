//! Criterion micro-benchmarks: MultiQueue enqueue/dequeue cost vs the
//! exact coarse-locked queue, and strict vs try-lock delete modes.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlz_core::{DeleteMode, MultiQueue};
use dlz_pq::{BinaryHeap, CoarsePq, ConcurrentPq};

fn bench_multiqueue(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_insert_dequeue_pair");

    for (name, mode) in [
        ("strict", DeleteMode::Strict),
        ("trylock", DeleteMode::TryLock),
    ] {
        let mq: MultiQueue<u64> =
            MultiQueue::with_queues((0..16).map(|_| BinaryHeap::new()).collect(), mode);
        let mut h = mq.handle(1);
        // Standing population so dequeues always find work.
        for k in 0..10_000u64 {
            h.insert(k, k);
        }
        let mut next = 10_000u64;
        g.bench_function(format!("multiqueue_m16_{name}"), |b| {
            b.iter(|| {
                h.insert(next, next);
                next += 1;
                black_box(h.dequeue());
            })
        });
    }

    let coarse: CoarsePq<u64> = CoarsePq::new();
    for k in 0..10_000u64 {
        coarse.insert(k, k);
    }
    let mut next = 10_000u64;
    g.bench_function("coarse_exact", |b| {
        b.iter(|| {
            coarse.insert(next, next);
            next += 1;
            black_box(coarse.remove_min());
        })
    });
    g.finish();
}

fn bench_min_hint(c: &mut Criterion) {
    // The lock-free ReadMin step in isolation.
    let coarse: CoarsePq<u64> = CoarsePq::new();
    coarse.insert(1, 1);
    c.bench_function("min_hint", |b| b.iter(|| black_box(coarse.min_hint())));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .sample_size(30);
    targets = bench_multiqueue, bench_min_hint
}
criterion_main!(benches);
