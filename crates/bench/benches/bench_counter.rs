//! Criterion micro-benchmarks: per-operation cost of the counters.
//!
//! Complements fig1a (which measures multi-threaded scaling): this
//! isolates the single-threaded cost of one increment/read for each
//! counter kind, i.e. the price of the two extra reads + RNG draws the
//! MultiCounter pays per increment.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlz_core::rng::Xoshiro256;
use dlz_core::{DChoiceCounter, ExactCounter, MultiCounter, RelaxedCounter, ShardedCounter};

fn bench_increment(c: &mut Criterion) {
    let mut g = c.benchmark_group("counter_increment");

    let exact = ExactCounter::new();
    g.bench_function("exact_faa", |b| b.iter(|| exact.increment()));

    let sharded = ShardedCounter::new(8);
    g.bench_function("sharded_own_stripe", |b| {
        b.iter(|| sharded.increment_stripe(0))
    });

    for m in [16usize, 64, 256] {
        let mc = MultiCounter::new(m);
        let mut rng = Xoshiro256::new(1);
        g.bench_function(format!("multicounter_m{m}"), |b| {
            b.iter(|| mc.increment_with(black_box(&mut rng)))
        });
    }

    for d in [1usize, 2, 4] {
        let dc = DChoiceCounter::new(64, d, 1);
        let mut rng = Xoshiro256::new(2);
        g.bench_function(format!("dchoice_d{d}_m64"), |b| {
            b.iter(|| dc.increment_with(black_box(&mut rng)))
        });
    }
    g.finish();
}

fn bench_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("counter_read");

    let exact = ExactCounter::new();
    for _ in 0..1000 {
        exact.increment();
    }
    g.bench_function("exact_faa", |b| b.iter(|| black_box(exact.read())));

    let mc = MultiCounter::new(64);
    let mut rng = Xoshiro256::new(3);
    for _ in 0..1000 {
        mc.increment_with(&mut rng);
    }
    g.bench_function("multicounter_m64_relaxed", |b| {
        b.iter(|| black_box(mc.read_with(&mut rng)))
    });
    g.bench_function("multicounter_m64_exact_sum", |b| {
        b.iter(|| black_box(mc.read_exact()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .sample_size(30);
    targets = bench_increment, bench_read
}
criterion_main!(benches);
