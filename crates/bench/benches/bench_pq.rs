//! Criterion micro-benchmarks: the sequential priority-queue
//! substrates (binary heap, pairing heap, skip list).
//!
//! The MultiQueue's critical sections are one `add` or one
//! `delete_min`; these benches measure exactly those, at a realistic
//! standing size.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dlz_core::rng::{Rng64, Xoshiro256};
use dlz_pq::{BinaryHeap, PairingHeap, SeqPriorityQueue, SkipListPq};

const STANDING: usize = 1024;

fn mixed_workload<Q: SeqPriorityQueue<u64, u64>>(q: &mut Q, rng: &mut Xoshiro256) {
    // One insert + one delete keeps the size stationary.
    q.add(rng.next_u64() >> 40, 0);
    black_box(q.delete_min());
}

fn bench_substrates(c: &mut Criterion) {
    let mut g = c.benchmark_group("pq_add_delete_pair");

    let mut rng = Xoshiro256::new(1);
    let mut bh = BinaryHeap::new();
    for _ in 0..STANDING {
        bh.add(rng.next_u64() >> 40, 0u64);
    }
    g.bench_function("binary_heap", |b| {
        b.iter(|| mixed_workload(&mut bh, &mut rng))
    });

    let mut ph = PairingHeap::new();
    for _ in 0..STANDING {
        ph.add(rng.next_u64() >> 40, 0u64);
    }
    g.bench_function("pairing_heap", |b| {
        b.iter(|| mixed_workload(&mut ph, &mut rng))
    });

    let mut sl = SkipListPq::with_seed(7);
    for _ in 0..STANDING {
        sl.add(rng.next_u64() >> 40, 0u64);
    }
    g.bench_function("skiplist", |b| b.iter(|| mixed_workload(&mut sl, &mut rng)));

    g.finish();
}

fn bench_read_min(c: &mut Criterion) {
    let mut g = c.benchmark_group("pq_read_min");
    let mut rng = Xoshiro256::new(2);

    let mut bh = BinaryHeap::new();
    let mut ph = PairingHeap::new();
    let mut sl = SkipListPq::with_seed(9);
    for _ in 0..STANDING {
        let p = rng.next_u64() >> 40;
        bh.add(p, 0u64);
        ph.add(p, 0u64);
        sl.add(p, 0u64);
    }
    g.bench_function("binary_heap", |b| b.iter(|| black_box(bh.read_min())));
    g.bench_function("pairing_heap", |b| b.iter(|| black_box(ph.read_min())));
    g.bench_function("skiplist", |b| b.iter(|| black_box(sl.read_min())));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .sample_size(30);
    targets = bench_substrates, bench_read_min
}
criterion_main!(benches);
