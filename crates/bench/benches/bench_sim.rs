//! Criterion micro-benchmarks: simulation step throughput.
//!
//! The theorem-validation binaries run millions of process steps; these
//! benches track the cost of one step for each process so regressions
//! in the simulators are caught.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dlz_sim::{
    AsyncTwoChoice, BallsProcess, CorruptedTwoChoice, CorruptionPattern, OnePlusBeta, Schedule,
    SingleChoice, TwoChoice, WeightedTwoChoice,
};

fn bench_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("process_step");
    let m = 1024;

    let mut two = TwoChoice::new(m, 1);
    g.bench_function("two_choice", |b| b.iter(|| two.step()));

    let mut one = SingleChoice::new(m, 1);
    g.bench_function("single_choice", |b| b.iter(|| one.step()));

    let mut beta = OnePlusBeta::new(m, 0.5, 1);
    g.bench_function("one_plus_beta", |b| b.iter(|| beta.step()));

    let mut weighted = WeightedTwoChoice::new(m, 1);
    g.bench_function("weighted_two_choice", |b| b.iter(|| weighted.step()));

    let mut asym = AsyncTwoChoice::new(m, Schedule::BatchStampede { n: 64 }, 1);
    g.bench_function("async_stampede_n64", |b| b.iter(|| asym.step()));

    let mut corrupted = CorruptedTwoChoice::new(m, CorruptionPattern::Iid { eps: 0.1 }, 1);
    g.bench_function("corrupted_iid", |b| b.iter(|| corrupted.step()));

    g.finish();
}

fn bench_potential(c: &mut Criterion) {
    let mut p = TwoChoice::new(1024, 2);
    p.run(100_000);
    c.bench_function("gamma_potential_m1024", |b| b.iter(|| p.bins().gamma(0.5)));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .sample_size(30);
    targets = bench_steps, bench_potential
}
criterion_main!(benches);
