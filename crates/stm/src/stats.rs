//! Per-thread transaction statistics.

use crate::tx::AbortReason;

/// Commit/abort counters for one thread (merge across threads at the
/// end of a run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Successful commits.
    pub commits: u64,
    /// Total aborted attempts (sum of the reason counters).
    pub aborts: u64,
    /// Aborts: read found the location locked.
    pub locked_read: u64,
    /// Aborts: read found a version newer than rv.
    pub future_version: u64,
    /// Aborts: lock word changed during the value read.
    pub inconsistent_read: u64,
    /// Aborts: commit failed to lock its write set.
    pub lock_busy: u64,
    /// Aborts: read-set validation failed at commit.
    pub read_validation: u64,
    /// Aborts requested by the transaction body.
    pub user: u64,
}

impl TxStats {
    /// Records an abort with its reason.
    pub fn record_abort(&mut self, reason: AbortReason) {
        self.aborts += 1;
        match reason {
            AbortReason::LockedRead => self.locked_read += 1,
            AbortReason::FutureVersion => self.future_version += 1,
            AbortReason::InconsistentRead => self.inconsistent_read += 1,
            AbortReason::LockBusy => self.lock_busy += 1,
            AbortReason::ReadValidation => self.read_validation += 1,
            AbortReason::User => self.user += 1,
        }
    }

    /// Total attempts (commits + aborts).
    pub fn attempts(&self) -> u64 {
        self.commits + self.aborts
    }

    /// Fraction of attempts that aborted (0 if no attempts).
    pub fn abort_rate(&self) -> f64 {
        if self.attempts() == 0 {
            0.0
        } else {
            self.aborts as f64 / self.attempts() as f64
        }
    }

    /// Adds another thread's counters into this one.
    pub fn merge(&mut self, other: &TxStats) {
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.locked_read += other.locked_read;
        self.future_version += other.future_version;
        self.inconsistent_read += other.inconsistent_read;
        self.lock_busy += other.lock_busy;
        self.read_validation += other.read_validation;
        self.user += other.user;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_accounting() {
        let mut s = TxStats {
            commits: 3,
            ..Default::default()
        };
        s.record_abort(AbortReason::LockBusy);
        s.record_abort(AbortReason::FutureVersion);
        s.record_abort(AbortReason::FutureVersion);
        assert_eq!(s.aborts, 3);
        assert_eq!(s.lock_busy, 1);
        assert_eq!(s.future_version, 2);
        assert_eq!(s.attempts(), 6);
        assert!((s.abort_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = TxStats {
            commits: 1,
            ..Default::default()
        };
        a.record_abort(AbortReason::User);
        let mut b = TxStats {
            commits: 2,
            ..Default::default()
        };
        b.record_abort(AbortReason::ReadValidation);
        a.merge(&b);
        assert_eq!(a.commits, 3);
        assert_eq!(a.aborts, 2);
        assert_eq!(a.user, 1);
        assert_eq!(a.read_validation, 1);
    }

    #[test]
    fn empty_rate_is_zero() {
        assert_eq!(TxStats::default().abort_rate(), 0.0);
    }
}
