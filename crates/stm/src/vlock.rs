//! Versioned write-locks — TL2's per-location metadata word.
//!
//! One `AtomicU64` per transactional location: bit 63 is the lock bit,
//! bits 0..63 hold the version (the global-clock value at the last
//! commit that wrote this location). TL2 (Dice, Shalev, Shavit — DISC
//! 2006) calls these *versioned write-locks*.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock bit (MSB); versions use the low 63 bits.
pub const LOCK_BIT: u64 = 1 << 63;

/// Largest representable version.
pub const MAX_VERSION: u64 = LOCK_BIT - 1;

/// Packs a lock word. Panics in debug builds if `version` overflows.
#[inline]
pub fn pack(version: u64, locked: bool) -> u64 {
    debug_assert!(version <= MAX_VERSION, "version overflow");
    if locked {
        version | LOCK_BIT
    } else {
        version
    }
}

/// `true` if the word has the lock bit set.
#[inline]
pub fn is_locked(word: u64) -> bool {
    word & LOCK_BIT != 0
}

/// Extracts the version from a word.
#[inline]
pub fn version_of(word: u64) -> u64 {
    word & MAX_VERSION
}

/// A versioned write-lock.
#[derive(Debug, Default)]
pub struct VersionedLock {
    word: AtomicU64,
}

impl VersionedLock {
    /// Unlocked, version 0.
    pub const fn new() -> Self {
        VersionedLock {
            word: AtomicU64::new(0),
        }
    }

    /// Current raw word. `Acquire`: pairs with the `Release` in
    /// [`unlock_with_version`](Self::unlock_with_version) so a reader
    /// that observes a version also observes the value written under it.
    #[inline]
    pub fn load(&self) -> u64 {
        self.word.load(Ordering::Acquire)
    }

    /// Relaxed load, for the second read of the seqlock validation
    /// (ordering is provided by an explicit `fence(Acquire)` at the call
    /// site).
    #[inline]
    pub fn load_relaxed(&self) -> u64 {
        self.word.load(Ordering::Relaxed)
    }

    /// Attempts to lock. On success returns the *previous* (unlocked)
    /// word, whose version the committer must restore on abort.
    #[inline]
    pub fn try_lock(&self) -> Option<u64> {
        let cur = self.word.load(Ordering::Relaxed);
        if is_locked(cur) {
            return None;
        }
        self.word
            .compare_exchange(cur, cur | LOCK_BIT, Ordering::Acquire, Ordering::Relaxed)
            .ok()
    }

    /// Releases the lock, installing `new_version`.
    ///
    /// # Panics
    /// Debug-asserts the lock is currently held and the version fits.
    #[inline]
    pub fn unlock_with_version(&self, new_version: u64) {
        debug_assert!(is_locked(self.word.load(Ordering::Relaxed)));
        debug_assert!(new_version <= MAX_VERSION);
        self.word.store(new_version, Ordering::Release);
    }

    /// Releases the lock, restoring the pre-lock word (abort path).
    #[inline]
    pub fn unlock_restore(&self, old_word: u64) {
        debug_assert!(!is_locked(old_word));
        self.word.store(old_word, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pack_roundtrip() {
        assert_eq!(version_of(pack(42, false)), 42);
        assert_eq!(version_of(pack(42, true)), 42);
        assert!(is_locked(pack(42, true)));
        assert!(!is_locked(pack(42, false)));
    }

    #[test]
    fn lock_cycle() {
        let l = VersionedLock::new();
        assert_eq!(version_of(l.load()), 0);
        let old = l.try_lock().expect("unlocked");
        assert_eq!(old, 0);
        assert!(is_locked(l.load()));
        assert!(l.try_lock().is_none(), "relock must fail");
        l.unlock_with_version(7);
        assert_eq!(l.load(), 7);
        assert!(!is_locked(l.load()));
    }

    #[test]
    fn abort_restores_old_version() {
        let l = VersionedLock::new();
        l.try_lock().unwrap();
        l.unlock_with_version(9);
        let old = l.try_lock().unwrap();
        assert_eq!(version_of(old), 9);
        l.unlock_restore(old);
        assert_eq!(l.load(), 9);
    }

    #[test]
    fn mutual_exclusion() {
        const THREADS: usize = 4;
        const ITERS: usize = 20_000;
        let lock = Arc::new(VersionedLock::new());
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..ITERS {
                        loop {
                            if let Some(old) = lock.try_lock() {
                                // non-atomic-looking RMW protected by the lock
                                let v = counter.load(Ordering::Relaxed);
                                counter.store(v + 1, Ordering::Relaxed);
                                lock.unlock_restore(old);
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (THREADS * ITERS) as u64);
    }
}
