//! Transaction state: speculative reads and buffered writes.
//!
//! TL2 transactions never write to shared memory before commit. Reads
//! are validated at read time against the transaction's read version
//! (`rv`) using the lock/version double-check; writes go to a private
//! buffer. The commit protocol lives in [`engine`](crate::engine).

use std::sync::atomic::{fence, Ordering};

use crate::tarray::TArray;
use crate::vlock::{is_locked, version_of};

/// Why a transaction aborted (or must abort).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// A read found the location locked by a committing transaction.
    LockedRead,
    /// A read found a version newer than `rv` (with the relaxed clock
    /// this includes "future" timestamps — the paper's expected abort
    /// mode for freshly written objects).
    FutureVersion,
    /// The lock word changed while the value was being read.
    InconsistentRead,
    /// Commit could not acquire a write-set lock.
    LockBusy,
    /// Read-set validation at commit failed.
    ReadValidation,
    /// The user's transaction body requested an abort.
    User,
}

/// Signal that the current attempt must be retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abort(pub AbortReason);

/// An in-flight transaction over a [`TArray`].
///
/// Obtained from [`TxThread::run`](crate::engine::TxThread::run); all
/// accesses go through [`read`](Tx::read) / [`write`](Tx::write).
#[derive(Debug)]
pub struct Tx<'a> {
    array: &'a TArray,
    rv: u64,
    pub(crate) read_set: Vec<u32>,
    pub(crate) write_set: Vec<(u32, u64)>,
}

impl<'a> Tx<'a> {
    pub(crate) fn new(array: &'a TArray, rv: u64) -> Self {
        Tx {
            array,
            rv,
            read_set: Vec::new(),
            write_set: Vec::new(),
        }
    }

    /// The read version this transaction started with.
    pub fn rv(&self) -> u64 {
        self.rv
    }

    /// Number of distinct buffered writes.
    pub fn write_set_len(&self) -> usize {
        self.write_set.len()
    }

    /// Transactional read of cell `i`.
    ///
    /// Returns `Err(Abort)` if the location is locked, changed under
    /// the read, or carries a version newer than `rv` — the caller
    /// should propagate the abort with `?` and let the engine retry.
    pub fn read(&mut self, i: usize) -> Result<u64, Abort> {
        // Read-after-write: serve from the buffer.
        if let Some(&(_, v)) = self.write_set.iter().find(|&&(j, _)| j as usize == i) {
            return Ok(v);
        }
        let slot = self.array.slot(i);
        // Seqlock-style validated read (see Mara Bos, ch. 9 patterns):
        // the Acquire load of the lock word pairs with the committer's
        // Release store, and the Acquire fence keeps the second lock
        // load from being ordered before the value load.
        let w1 = slot.lock.load();
        if is_locked(w1) {
            return Err(Abort(AbortReason::LockedRead));
        }
        let val = slot.value.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        let w2 = slot.lock.load_relaxed();
        if w1 != w2 {
            return Err(Abort(AbortReason::InconsistentRead));
        }
        if version_of(w1) > self.rv {
            return Err(Abort(AbortReason::FutureVersion));
        }
        self.read_set.push(i as u32);
        Ok(val)
    }

    /// Buffers a write of `v` to cell `i` (visible to this
    /// transaction's own reads immediately; visible to others only
    /// after a successful commit).
    pub fn write(&mut self, i: usize, v: u64) {
        assert!(i < self.array.len(), "index {i} out of bounds");
        if let Some(entry) = self.write_set.iter_mut().find(|(j, _)| *j as usize == i) {
            entry.1 = v;
        } else {
            self.write_set.push((i as u32, v));
        }
    }

    /// Convenience: `write(i, read(i)? + delta)`.
    pub fn add(&mut self, i: usize, delta: u64) -> Result<(), Abort> {
        let v = self.read(i)?;
        self.write(i, v.wrapping_add(delta));
        Ok(())
    }

    /// User-requested abort (for explicit retry loops).
    pub fn abort<T>(&self) -> Result<T, Abort> {
        Err(Abort(AbortReason::User))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_own_writes() {
        let a = TArray::new(4);
        let mut tx = Tx::new(&a, 0);
        assert_eq!(tx.read(0).unwrap(), 0);
        tx.write(0, 42);
        assert_eq!(tx.read(0).unwrap(), 42);
        // Shared memory untouched before commit.
        assert_eq!(a.read_quiescent(0), 0);
    }

    #[test]
    fn double_write_overwrites_buffer() {
        let a = TArray::new(2);
        let mut tx = Tx::new(&a, 0);
        tx.write(1, 5);
        tx.write(1, 6);
        assert_eq!(tx.write_set_len(), 1);
        assert_eq!(tx.read(1).unwrap(), 6);
    }

    #[test]
    fn future_version_aborts() {
        let a = TArray::new(1);
        // Manually commit a version 10 on slot 0.
        let slot = a.slot(0);
        slot.lock.try_lock().unwrap();
        slot.value.store(7, Ordering::Relaxed);
        slot.lock.unlock_with_version(10);
        // A transaction with rv = 5 must abort reading it.
        let mut tx = Tx::new(&a, 5);
        assert_eq!(tx.read(0), Err(Abort(AbortReason::FutureVersion)));
        // With rv = 10 it reads fine.
        let mut tx = Tx::new(&a, 10);
        assert_eq!(tx.read(0).unwrap(), 7);
    }

    #[test]
    fn locked_read_aborts() {
        let a = TArray::new(1);
        let old = a.slot(0).lock.try_lock().unwrap();
        let mut tx = Tx::new(&a, 100);
        assert_eq!(tx.read(0), Err(Abort(AbortReason::LockedRead)));
        a.slot(0).lock.unlock_restore(old);
        assert!(tx.read(0).is_ok());
    }

    #[test]
    fn add_combines_read_and_write() {
        let a = TArray::from_values(&[10]);
        let mut tx = Tx::new(&a, 0);
        tx.add(0, 5).unwrap();
        assert_eq!(tx.read(0).unwrap(), 15);
    }

    #[test]
    fn user_abort() {
        let a = TArray::new(1);
        let tx = Tx::new(&a, 0);
        let r: Result<(), Abort> = tx.abort();
        assert_eq!(r, Err(Abort(AbortReason::User)));
    }
}
