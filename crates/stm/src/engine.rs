//! The TL2 engine: begin / speculative execute / commit, with retries.
//!
//! The commit protocol follows Dice–Shalev–Shavit (DISC 2006) §3:
//!
//! 1. Acquire write-set locks in ascending index order with `try_lock`
//!    (abort on contention — no deadlock, bounded waiting).
//! 2. Obtain the write version `wv` from the clock strategy.
//! 3. Validate the read set against `rv` (skippable when the exact
//!    clock yields `wv == rv + 1`: nothing can have committed between).
//! 4. Write back buffered values, then release each lock installing
//!    `wv` (the `Release` store publishes value and version together).
//!
//! On abort every acquired lock is restored to its pre-lock word and
//! the transaction retries with exponential backoff.

use dlz_pq::Backoff;

use crate::clock::ClockStrategy;
use crate::stats::TxStats;
use crate::tarray::TArray;
use crate::tx::{Abort, AbortReason, Tx};
use crate::vlock::{is_locked, version_of};

/// A TL2 software transactional memory over a [`TArray`].
///
/// Generic over the [`ClockStrategy`]: [`ExactClock`] gives classical
/// TL2, [`RelaxedClock`] gives the paper's Section-8 variant.
///
/// [`ExactClock`]: crate::clock::ExactClock
/// [`RelaxedClock`]: crate::clock::RelaxedClock
///
/// # Example
/// ```
/// use dlz_stm::{Tl2, ExactClock};
///
/// let stm = Tl2::new(16, ExactClock::new());
/// let mut thread = stm.thread();
/// // Transfer 10 units from cell 0 to cell 1, atomically.
/// thread.run(|tx| {
///     let a = tx.read(0)?;
///     let b = tx.read(1)?;
///     tx.write(0, a.wrapping_sub(10));
///     tx.write(1, b.wrapping_add(10));
///     Ok(())
/// });
/// assert_eq!(stm.array().read_quiescent(1), 10);
/// ```
#[derive(Debug)]
pub struct Tl2<C: ClockStrategy> {
    array: TArray,
    clock: C,
}

impl<C: ClockStrategy> Tl2<C> {
    /// `len` zeroed transactional cells under `clock`.
    pub fn new(len: usize, clock: C) -> Self {
        Tl2 {
            array: TArray::new(len),
            clock,
        }
    }

    /// Builds from initial values.
    pub fn from_values(values: &[u64], clock: C) -> Self {
        Tl2 {
            array: TArray::from_values(values),
            clock,
        }
    }

    /// The underlying array (quiescent reads, correctness checks).
    pub fn array(&self) -> &TArray {
        &self.array
    }

    /// The clock strategy.
    pub fn clock(&self) -> &C {
        &self.clock
    }

    /// Creates a per-thread execution handle. Each OS thread should own
    /// exactly one (it carries the thread's `tmax` and statistics).
    pub fn thread(&self) -> TxThread<'_, C> {
        TxThread {
            stm: self,
            tmax: 0,
            stats: TxStats::default(),
        }
    }
}

/// Per-thread transaction executor.
#[derive(Debug)]
pub struct TxThread<'a, C: ClockStrategy> {
    stm: &'a Tl2<C>,
    /// Largest timestamp encountered (drives the relaxed clock's
    /// future-writing; unused by the exact clock).
    tmax: u64,
    stats: TxStats,
}

impl<'a, C: ClockStrategy> TxThread<'a, C> {
    /// Runs `body` as a transaction, retrying until it commits, and
    /// returns its result.
    ///
    /// The body may be re-executed many times; it must be side-effect
    /// free apart from `Tx` operations. Return `Err(abort)` (e.g. by
    /// `?`-propagating a failed [`Tx::read`]) to request a retry.
    pub fn run<R>(&mut self, mut body: impl FnMut(&mut Tx<'_>) -> Result<R, Abort>) -> R {
        let mut backoff = Backoff::new();
        loop {
            let rv = self.stm.clock.read_version(self.tmax);
            self.tmax = self.tmax.max(rv);
            let mut tx = Tx::new(&self.stm.array, rv);
            match body(&mut tx) {
                Err(Abort(reason)) => {
                    self.stats.record_abort(reason);
                    self.stm.clock.on_abort(reason);
                    backoff.snooze();
                }
                Ok(result) => match self.try_commit(tx) {
                    Ok(()) => {
                        self.stats.commits += 1;
                        return result;
                    }
                    Err(reason) => {
                        self.stats.record_abort(reason);
                        self.stm.clock.on_abort(reason);
                        backoff.snooze();
                    }
                },
            }
        }
    }

    /// Attempts to run `body` once (no retry). `Ok` on commit.
    pub fn try_once<R>(
        &mut self,
        body: impl FnOnce(&mut Tx<'_>) -> Result<R, Abort>,
    ) -> Result<R, AbortReason> {
        let rv = self.stm.clock.read_version(self.tmax);
        self.tmax = self.tmax.max(rv);
        let mut tx = Tx::new(&self.stm.array, rv);
        match body(&mut tx) {
            Err(Abort(reason)) => {
                self.stats.record_abort(reason);
                Err(reason)
            }
            Ok(result) => match self.try_commit(tx) {
                Ok(()) => {
                    self.stats.commits += 1;
                    Ok(result)
                }
                Err(reason) => {
                    self.stats.record_abort(reason);
                    Err(reason)
                }
            },
        }
    }

    /// This thread's statistics so far.
    pub fn stats(&self) -> TxStats {
        self.stats
    }

    /// This thread's largest encountered timestamp.
    pub fn tmax(&self) -> u64 {
        self.tmax
    }

    /// TL2 commit (see module docs). Consumes the transaction.
    fn try_commit(&mut self, tx: Tx<'_>) -> Result<(), AbortReason> {
        let array = &self.stm.array;
        let rv = tx.rv();
        let Tx {
            mut write_set,
            read_set,
            ..
        } = tx;

        // Read-only fast path: reads were validated against rv as they
        // happened; nothing to publish (TL2's read-only optimization).
        if write_set.is_empty() {
            return Ok(());
        }

        // 1. Lock the write set in ascending index order.
        write_set.sort_unstable_by_key(|&(i, _)| i);
        let mut acquired: Vec<(u32, u64)> = Vec::with_capacity(write_set.len());
        for &(i, _) in &write_set {
            match array.slot(i as usize).lock.try_lock() {
                Some(old_word) => acquired.push((i, old_word)),
                None => {
                    for &(j, old) in &acquired {
                        array.slot(j as usize).lock.unlock_restore(old);
                    }
                    return Err(AbortReason::LockBusy);
                }
            }
        }

        // 2. Write version.
        let max_old = acquired
            .iter()
            .map(|&(_, w)| version_of(w))
            .max()
            .unwrap_or(0);
        let wv = self.stm.clock.write_version(self.tmax, max_old);

        // 3. Read-set validation (skippable for exact clocks when no
        //    transaction can have interleaved).
        let skip = self.stm.clock.is_exact() && wv == rv + 1;
        if !skip {
            for &i in &read_set {
                // Locations we also wrote: we hold their locks; the
                // version at lock time must still be ≤ rv.
                if let Some(&(_, old_word)) = acquired.iter().find(|&&(j, _)| j == i) {
                    if version_of(old_word) > rv {
                        for &(j, old) in &acquired {
                            array.slot(j as usize).lock.unlock_restore(old);
                        }
                        return Err(AbortReason::ReadValidation);
                    }
                    continue;
                }
                let w = array.slot(i as usize).lock.load();
                if is_locked(w) || version_of(w) > rv {
                    for &(j, old) in &acquired {
                        array.slot(j as usize).lock.unlock_restore(old);
                    }
                    return Err(AbortReason::ReadValidation);
                }
            }
        }

        // 4. Write back, then release with wv. The Release store in
        //    unlock_with_version publishes the Relaxed value store.
        for &(i, v) in &write_set {
            array
                .slot(i as usize)
                .value
                .store(v, std::sync::atomic::Ordering::Relaxed);
        }
        for &(i, _) in &acquired {
            array.slot(i as usize).lock.unlock_with_version(wv);
        }
        // Deliberately NOT folding wv into tmax: with the relaxed clock
        // wv is stamped Δ *in the future*, and a thread whose tmax
        // absorbed its own future stamps would drift ahead of the
        // global time by Δ per commit — versions would then outrun the
        // counter forever and every reader would live in permanent
        // FutureVersion aborts. tmax tracks observed *present* time
        // (read versions) only; future stamps are paid for by the
        // bounded wait the paper describes ("at least Δ operations
        // should occur" before the object is read again).
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{ExactClock, RelaxedClock};
    use dlz_core::MultiCounter;
    use std::sync::Arc;

    #[test]
    fn single_threaded_increments() {
        let stm = Tl2::new(4, ExactClock::new());
        let mut t = stm.thread();
        for _ in 0..100 {
            t.run(|tx| tx.add(2, 1));
        }
        assert_eq!(stm.array().read_quiescent(2), 100);
        assert_eq!(t.stats().commits, 100);
        assert_eq!(t.stats().aborts, 0);
    }

    #[test]
    fn read_only_transactions_commit_without_clock_ticks() {
        let stm = Tl2::new(4, ExactClock::new());
        let mut t = stm.thread();
        let before = stm.clock().now();
        let v = t.run(|tx| tx.read(0));
        assert_eq!(v, 0);
        assert_eq!(stm.clock().now(), before, "read-only must not tick");
    }

    #[test]
    fn atomic_transfer_preserves_sum() {
        let stm = Arc::new(Tl2::from_values(
            &[1000, 1000, 1000, 1000],
            ExactClock::new(),
        ));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let stm = Arc::clone(&stm);
                s.spawn(move || {
                    let mut h = stm.thread();
                    let mut x: u64 = 0x9e3779b9 + t as u64;
                    for _ in 0..5_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let from = (x % 4) as usize;
                        let to = ((x >> 8) % 4) as usize;
                        h.run(|tx| {
                            let a = tx.read(from)?;
                            let b = tx.read(to)?;
                            if from != to {
                                tx.write(from, a.wrapping_sub(1));
                                tx.write(to, b.wrapping_add(1));
                            }
                            Ok(())
                        });
                    }
                });
            }
        });
        assert!(!stm.array().any_locked());
        assert_eq!(stm.array().sum_quiescent(), 4000);
    }

    #[test]
    fn paper_workload_exact_clock() {
        // The Section 8 benchmark: pick 2 random slots, increment both.
        // Safety check: final sum == 2 × commits.
        let stm = Arc::new(Tl2::new(256, ExactClock::new()));
        let total_commits: u64 = std::thread::scope(|s| {
            let hs: Vec<_> = (0..4usize)
                .map(|t| {
                    let stm = Arc::clone(&stm);
                    s.spawn(move || {
                        let mut h = stm.thread();
                        let mut x: u64 = 777 + t as u64;
                        for _ in 0..5_000 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let i = (x % 256) as usize;
                            let j = ((x >> 16) % 256) as usize;
                            h.run(|tx| {
                                tx.add(i, 1)?;
                                if j != i {
                                    tx.add(j, 1)?;
                                } else {
                                    tx.add(j, 1)?; // same slot twice: +2 total
                                }
                                Ok(())
                            });
                        }
                        h.stats().commits
                    })
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total_commits, 20_000);
        assert_eq!(stm.array().sum_quiescent(), 2 * total_commits as u128);
    }

    #[test]
    fn paper_workload_relaxed_clock() {
        // Same workload under the relaxed MultiCounter clock; the sum
        // check is the paper's correctness verification.
        let clock = RelaxedClock::new(MultiCounter::new(32), 64);
        let stm = Arc::new(Tl2::new(1024, clock));
        let total_commits: u64 = std::thread::scope(|s| {
            let hs: Vec<_> = (0..4usize)
                .map(|t| {
                    let stm = Arc::clone(&stm);
                    s.spawn(move || {
                        let mut h = stm.thread();
                        let mut x: u64 = 31337 + t as u64;
                        for _ in 0..5_000 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let i = (x % 1024) as usize;
                            let j = ((x >> 16) % 1024) as usize;
                            h.run(|tx| {
                                tx.add(i, 1)?;
                                tx.add(j, 1)?;
                                Ok(())
                            });
                        }
                        h.stats().commits
                    })
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total_commits, 20_000);
        assert_eq!(stm.array().sum_quiescent(), 2 * total_commits as u128);
        assert!(!stm.array().any_locked());
    }

    #[test]
    fn paper_workload_gv4_and_gv5() {
        use crate::clock::{Gv4Clock, Gv5Clock};
        fn run<C: crate::clock::ClockStrategy>(stm: &Tl2<C>) -> u64 {
            std::thread::scope(|s| {
                let hs: Vec<_> = (0..4usize)
                    .map(|t| {
                        let stm = &stm;
                        s.spawn(move || {
                            let mut h = stm.thread();
                            let mut x: u64 = 0xF5 + t as u64;
                            for _ in 0..3_000 {
                                x ^= x << 13;
                                x ^= x >> 7;
                                x ^= x << 17;
                                let i = (x % 512) as usize;
                                let j = ((x >> 16) % 512) as usize;
                                h.run(|tx| {
                                    tx.add(i, 1)?;
                                    tx.add(j, 1)?;
                                    Ok(())
                                });
                            }
                            h.stats().commits
                        })
                    })
                    .collect();
                hs.into_iter().map(|h| h.join().unwrap()).sum()
            })
        }
        let gv4 = Tl2::new(512, Gv4Clock::new());
        let commits = run(&gv4);
        assert_eq!(commits, 12_000);
        assert_eq!(gv4.array().sum_quiescent(), 2 * commits as u128);

        let gv5 = Tl2::new(512, Gv5Clock::new());
        let commits = run(&gv5);
        assert_eq!(commits, 12_000);
        assert_eq!(gv5.array().sum_quiescent(), 2 * commits as u128);
    }

    #[test]
    fn gv5_snapshot_consistency() {
        // GV5 shares write versions aggressively; the pairwise-invariant
        // test is the sharpest detector of unsound sharing.
        use crate::clock::Gv5Clock;
        let pairs = 32usize;
        let init: Vec<u64> = (0..2 * pairs)
            .map(|i| if i % 2 == 0 { 50 } else { 0 })
            .collect();
        let stm = Tl2::from_values(&init, Gv5Clock::new());
        std::thread::scope(|s| {
            for t in 0..2 {
                let stm = &stm;
                s.spawn(move || {
                    let mut h = stm.thread();
                    let mut x: u64 = 0x77 + t as u64;
                    for _ in 0..3_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = (x % pairs as u64) as usize;
                        h.run(|tx| {
                            let a = tx.read(2 * k)?;
                            let b = tx.read(2 * k + 1)?;
                            if a >= 1 {
                                tx.write(2 * k, a - 1);
                                tx.write(2 * k + 1, b + 1);
                            }
                            Ok(())
                        });
                    }
                });
            }
            for t in 0..2 {
                let stm = &stm;
                s.spawn(move || {
                    let mut h = stm.thread();
                    let mut x: u64 = 0x99 + t as u64;
                    for _ in 0..3_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = (x % pairs as u64) as usize;
                        let (a, b) = h.run(|tx| Ok((tx.read(2 * k)?, tx.read(2 * k + 1)?)));
                        assert_eq!(a + b, 50, "torn read under GV5");
                    }
                });
            }
        });
        assert_eq!(stm.array().sum_quiescent(), 50 * pairs as u128);
    }

    #[test]
    fn conflicting_writers_serialize() {
        // All threads increment the SAME slot: maximal contention, the
        // final value must still be exact.
        let stm = Arc::new(Tl2::new(1, ExactClock::new()));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stm = Arc::clone(&stm);
                s.spawn(move || {
                    let mut h = stm.thread();
                    for _ in 0..2_500 {
                        h.run(|tx| tx.add(0, 1));
                    }
                });
            }
        });
        assert_eq!(stm.array().read_quiescent(0), 10_000);
    }

    #[test]
    fn try_once_reports_abort() {
        let stm = Tl2::new(2, ExactClock::new());
        // Hold a lock to force LockBusy.
        let old = stm.array().slot(0).lock.try_lock().unwrap();
        let mut h = stm.thread();
        let r = h.try_once(|tx| {
            tx.write(0, 1);
            Ok(())
        });
        assert_eq!(r, Err(AbortReason::LockBusy));
        stm.array().slot(0).lock.unlock_restore(old);
        assert!(h
            .try_once(|tx| {
                tx.write(0, 1);
                Ok(())
            })
            .is_ok());
        assert_eq!(h.stats().commits, 1);
        assert_eq!(h.stats().lock_busy, 1);
    }

    #[test]
    fn user_abort_retries_until_condition() {
        let stm = Tl2::new(1, ExactClock::new());
        let mut h = stm.thread();
        let mut attempts = 0;
        h.run(|tx| {
            attempts += 1;
            if attempts < 3 {
                tx.abort()
            } else {
                Ok(())
            }
        });
        assert_eq!(attempts, 3);
        assert_eq!(h.stats().user, 2);
    }

    #[test]
    fn relaxed_clock_future_reads_abort_then_recover() {
        // A fresh write under the relaxed clock is stamped ~Δ in the
        // future; an immediate reader may observe FutureVersion aborts
        // but must eventually succeed as the counter advances.
        let clock = RelaxedClock::new(MultiCounter::new(4), 16);
        let stm = Tl2::new(2, clock);
        let mut w = stm.thread();
        w.run(|tx| {
            tx.write(0, 99);
            Ok(())
        });
        let mut r = stm.thread();
        let v = r.run(|tx| tx.read(0));
        assert_eq!(v, 99);
    }
}
