//! # dlz-stm — TL2 with exact and relaxed global clocks
//!
//! A from-scratch implementation of **Transactional Locking II** (Dice,
//! Shalev, Shavit — DISC 2006) over an array of transactional `u64`
//! cells, built as the substrate for Section 8 of *Distributionally
//! Linearizable Data Structures* (SPAA 2018): replacing TL2's global
//! version clock — a fetch-and-add scalability bottleneck — with a
//! relaxed MultiCounter.
//!
//! ## The two clock strategies
//!
//! * [`ExactClock`] — baseline TL2. One FAA word; every writing commit
//!   bumps it; serializability is unconditional.
//! * [`RelaxedClock`] — the paper's variant. Read versions are relaxed
//!   MultiCounter samples; commit versions are stamped **in the
//!   future** (`max(tmax, sample, overwritten versions) + Δ`), so that
//!   no concurrently running reader can hold a read version at or above
//!   a freshly committed write's version — unless the counter's skew
//!   exceeds Δ, which happens with the (tiny) probability bounded by
//!   Lemma 6.8. The trade-offs the paper describes are reproduced
//!   faithfully:
//!   - safety holds *with high probability* (the harness verifies the
//!     final state after every run, as the paper did);
//!   - a freshly written object causes readers to abort until the
//!     global time passes its future stamp, so write-hot workloads
//!     (the 10K-object benchmark) pay a visible abort penalty;
//!   - in exchange the clock cache line stops being a bottleneck and
//!     commit throughput scales (the 100K/1M-object benchmarks).
//!
//! ## Memory-safety notes
//!
//! The crate contains **no `unsafe`**: values are `AtomicU64`s read with
//! a seqlock-validated double-read (`lock → value → fence(Acquire) →
//! lock`), writes happen only while holding the per-slot versioned
//! lock, and the `Release` store that unlocks also publishes the value.
//!
//! ## Example
//!
//! ```
//! use dlz_stm::{Tl2, RelaxedClock};
//! use dlz_core::MultiCounter;
//!
//! let clock = RelaxedClock::new(MultiCounter::new(16), 128);
//! let stm = Tl2::new(1_000, clock);
//! let mut thread = stm.thread();
//! for k in 0..100u64 {
//!     let k = k as usize;
//!     thread.run(|tx| {
//!         tx.add(k % 10, 1)?;
//!         tx.add((k + 3) % 10, 1)?;
//!         Ok(())
//!     });
//! }
//! // The paper's correctness verification: sum == 2 × commits.
//! assert_eq!(stm.array().sum_quiescent(), 200);
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod engine;
pub mod stats;
pub mod tarray;
pub mod tx;
pub mod vlock;

pub use clock::{ClockStrategy, ExactClock, Gv4Clock, Gv5Clock, RelaxedClock};
pub use engine::{Tl2, TxThread};
pub use stats::TxStats;
pub use tarray::TArray;
pub use tx::{Abort, AbortReason, Tx};
