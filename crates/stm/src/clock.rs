//! Global-clock strategies for TL2: exact fetch-and-add vs the paper's
//! relaxed MultiCounter clock with Δ future-writing.
//!
//! TL2's correctness argument leans on the global version clock `G`:
//! a transaction reads `rv = G` at start and trusts any location whose
//! version is ≤ rv to be a committed, pre-start value. The clock is
//! bumped by every writing commit — a fetch-and-add bottleneck at scale
//! (the paper's motivation).
//!
//! The relaxed strategy (Section 8) replaces `G` with a MultiCounter
//! and has writers stamp "in the future": the commit version is
//! `max(tmax, sample, old versions) + Δ`, where `tmax` is the largest
//! timestamp the thread has encountered and Δ exceeds the counter's
//! expected skew. Readers that encounter a future version abort and
//! retry — the safe direction. Serializability then holds *with high
//! probability* rather than certainly; the experimental harness verifies
//! the final state explicitly, as the paper did.

use dlz_core::clock::Clock;
use dlz_core::counter::{MultiCounter, RelaxedCounter};
use dlz_core::FaaClock;

/// How a TL2 instance obtains read and write versions.
pub trait ClockStrategy: Send + Sync {
    /// Read version for a transaction beginning now. `tmax` is the
    /// calling thread's largest encountered timestamp (ignored by exact
    /// clocks).
    fn read_version(&self, tmax: u64) -> u64;

    /// Write (commit) version for a committing transaction. `tmax` is
    /// the thread's running maximum; `max_old_version` is the largest
    /// pre-commit version among the write-set entries (so the new
    /// version can be made strictly larger). Advances the global clock.
    fn write_version(&self, tmax: u64, max_old_version: u64) -> u64;

    /// `true` if the clock orders commits exactly (enables TL2's
    /// `wv == rv + 1` validation short-cut).
    fn is_exact(&self) -> bool;

    /// Called by the engine after every abort.
    ///
    /// The relaxed clock uses this for liveness, in the spirit of TL2's
    /// GV5 ("increment on abort") variant: a thread that keeps aborting
    /// on future versions nudges the distributed clock forward, so the
    /// global time is guaranteed to pass the blocking version even if
    /// no other thread is committing. Exact clocks need no such help.
    fn on_abort(&self, _reason: crate::tx::AbortReason) {}
}

/// The TL2 baseline: one fetch-and-add word (called GV1 in TL2's
/// terminology).
#[derive(Debug, Default)]
pub struct ExactClock {
    clock: FaaClock,
}

impl ExactClock {
    /// Creates a clock at zero.
    pub fn new() -> Self {
        ExactClock {
            clock: FaaClock::new(),
        }
    }

    /// Current value (diagnostics).
    pub fn now(&self) -> u64 {
        self.clock.now()
    }
}

impl ClockStrategy for ExactClock {
    #[inline]
    fn read_version(&self, _tmax: u64) -> u64 {
        self.clock.now()
    }

    #[inline]
    fn write_version(&self, _tmax: u64, _max_old_version: u64) -> u64 {
        self.clock.tick()
    }

    fn is_exact(&self) -> bool {
        true
    }
}

/// TL2's GV4 ("pass on failure") clock: a CAS that tolerates losing.
///
/// A committer tries `CAS(G, g, g+1)` once. If the CAS fails, some
/// other committer has already advanced the clock past `g`, and the
/// *observed* new value can safely be used as this transaction's write
/// version too (both hold disjoint write-locks, and any reader that
/// must be ordered after either of them will see a version larger than
/// its `rv` either way). This halves the RMW traffic under heavy
/// commit contention at the cost of occasionally sharing write
/// versions, which in turn forbids the `wv == rv + 1` validation
/// short-cut — so [`is_exact`](ClockStrategy::is_exact) is `false`.
#[derive(Debug, Default)]
pub struct Gv4Clock {
    time: dlz_core::padded::Padded<std::sync::atomic::AtomicU64>,
}

impl Gv4Clock {
    /// Creates a clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value (diagnostics).
    pub fn now(&self) -> u64 {
        self.time.load(std::sync::atomic::Ordering::Acquire)
    }
}

impl ClockStrategy for Gv4Clock {
    fn read_version(&self, _tmax: u64) -> u64 {
        self.time.load(std::sync::atomic::Ordering::Acquire)
    }

    fn write_version(&self, _tmax: u64, _max_old_version: u64) -> u64 {
        use std::sync::atomic::Ordering;
        let cur = self.time.load(Ordering::Relaxed);
        match self
            .time
            .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => cur + 1,
            // Lost the race: adopt the winner's (strictly larger) value.
            Err(actual) => actual,
        }
    }

    fn is_exact(&self) -> bool {
        false // shared write versions: the rv+1 short-cut is unsound
    }
}

/// TL2's GV5 ("increment on abort") clock.
///
/// Commits use `G + 1` *without* writing `G`; the clock only advances
/// when a transaction aborts on a too-new version. Writes to the clock
/// cache line become rare, but every freshly written location carries a
/// version one ahead of `G`, so the *first* reader of any recent write
/// aborts once (and advances `G` in doing so) — a deliberate trade of
/// extra aborts for less clock traffic. This is the deterministic
/// ancestor of the paper's relaxed design: Section 8's MultiCounter
/// clock makes the same "stamp ahead, let readers catch up" bet, but
/// with a scalable counter and a probabilistic skew bound instead of a
/// single word.
#[derive(Debug, Default)]
pub struct Gv5Clock {
    time: dlz_core::padded::Padded<std::sync::atomic::AtomicU64>,
}

impl Gv5Clock {
    /// Creates a clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value (diagnostics).
    pub fn now(&self) -> u64 {
        self.time.load(std::sync::atomic::Ordering::Acquire)
    }
}

impl ClockStrategy for Gv5Clock {
    fn read_version(&self, _tmax: u64) -> u64 {
        self.time.load(std::sync::atomic::Ordering::Acquire)
    }

    fn write_version(&self, _tmax: u64, max_old_version: u64) -> u64 {
        use std::sync::atomic::Ordering;
        // No store: stamp one ahead of the current time (and past any
        // overwritten version, which may itself be one ahead).
        (self.time.load(Ordering::Acquire)).max(max_old_version) + 1
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn on_abort(&self, reason: crate::tx::AbortReason) {
        use std::sync::atomic::Ordering;
        // Catch the clock up so the retry can see the blocking version.
        if matches!(
            reason,
            crate::tx::AbortReason::FutureVersion | crate::tx::AbortReason::ReadValidation
        ) {
            self.time.fetch_add(1, Ordering::AcqRel);
        }
    }
}

/// The paper's relaxed strategy: MultiCounter samples plus Δ margin.
#[derive(Debug)]
pub struct RelaxedClock {
    counter: MultiCounter,
    delta: u64,
}

impl RelaxedClock {
    /// Wraps a MultiCounter with safety margin `delta`.
    ///
    /// `delta` must exceed the maximum skew you expect the counter to
    /// exhibit over an execution — the paper's Δ. For an `m`-cell
    /// counter the skew is O(m log m) w.h.p. (Lemma 6.8);
    /// [`suggested_delta`](Self::suggested_delta) computes `κ·m·ln m`.
    pub fn new(counter: MultiCounter, delta: u64) -> Self {
        RelaxedClock { counter, delta }
    }

    /// Builds from a cell count with the default margin (κ = 4).
    pub fn with_counters(m: usize) -> Self {
        let delta = Self::suggested_delta(m, 4.0);
        Self::new(MultiCounter::new(m), delta)
    }

    /// `κ·m·ln m`, rounded up — the shape of the skew bound.
    pub fn suggested_delta(m: usize, kappa: f64) -> u64 {
        let mf = m as f64;
        (kappa * mf * mf.ln()).ceil().max(1.0) as u64
    }

    /// The configured margin Δ.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// The underlying counter (diagnostics).
    pub fn counter(&self) -> &MultiCounter {
        &self.counter
    }
}

impl ClockStrategy for RelaxedClock {
    #[inline]
    fn read_version(&self, tmax: u64) -> u64 {
        // A relaxed sample, floored by the thread's own history so a
        // thread never regresses below versions it already observed
        // (e.g. its own committed writes).
        self.counter.read().max(tmax)
    }

    #[inline]
    fn write_version(&self, tmax: u64, max_old_version: u64) -> u64 {
        // Advance the distributed clock, then stamp in the future:
        // beyond our history, beyond the sample, and beyond every
        // overwritten version (so per-location versions stay monotone —
        // "each new write always increments an object's timestamp by
        // ≥ Δ").
        self.counter.increment();
        let sample = self.counter.read();
        sample.max(tmax).max(max_old_version) + self.delta
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn on_abort(&self, reason: crate::tx::AbortReason) {
        // Only future-version aborts indicate the clock is behind a
        // stamped version; advancing on them restores liveness without
        // inflating the clock on ordinary contention aborts.
        //
        // The blocking stamp sits at most Δ ahead of the aborting
        // thread's read version, so nudging by Δ/4 (+1) bridges any
        // hole within ~4 retries instead of Δ — this is what keeps the
        // stall cost of a future-stamped object bounded even when no
        // other thread is committing (e.g. single-threaded use). The
        // overshoot per abort is ≤ Δ/4 ticks of logical time, which
        // only makes the clock run slightly fast — harmless, since all
        // guarantees are relative to the clock itself.
        if reason == crate::tx::AbortReason::FutureVersion {
            for _ in 0..(self.delta / 4 + 1) {
                self.counter.increment();
            }
        }
    }
}

/// Exact clocks also satisfy the general [`Clock`] interface, so
/// harnesses can inspect them uniformly.
impl Clock for ExactClock {
    fn tick(&self) -> u64 {
        self.clock.tick()
    }
    fn now(&self) -> u64 {
        self.clock.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_clock_monotone_unique() {
        let c = ExactClock::new();
        let rv = c.read_version(0);
        let wv1 = c.write_version(0, 0);
        let wv2 = c.write_version(0, 0);
        assert!(rv < wv1 && wv1 < wv2);
        assert!(ClockStrategy::is_exact(&c));
    }

    #[test]
    fn relaxed_write_version_exceeds_everything() {
        let c = RelaxedClock::new(MultiCounter::new(8), 100);
        let tmax = 500;
        let old = 620;
        let wv = c.write_version(tmax, old);
        assert!(wv >= tmax + 100);
        assert!(wv >= old + 100);
        assert!(!c.is_exact());
    }

    #[test]
    fn relaxed_read_version_floors_at_tmax() {
        let c = RelaxedClock::new(MultiCounter::new(8), 10);
        // Counter is near zero, but the thread has seen timestamp 999.
        assert!(c.read_version(999) >= 999);
    }

    #[test]
    fn gv4_versions_never_decrease() {
        let c = Gv4Clock::new();
        let mut last = 0;
        for _ in 0..100 {
            let wv = c.write_version(0, 0);
            assert!(wv >= last);
            assert!(wv > c.read_version(0).saturating_sub(1));
            last = wv;
        }
        assert_eq!(c.now(), 100); // uncontended: every CAS succeeds
    }

    #[test]
    fn gv5_does_not_advance_on_commit() {
        let c = Gv5Clock::new();
        let wv1 = c.write_version(0, 0);
        let wv2 = c.write_version(0, 0);
        assert_eq!(wv1, 1);
        assert_eq!(wv2, 1, "GV5 shares versions until an abort advances G");
        assert_eq!(c.now(), 0);
        c.on_abort(crate::tx::AbortReason::FutureVersion);
        assert_eq!(c.now(), 1);
        assert_eq!(c.write_version(0, 0), 2);
        // Overwritten versions are still respected.
        assert_eq!(c.write_version(0, 10), 11);
    }

    #[test]
    fn gv4_gv5_are_not_exact() {
        assert!(!ClockStrategy::is_exact(&Gv4Clock::new()));
        assert!(!ClockStrategy::is_exact(&Gv5Clock::new()));
    }

    #[test]
    fn suggested_delta_scales() {
        assert!(RelaxedClock::suggested_delta(64, 4.0) > RelaxedClock::suggested_delta(8, 4.0));
        assert!(RelaxedClock::suggested_delta(1, 4.0) >= 1);
        let r = RelaxedClock::with_counters(16);
        assert_eq!(r.delta(), RelaxedClock::suggested_delta(16, 4.0));
        assert_eq!(r.counter().num_counters(), 16);
    }
}
