//! The transactional array: TL2's memory.
//!
//! The paper's benchmark (Section 8) operates on "an array of M
//! transactional objects", which is also the natural shape for an
//! array-based TL2: each slot carries a value word and a versioned
//! write-lock. Values are `AtomicU64`s accessed with the seqlock
//! pattern (validated double-read against the lock word), so the crate
//! needs no `unsafe`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::vlock::VersionedLock;

/// One transactional location.
#[derive(Debug, Default)]
pub(crate) struct Slot {
    pub(crate) lock: VersionedLock,
    pub(crate) value: AtomicU64,
}

/// A fixed-size array of transactional `u64` cells.
#[derive(Debug)]
pub struct TArray {
    slots: Box<[Slot]>,
}

impl TArray {
    /// `len` zero-initialized cells.
    ///
    /// # Panics
    /// If `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "TArray needs at least one slot");
        TArray {
            slots: (0..len).map(|_| Slot::default()).collect(),
        }
    }

    /// Builds from initial values.
    pub fn from_values(values: &[u64]) -> Self {
        assert!(!values.is_empty(), "TArray needs at least one slot");
        TArray {
            slots: values
                .iter()
                .map(|&v| Slot {
                    lock: VersionedLock::new(),
                    value: AtomicU64::new(v),
                })
                .collect(),
        }
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if the array has no cells (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    #[inline]
    pub(crate) fn slot(&self, i: usize) -> &Slot {
        &self.slots[i]
    }

    /// Non-transactional read. Only meaningful when no transaction is
    /// in flight (e.g. the end-of-run correctness check).
    pub fn read_quiescent(&self, i: usize) -> u64 {
        self.slots[i].value.load(Ordering::Acquire)
    }

    /// Non-transactional sum over all cells (quiescent use only).
    pub fn sum_quiescent(&self) -> u128 {
        self.slots
            .iter()
            .map(|s| s.value.load(Ordering::Acquire) as u128)
            .sum()
    }

    /// Non-transactional snapshot (quiescent use only).
    pub fn snapshot(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|s| s.value.load(Ordering::Acquire))
            .collect()
    }

    /// `true` if any slot's lock is currently held — a quiescence check
    /// for tests (must be false after all threads joined).
    pub fn any_locked(&self) -> bool {
        self.slots
            .iter()
            .any(|s| crate::vlock::is_locked(s.lock.load()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_reads() {
        let a = TArray::new(4);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        assert_eq!(a.read_quiescent(0), 0);
        assert_eq!(a.sum_quiescent(), 0);
        assert!(!a.any_locked());
    }

    #[test]
    fn from_values() {
        let a = TArray::from_values(&[1, 2, 3]);
        assert_eq!(a.snapshot(), vec![1, 2, 3]);
        assert_eq!(a.sum_quiescent(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_len_rejected() {
        let _ = TArray::new(0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let a = TArray::new(2);
        let _ = a.read_quiescent(2);
    }
}
