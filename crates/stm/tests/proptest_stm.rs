//! Property-based tests for dlz-stm: version-lock word algebra and
//! sequential equivalence of arbitrary transaction programs against a
//! plain-array model.

use dlz_core::MultiCounter;
use dlz_stm::vlock::{is_locked, pack, version_of, MAX_VERSION};
use dlz_stm::{ClockStrategy, ExactClock, RelaxedClock, Tl2};
use proptest::prelude::*;

/// A step of a generated transaction program.
#[derive(Debug, Clone)]
enum Step {
    Read(usize),
    Write(usize, u64),
    Add(usize, u64),
}

fn step_strategy(len: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..len).prop_map(Step::Read),
        (0..len, any::<u64>()).prop_map(|(i, v)| Step::Write(i, v)),
        (0..len, 0u64..1000).prop_map(|(i, v)| Step::Add(i, v)),
    ]
}

/// Runs a whole program of transactions single-threadedly against both
/// the STM and a plain vector model; outputs and final states must
/// match exactly.
fn check_sequential_equivalence<C: ClockStrategy>(stm: &Tl2<C>, programs: &[Vec<Step>]) {
    let mut model: Vec<u64> = stm.array().snapshot();
    let mut handle = stm.thread();
    for program in programs {
        // Transactions are atomic; single-threaded they cannot abort
        // for contention (relaxed clocks may abort on their own future
        // stamps, but must retry to success transparently).
        let mut model_next = model.clone();
        let outputs_model: Vec<u64> = program
            .iter()
            .map(|step| match *step {
                Step::Read(i) => model_next[i],
                Step::Write(i, v) => {
                    model_next[i] = v;
                    v
                }
                Step::Add(i, d) => {
                    model_next[i] = model_next[i].wrapping_add(d);
                    model_next[i]
                }
            })
            .collect();
        let outputs_stm: Vec<u64> = handle.run(|tx| {
            let mut outs = Vec::with_capacity(program.len());
            for step in program {
                match *step {
                    Step::Read(i) => outs.push(tx.read(i)?),
                    Step::Write(i, v) => {
                        tx.write(i, v);
                        outs.push(v);
                    }
                    Step::Add(i, d) => {
                        let v = tx.read(i)?.wrapping_add(d);
                        tx.write(i, v);
                        outs.push(v);
                    }
                }
            }
            Ok(outs)
        });
        assert_eq!(outputs_stm, outputs_model);
        model = model_next;
        assert_eq!(stm.array().snapshot(), model, "post-commit state diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn vlock_word_algebra(version in 0u64..MAX_VERSION) {
        prop_assert_eq!(version_of(pack(version, true)), version);
        prop_assert_eq!(version_of(pack(version, false)), version);
        prop_assert!(is_locked(pack(version, true)));
        prop_assert!(!is_locked(pack(version, false)));
    }

    #[test]
    fn sequential_equivalence_exact_clock(
        programs in proptest::collection::vec(
            proptest::collection::vec(step_strategy(16), 1..12),
            1..20,
        ),
    ) {
        let stm = Tl2::new(16, ExactClock::new());
        check_sequential_equivalence(&stm, &programs);
    }

    #[test]
    fn sequential_equivalence_relaxed_clock(
        programs in proptest::collection::vec(
            proptest::collection::vec(step_strategy(16), 1..12),
            1..20,
        ),
        m in 1usize..8,
        kappa in 1u64..64,
    ) {
        // The relaxed clock must preserve *sequential* semantics exactly
        // for any (m, Δ) — relaxation only ever shows up as aborts and
        // retries, never as wrong values.
        let stm = Tl2::new(16, RelaxedClock::new(MultiCounter::new(m), kappa));
        check_sequential_equivalence(&stm, &programs);
    }

    #[test]
    fn write_version_monotone_per_object(
        tmax in 0u64..1_000_000,
        old in 0u64..1_000_000,
        m in 1usize..16,
        delta in 1u64..1_000,
    ) {
        let clock = RelaxedClock::new(MultiCounter::new(m), delta);
        let wv = clock.write_version(tmax, old);
        prop_assert!(wv >= old + delta, "new version must exceed old by >= delta");
        prop_assert!(wv >= tmax + delta, "new version must exceed tmax by >= delta");
    }

    #[test]
    fn exact_clock_versions_strictly_increase(k in 1usize..50) {
        let clock = ExactClock::new();
        let mut last = 0;
        for _ in 0..k {
            let wv = clock.write_version(0, 0);
            prop_assert!(wv > last);
            last = wv;
        }
    }
}
