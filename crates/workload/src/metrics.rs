//! Sharded, low-overhead run metrics.
//!
//! Each worker owns a private [`WorkerMetrics`] (no sharing, no atomics
//! on the hot path); the engine merges them after the run. Latencies go
//! into a [`LogHistogram`] — log-bucketed with 32 linear sub-buckets per
//! octave (HdrHistogram's layout in miniature), so recording is two
//! shifts and an add, memory is ~15 KiB per worker, and quantiles are
//! accurate to ~3% across the full nanosecond-to-minutes range.

use std::time::Duration;

use dlz_core::ContentionStats;

use crate::op::{OpCounts, OpKind};

const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Values below `SUB` get exact buckets; above, 32 sub-buckets/octave.
const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB;

/// A log-bucketed histogram of `u64` samples (latencies in nanoseconds).
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u128,
    max: u64,
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("total", &self.total)
            .field("max", &self.max)
            .finish()
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Box::new([0u64; BUCKETS]),
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    #[inline]
    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let top = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = (v >> (top - SUB_BITS)) & (SUB as u64 - 1);
        ((top - SUB_BITS + 1) as usize) * SUB + sub as usize
    }

    /// Representative (midpoint) value of bucket `i` — inverse of
    /// [`Self::index`] up to sub-bucket resolution.
    fn value(i: usize) -> u64 {
        if i < SUB {
            return i as u64;
        }
        let octave = (i / SUB - 1) as u32 + SUB_BITS;
        let sub = (i % SUB) as u64;
        let base = (1u64 << octave) + (sub << (octave - SUB_BITS));
        base + (1u64 << (octave - SUB_BITS)) / 2
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        if v > self.max {
            self.max = v;
        }
    }

    /// Records a [`Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of all samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q ∈ [0, 1]` (bucket-midpoint resolution; the
    /// top quantile is clamped to the exact max).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::value(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// One worker's private metrics shard.
#[derive(Debug, Clone, Default)]
pub struct WorkerMetrics {
    /// Completed-operation counts.
    pub counts: OpCounts,
    /// Latency of completed operations, nanoseconds.
    pub latency: LogHistogram,
}

impl WorkerMetrics {
    /// Records one completed (or empty-remove) operation.
    #[inline]
    pub fn record(&mut self, kind: OpKind, completed: bool, latency: Duration) {
        match (kind, completed) {
            (OpKind::Update, _) => self.counts.updates += 1,
            (OpKind::Remove, true) => self.counts.removes += 1,
            (OpKind::Remove, false) => {
                self.counts.removes_empty += 1;
                return; // empty removes carry no latency signal
            }
            (OpKind::Read, _) => self.counts.reads += 1,
        }
        self.latency.record_duration(latency);
    }

    /// Records a completed operation without a latency sample — the
    /// engine's latency-sampling mode (`Scenario::latency_every > 1`)
    /// counts every op but timestamps only every Nth, keeping the
    /// measurement overhead off the throughput hot path.
    #[inline]
    pub fn record_untimed(&mut self, kind: OpKind, completed: bool) {
        match (kind, completed) {
            (OpKind::Update, _) => self.counts.updates += 1,
            (OpKind::Remove, true) => self.counts.removes += 1,
            (OpKind::Remove, false) => self.counts.removes_empty += 1,
            (OpKind::Read, _) => self.counts.reads += 1,
        }
    }

    /// Merges another shard into this one.
    pub fn merge(&mut self, other: &WorkerMetrics) {
        self.counts.merge(&other.counts);
        self.latency.merge(&other.latency);
    }
}

/// Backend-internal telemetry drained from a worker at an interval
/// boundary: the contention counters accumulated since the last drain
/// plus the policy's current envelope factor (the live `s` for
/// adaptive stickiness).
#[derive(Debug, Clone, Default)]
pub struct TelemetrySample {
    /// Hot-path contention counters since the last drain.
    pub contention: ContentionStats,
    /// Observed policy envelope factor at drain time (0 when the
    /// backend reports none).
    pub envelope_factor: f64,
}

/// One interval's **delta** snapshot: everything a worker did between
/// two consecutive interval boundaries. Merging every snapshot of a run
/// reconstructs the run's totals exactly — conservation by
/// construction, which the engine relies on when telemetry is enabled.
#[derive(Debug, Clone, Default)]
pub struct IntervalSnapshot {
    /// Zero-based interval index (`floor(elapsed / interval)` of the
    /// boundary that closed it); workers align on this when merged.
    pub index: u64,
    /// Milliseconds from run start to the flush that closed this
    /// snapshot (the last partial interval flushes early).
    pub end_ms: u64,
    /// Operations completed during the interval.
    pub counts: OpCounts,
    /// Latency samples recorded during the interval, nanoseconds.
    pub latency: LogHistogram,
    /// Contention counters accumulated during the interval.
    pub contention: ContentionStats,
    /// Policy envelope factor observed at the interval boundary
    /// (max across merged workers).
    pub envelope_factor: f64,
}

impl IntervalSnapshot {
    /// Merges another snapshot of the same interval into this one:
    /// counts, latency and contention add; the envelope factor and end
    /// offset take the max.
    pub fn merge(&mut self, other: &IntervalSnapshot) {
        self.counts.merge(&other.counts);
        self.latency.merge(&other.latency);
        self.contention.merge(&other.contention);
        if other.envelope_factor > self.envelope_factor {
            self.envelope_factor = other.envelope_factor;
        }
        self.end_ms = self.end_ms.max(other.end_ms);
    }

    /// `true` if the snapshot recorded no operations and no contention
    /// events.
    pub fn is_empty(&self) -> bool {
        self.counts.completed() == 0 && self.counts.removes_empty == 0 && self.contention.is_empty()
    }
}

/// A run's aligned time series: per-interval snapshots merged across
/// workers by interval index.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySeries {
    /// Nominal interval length, milliseconds.
    pub interval_ms: u64,
    /// Dense, index-aligned snapshots (position `i` is interval `i`;
    /// intervals no worker flushed stay empty).
    pub intervals: Vec<IntervalSnapshot>,
}

impl TelemetrySeries {
    /// An empty series with the given nominal interval.
    pub fn new(interval_ms: u64) -> Self {
        TelemetrySeries {
            interval_ms: interval_ms.max(1),
            intervals: Vec::new(),
        }
    }

    /// Merges one worker's snapshots into the aligned series. The
    /// series stays dense: missing indices are padded with empty
    /// snapshots so every worker's interval `i` lands in position `i`.
    pub fn merge_worker(&mut self, snaps: &[IntervalSnapshot]) {
        for s in snaps {
            let i = s.index as usize;
            while self.intervals.len() <= i {
                let index = self.intervals.len() as u64;
                self.intervals.push(IntervalSnapshot {
                    index,
                    end_ms: (index + 1) * self.interval_ms,
                    ..IntervalSnapshot::default()
                });
            }
            self.intervals[i].merge(s);
        }
    }

    /// Sum of every interval's op counts — equals the run's merged
    /// (pre-prefill) totals exactly.
    pub fn totals(&self) -> OpCounts {
        let mut t = OpCounts::default();
        for s in &self.intervals {
            t.merge(&s.counts);
        }
        t
    }

    /// Sum of every interval's contention counters (gauge takes the
    /// max, as [`ContentionStats::merge`] defines).
    pub fn total_contention(&self) -> ContentionStats {
        let mut t = ContentionStats::new();
        for s in &self.intervals {
            t.merge(&s.contention);
        }
        t
    }
}

/// Latency summary extracted from a merged histogram, for reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Mean latency, nanoseconds.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarizes a histogram.
    pub fn from(h: &LogHistogram) -> Self {
        LatencySummary {
            mean_ns: h.mean(),
            p50_ns: h.quantile(0.50),
            p99_ns: h.quantile(0.99),
            p999_ns: h.quantile(0.999),
            max_ns: h.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_value_roundtrip_within_resolution() {
        for v in [0u64, 1, 31, 32, 33, 100, 1_000, 123_456, u32::MAX as u64] {
            let idx = LogHistogram::index(v);
            let mid = LogHistogram::value(idx);
            let err = mid.abs_diff(v) as f64 / v.max(1) as f64;
            assert!(err <= 0.05, "v={v} mid={mid} err={err}");
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.len(), 10_000);
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 / 5_000.0 - 1.0).abs() < 0.05, "p50={p50}");
        assert!((p99 / 9_900.0 - 1.0).abs() < 0.05, "p99={p99}");
        assert_eq!(h.quantile(1.0), 10_000);
        assert!((h.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 37);
            } else {
                b.record(v * 37);
            }
            c.record(v * 37);
        }
        a.merge(&b);
        assert_eq!(a.len(), c.len());
        assert_eq!(a.max(), c.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), c.quantile(q));
        }
    }

    fn snap(index: u64, updates: u64, try_fails: u64, factor: f64) -> IntervalSnapshot {
        let mut s = IntervalSnapshot {
            index,
            end_ms: (index + 1) * 100,
            envelope_factor: factor,
            ..IntervalSnapshot::default()
        };
        s.counts.updates = updates;
        s.contention.try_lock_failures = try_fails;
        s.latency.record(updates.max(1) * 100);
        s
    }

    #[test]
    fn snapshot_merge_is_associative_and_order_independent() {
        let (a, b, c) = (snap(0, 10, 3, 2.0), snap(0, 20, 5, 4.0), snap(0, 7, 1, 1.0));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        // c ⊕ b ⊕ a (reversed order)
        let mut rev = c.clone();
        rev.merge(&b);
        rev.merge(&a);
        for m in [&right, &rev] {
            assert_eq!(left.counts.updates, m.counts.updates);
            assert_eq!(
                left.contention.try_lock_failures,
                m.contention.try_lock_failures
            );
            assert_eq!(left.envelope_factor, m.envelope_factor);
            assert_eq!(left.latency.len(), m.latency.len());
            assert_eq!(left.latency.max(), m.latency.max());
            assert_eq!(left.end_ms, m.end_ms);
        }
        assert_eq!(left.counts.updates, 37);
        assert_eq!(left.contention.try_lock_failures, 9);
        assert_eq!(left.envelope_factor, 4.0);
    }

    #[test]
    fn series_aligns_workers_by_index_and_conserves_totals() {
        let mut series = TelemetrySeries::new(100);
        // Worker A flushed intervals 0 and 2 (stalled through 1);
        // worker B flushed 0 and 1.
        series.merge_worker(&[snap(0, 5, 2, 1.0), snap(2, 9, 4, 2.0)]);
        series.merge_worker(&[snap(1, 6, 1, 8.0), snap(0, 3, 0, 1.0)]);
        assert_eq!(series.intervals.len(), 3);
        for (i, s) in series.intervals.iter().enumerate() {
            assert_eq!(s.index, i as u64, "dense and aligned");
        }
        assert_eq!(series.intervals[0].counts.updates, 8);
        assert_eq!(series.intervals[1].counts.updates, 6);
        assert_eq!(series.intervals[1].envelope_factor, 8.0);
        assert_eq!(series.totals().updates, 23);
        assert_eq!(series.total_contention().try_lock_failures, 7);
        // Merge order across workers does not change the series.
        let mut other = TelemetrySeries::new(100);
        other.merge_worker(&[snap(1, 6, 1, 8.0), snap(0, 3, 0, 1.0)]);
        other.merge_worker(&[snap(0, 5, 2, 1.0), snap(2, 9, 4, 2.0)]);
        assert_eq!(other.totals().updates, series.totals().updates);
        for (x, y) in series.intervals.iter().zip(&other.intervals) {
            assert_eq!(x.counts.updates, y.counts.updates);
            assert_eq!(
                x.contention.try_lock_failures,
                y.contention.try_lock_failures
            );
        }
    }

    #[test]
    fn empty_snapshot_detection() {
        let mut s = IntervalSnapshot::default();
        assert!(s.is_empty());
        s.contention.backoff_spins = 1;
        assert!(!s.is_empty());
    }

    #[test]
    fn worker_metrics_classify_ops() {
        let mut m = WorkerMetrics::default();
        let d = Duration::from_nanos(100);
        m.record(OpKind::Update, true, d);
        m.record(OpKind::Remove, true, d);
        m.record(OpKind::Remove, false, d);
        m.record(OpKind::Read, true, d);
        assert_eq!(m.counts.updates, 1);
        assert_eq!(m.counts.removes, 1);
        assert_eq!(m.counts.removes_empty, 1);
        assert_eq!(m.counts.reads, 1);
        // Empty remove recorded no latency sample.
        assert_eq!(m.latency.len(), 3);
    }
}
