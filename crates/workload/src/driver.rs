//! Low-level timed-run primitives: barrier start, stop flag, per-thread
//! op counts.
//!
//! This is the discipline every scaling figure uses (spawn workers,
//! release them simultaneously, run against a stop flag for a fixed
//! wall-clock duration, sum per-thread counts). It lives here so both
//! the scenario [`engine`](crate::engine) and the `dlz-bench` harness
//! drive threads exactly the same way; `dlz_bench::harness` re-exports
//! these items unchanged.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Result of one timed run.
#[derive(Debug, Clone, Copy)]
pub struct Throughput {
    /// Worker count.
    pub threads: usize,
    /// Total operations completed across workers.
    pub total_ops: u64,
    /// Measured wall-clock duration.
    pub elapsed: Duration,
}

impl Throughput {
    /// Million operations per second.
    pub fn mops(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// Operations per second.
    pub fn ops(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs `threads` workers for `duration` and sums their op counts.
///
/// `factory(t)` builds worker `t`'s closure; the closure runs after the
/// start barrier and must return its operation count when it observes
/// the stop flag (see [`count_until_stopped`]).
pub fn run_throughput<W>(
    threads: usize,
    duration: Duration,
    factory: impl Fn(usize) -> W,
) -> Throughput
where
    W: FnMut(&AtomicBool) -> u64 + Send,
{
    assert!(threads > 0, "need at least one thread");
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 1);
    let (total_ops, elapsed) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mut worker = factory(t);
                let stop = &stop;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    worker(stop)
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Release);
        let total: u64 = handles.into_iter().map(|h| h.join().expect("worker")).sum();
        (total, start.elapsed())
    });
    Throughput {
        threads,
        total_ops,
        elapsed,
    }
}

/// The canonical worker body: run `op` until the stop flag is set,
/// return the number of completed operations.
///
/// Checks the flag every iteration with a `Relaxed` load — negligible
/// against any real operation, and the `Release` store in the harness
/// plus thread join provide the necessary synchronization for counts.
#[inline]
pub fn count_until_stopped(stop: &AtomicBool, mut op: impl FnMut()) -> u64 {
    let mut n = 0u64;
    while !stop.load(Ordering::Relaxed) {
        op();
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn counts_sum_across_threads() {
        let shared = AtomicU64::new(0);
        let t = run_throughput(3, Duration::from_millis(50), |_t| {
            let shared = &shared;
            move |stop: &AtomicBool| {
                count_until_stopped(stop, || {
                    shared.fetch_add(1, Ordering::Relaxed);
                })
            }
        });
        assert_eq!(t.threads, 3);
        assert_eq!(t.total_ops, shared.load(Ordering::Relaxed));
        assert!(t.total_ops > 0);
        assert!(t.elapsed >= Duration::from_millis(50));
        assert!(t.mops() > 0.0);
        assert!((t.ops() - t.mops() * 1e6).abs() < 1.0);
    }

    #[test]
    fn thread_index_reaches_factory() {
        let seen = std::sync::Mutex::new(Vec::new());
        run_throughput(4, Duration::from_millis(10), |t| {
            seen.lock().unwrap().push(t);
            move |stop: &AtomicBool| count_until_stopped(stop, || {})
        });
        let mut v = seen.into_inner().unwrap();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = run_throughput(0, Duration::from_millis(1), |_t| {
            move |stop: &AtomicBool| count_until_stopped(stop, || {})
        });
    }
}
