//! Seeded, deterministic fault plans — the chaos dimension of a
//! scenario.
//!
//! A [`FaultPlan`] is parsed from a compact spec string and compiled
//! into per-worker [`WorkerFaults`] that the engine consults before
//! every operation. Faults are **deterministic given the scenario
//! seed**: a panic fires before a fixed op index, a stall sleeps a
//! fixed duration (or until the watchdog aborts the run), and a slow
//! worker draws its per-op delays from a seeded generator — so a chaos
//! run is as reproducible as a healthy one.
//!
//! ## Spec grammar
//!
//! Semicolon-separated clauses, one fault each:
//!
//! | clause | meaning |
//! |---|---|
//! | `panic:W@N` | worker `W` panics immediately before its `N`-th op |
//! | `stall:W@N:MS` | worker `W` sleeps `MS` ms before its `N`-th op |
//! | `stall:W@N:forever` | worker `W` stalls until the watchdog aborts |
//! | `slow:W:US` | worker `W` sleeps `US` µs before every op |
//! | `slow:W:U1..U2` | per-op delay drawn uniformly from `U1..=U2` µs |
//!
//! Op indices are zero-based and count *issued* operations, so
//! `panic:1@400` lets worker 1 complete (and log) ops `0..400` before
//! dying. At most one fault of each kind per worker; duplicate clauses
//! are parse errors.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use dlz_core::rng::{Rng64, Xoshiro256};

/// One injected fault, bound to a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The worker panics immediately before issuing its `op`-th
    /// (zero-based) operation, so ops `0..op` complete and are logged.
    PanicAt {
        /// Worker id the fault binds to.
        worker: usize,
        /// Zero-based index of the op the panic pre-empts.
        op: u64,
    },
    /// The worker stalls before its `op`-th operation: for `Some(ms)`
    /// milliseconds, or until the watchdog aborts the run when `ms` is
    /// `None` (`forever`).
    StallAt {
        /// Worker id the fault binds to.
        worker: usize,
        /// Zero-based index of the op the stall pre-empts.
        op: u64,
        /// Stall length in milliseconds; `None` stalls until aborted.
        ms: Option<u64>,
    },
    /// The worker sleeps a uniformly drawn `min_us..=max_us`
    /// microseconds before every operation — a seeded long-tail
    /// straggler.
    Slow {
        /// Worker id the fault binds to.
        worker: usize,
        /// Smallest per-op delay, microseconds.
        min_us: u64,
        /// Largest per-op delay, microseconds.
        max_us: u64,
    },
}

impl Fault {
    fn worker(&self) -> usize {
        match *self {
            Fault::PanicAt { worker, .. }
            | Fault::StallAt { worker, .. }
            | Fault::Slow { worker, .. } => worker,
        }
    }
}

/// A parsed fault-injection plan: the spec string it came from (echoed
/// into reports) plus the faults it describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    spec: String,
    faults: Vec<Fault>,
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec)
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultPlan::parse(s)
    }
}

impl FaultPlan {
    /// Parses a spec string (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            faults.push(parse_clause(clause)?);
        }
        if faults.is_empty() {
            return Err("empty fault plan".into());
        }
        // One fault of each kind per worker keeps compiled plans
        // unambiguous (which panic op would win?).
        for (i, a) in faults.iter().enumerate() {
            for b in &faults[..i] {
                if a.worker() == b.worker()
                    && std::mem::discriminant(a) == std::mem::discriminant(b)
                {
                    return Err(format!(
                        "duplicate fault of the same kind for worker {}",
                        a.worker()
                    ));
                }
            }
        }
        Ok(FaultPlan {
            spec: spec.trim().to_string(),
            faults,
        })
    }

    /// The spec string the plan was parsed from.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// The parsed faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Highest worker id any fault names.
    pub fn max_worker(&self) -> usize {
        self.faults.iter().map(Fault::worker).max().unwrap_or(0)
    }

    /// `true` if any fault panics or stalls forever — i.e. the plan can
    /// leave a worker short of its budget.
    pub fn is_lossy(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::PanicAt { .. } | Fault::StallAt { ms: None, .. }))
    }

    /// Compiles the plan down to one worker's view. `seed` feeds the
    /// slow-worker delay generator, so per-op delays are deterministic
    /// per (plan, scenario seed, worker).
    pub fn compile(&self, worker: usize, seed: u64) -> WorkerFaults {
        let mut w = WorkerFaults {
            panic_at: None,
            stall_at: None,
            slow: None,
            rng: Xoshiro256::new(seed),
        };
        for f in &self.faults {
            match *f {
                Fault::PanicAt { worker: t, op } if t == worker => w.panic_at = Some(op),
                Fault::StallAt { worker: t, op, ms } if t == worker => w.stall_at = Some((op, ms)),
                Fault::Slow {
                    worker: t,
                    min_us,
                    max_us,
                } if t == worker => w.slow = Some((min_us, max_us)),
                _ => {}
            }
        }
        w
    }
}

fn parse_clause(clause: &str) -> Result<Fault, String> {
    let mut parts = clause.split(':');
    let kind = parts.next().unwrap_or_default();
    match kind {
        "panic" => {
            let (worker, op) = parse_at(parts.next(), clause)?;
            expect_end(parts, clause)?;
            Ok(Fault::PanicAt { worker, op })
        }
        "stall" => {
            let (worker, op) = parse_at(parts.next(), clause)?;
            let ms = match parts.next() {
                Some("forever") => None,
                Some(ms) => Some(parse_u64(ms, clause)?),
                None => return Err(format!("`{clause}`: stall needs `:MS` or `:forever`")),
            };
            expect_end(parts, clause)?;
            Ok(Fault::StallAt { worker, op, ms })
        }
        "slow" => {
            let worker = parse_u64(
                parts
                    .next()
                    .ok_or_else(|| format!("`{clause}`: slow needs a worker id"))?,
                clause,
            )? as usize;
            let range = parts
                .next()
                .ok_or_else(|| format!("`{clause}`: slow needs `:US` or `:U1..U2`"))?;
            let (min_us, max_us) = match range.split_once("..") {
                Some((lo, hi)) => (parse_u64(lo, clause)?, parse_u64(hi, clause)?),
                None => {
                    let us = parse_u64(range, clause)?;
                    (us, us)
                }
            };
            if min_us > max_us {
                return Err(format!("`{clause}`: empty delay range {min_us}..{max_us}"));
            }
            expect_end(parts, clause)?;
            Ok(Fault::Slow {
                worker,
                min_us,
                max_us,
            })
        }
        other => Err(format!(
            "`{clause}`: unknown fault kind `{other}` (expected panic, stall or slow)"
        )),
    }
}

fn parse_at(part: Option<&str>, clause: &str) -> Result<(usize, u64), String> {
    let part = part.ok_or_else(|| format!("`{clause}`: missing `W@N`"))?;
    let (w, n) = part
        .split_once('@')
        .ok_or_else(|| format!("`{clause}`: expected `W@N`, got `{part}`"))?;
    Ok((parse_u64(w, clause)? as usize, parse_u64(n, clause)?))
}

fn parse_u64(s: &str, clause: &str) -> Result<u64, String> {
    s.trim()
        .parse::<u64>()
        .map_err(|_| format!("`{clause}`: `{s}` is not a number"))
}

fn expect_end<'a>(mut parts: impl Iterator<Item = &'a str>, clause: &str) -> Result<(), String> {
    match parts.next() {
        None => Ok(()),
        Some(extra) => Err(format!("`{clause}`: trailing `:{extra}`")),
    }
}

/// One worker's compiled view of a [`FaultPlan`]: checked by the engine
/// immediately before each issued operation.
#[derive(Debug, Clone)]
pub struct WorkerFaults {
    panic_at: Option<u64>,
    stall_at: Option<(u64, Option<u64>)>,
    slow: Option<(u64, u64)>,
    rng: Xoshiro256,
}

impl WorkerFaults {
    /// `true` if this worker carries no faults at all (the compiled
    /// per-op check still runs, but does nothing).
    pub fn is_noop(&self) -> bool {
        self.panic_at.is_none() && self.stall_at.is_none() && self.slow.is_none()
    }

    /// The slow-worker delay for the next op, if any.
    fn slow_delay_us(&mut self) -> Option<u64> {
        let (lo, hi) = self.slow?;
        Some(lo + self.rng.bounded(hi - lo + 1))
    }

    /// Runs this worker's faults for its `op`-th (zero-based) issued
    /// operation. Returns `false` when the run was aborted (by the
    /// watchdog) and the worker should stop issuing ops; panics when a
    /// `panic:` fault fires. Fault order per op: stall, then panic,
    /// then the slow delay.
    pub fn before_op(&mut self, op: u64, abort: &AtomicBool) -> bool {
        if abort.load(Ordering::Relaxed) {
            return false;
        }
        if let Some((at, ms)) = self.stall_at {
            if op == at {
                match ms {
                    Some(ms) => std::thread::sleep(Duration::from_millis(ms)),
                    // A "forever" stall models a wedged worker; it polls
                    // nothing but the abort flag, so only the watchdog
                    // can release it.
                    None => loop {
                        if abort.load(Ordering::Relaxed) {
                            return false;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    },
                }
            }
        }
        if self.panic_at == Some(op) {
            panic!("injected fault: panic before op {op}");
        }
        if let Some(us) = self.slow_delay_us() {
            if us > 0 {
                std::thread::sleep(Duration::from_micros(us));
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn parses_every_clause_kind_and_round_trips_the_spec() {
        let spec = "panic:1@400; stall:2@300:30; slow:3:5..20";
        let plan = FaultPlan::parse(spec).expect("parse");
        assert_eq!(plan.spec(), spec);
        assert_eq!(plan.to_string(), spec);
        assert_eq!(
            plan.faults(),
            &[
                Fault::PanicAt { worker: 1, op: 400 },
                Fault::StallAt {
                    worker: 2,
                    op: 300,
                    ms: Some(30)
                },
                Fault::Slow {
                    worker: 3,
                    min_us: 5,
                    max_us: 20
                },
            ]
        );
        assert_eq!(plan.max_worker(), 3);
        assert!(plan.is_lossy());

        let fixed = FaultPlan::parse("slow:0:7;stall:1@9:forever").expect("parse");
        assert_eq!(
            fixed.faults(),
            &[
                Fault::Slow {
                    worker: 0,
                    min_us: 7,
                    max_us: 7
                },
                Fault::StallAt {
                    worker: 1,
                    op: 9,
                    ms: None
                },
            ]
        );
        assert!(fixed.is_lossy(), "forever stalls are lossy");
        assert!(
            !FaultPlan::parse("slow:0:7;stall:1@9:30")
                .expect("parse")
                .is_lossy(),
            "bounded stalls and slow workers complete their budget"
        );
    }

    #[test]
    fn rejects_malformed_and_duplicate_clauses() {
        for bad in [
            "",
            "jitter:0@1",
            "panic:3",
            "panic:a@1",
            "stall:0@5",
            "stall:0@5:soon",
            "slow:0",
            "slow:0:9..2",
            "panic:0@1:extra",
            "panic:0@1;panic:0@2",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted `{bad}`");
        }
        // Same worker, different kinds: fine.
        assert!(FaultPlan::parse("panic:0@5;slow:0:3").is_ok());
    }

    #[test]
    fn compiled_faults_bind_to_their_worker_only() {
        let plan = FaultPlan::parse("panic:1@3;slow:2:0").expect("parse");
        let abort = AtomicBool::new(false);

        let mut healthy = plan.compile(0, 7);
        assert!(healthy.is_noop());
        for op in 0..10 {
            assert!(healthy.before_op(op, &abort));
        }

        let mut doomed = plan.compile(1, 7);
        assert!(!doomed.is_noop());
        assert!(doomed.before_op(0, &abort));
        assert!(doomed.before_op(2, &abort));
        let err = catch_unwind(AssertUnwindSafe(|| doomed.before_op(3, &abort)))
            .expect_err("op 3 must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault"), "{msg}");
    }

    #[test]
    fn abort_flag_stops_the_worker_before_any_fault() {
        let plan = FaultPlan::parse("panic:0@0;stall:1@0:forever").expect("parse");
        let abort = AtomicBool::new(true);
        // Abort wins over the pending panic…
        assert!(!plan.compile(0, 1).before_op(0, &abort));
        // …and releases a forever stall immediately.
        assert!(!plan.compile(1, 1).before_op(0, &abort));
    }

    #[test]
    fn slow_delays_are_seed_deterministic_and_in_range() {
        let plan = FaultPlan::parse("slow:0:5..20").expect("parse");
        let mut a = plan.compile(0, 42);
        let mut b = plan.compile(0, 42);
        let mut c = plan.compile(0, 43);
        let da: Vec<u64> = (0..64).filter_map(|_| a.slow_delay_us()).collect();
        let db: Vec<u64> = (0..64).filter_map(|_| b.slow_delay_us()).collect();
        let dc: Vec<u64> = (0..64).filter_map(|_| c.slow_delay_us()).collect();
        assert_eq!(da, db, "same seed, same delays");
        assert_ne!(da, dc, "different seed, different delays");
        assert!(da.iter().all(|&d| (5..=20).contains(&d)));
    }
}
