//! The abstract operation vocabulary shared by every backend.
//!
//! A scenario does not know whether it is driving a counter, a relaxed
//! queue or a transactional array; it only draws *abstract* operations
//! from its mix and distributions. Each backend maps the three classes
//! onto its own methods (see the table on [`OpKind`]).

/// The three operation classes a scenario can mix.
///
/// | kind | counter | queue / PQ | STM |
/// |---|---|---|---|
/// | `Update` | `increment`/`add(w)` | `insert(priority)` | 2-slot add transaction |
/// | `Remove` | counted as a read | `delete_min` | 2-slot add transaction |
/// | `Read` | sampled `read()` | `min_hint` peek | read-only transaction |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Insert/increment/mutate.
    Update,
    /// Consume from the structure (dequeue-like).
    Remove,
    /// Pure observation.
    Read,
}

/// One fully drawn operation: the class plus every random attribute a
/// backend might need. Drawing all attributes up front keeps backends
/// deterministic and the engine's per-op cost flat across backends.
#[derive(Debug, Clone, Copy)]
pub struct Op {
    /// Operation class.
    pub kind: OpKind,
    /// Key (counter/STM slot index; ignored by queues).
    pub key: u64,
    /// Priority (queue inserts; ignored elsewhere).
    pub priority: u64,
    /// Weight (weighted counter adds; 1 for plain increments).
    pub weight: u64,
}

/// Relative frequencies of the three operation classes.
///
/// Weights are integers (think percentages, though any scale works);
/// a zero weight disables the class entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Relative weight of [`OpKind::Update`].
    pub update: u32,
    /// Relative weight of [`OpKind::Remove`].
    pub remove: u32,
    /// Relative weight of [`OpKind::Read`].
    pub read: u32,
}

impl OpMix {
    /// A mix with the given update/remove/read weights.
    ///
    /// # Panics
    /// If all three weights are zero.
    pub fn new(update: u32, remove: u32, read: u32) -> Self {
        assert!(
            update + remove + read > 0,
            "OpMix needs at least one nonzero weight"
        );
        OpMix {
            update,
            remove,
            read,
        }
    }

    /// Short label used in sweep-cell names and grid coordinates:
    /// `update-remove-read`, e.g. `50-50-0`. [`OpMix::parse`] is the
    /// inverse.
    pub fn label(&self) -> String {
        format!("{}-{}-{}", self.update, self.remove, self.read)
    }

    /// Parses an `update-remove-read` weight triple. Accepts `-`, `/`
    /// or `:` as the separator (`90/0/10`, `50-50-0`, `60:30:10`).
    pub fn parse(s: &str) -> Result<OpMix, String> {
        let parts: Vec<&str> = s.split(['-', '/', ':']).collect();
        if parts.len() != 3 {
            return Err(format!(
                "op mix '{s}' must be an update-remove-read triple like 50/50/0"
            ));
        }
        let mut w = [0u32; 3];
        for (slot, part) in w.iter_mut().zip(&parts) {
            *slot = part
                .trim()
                .parse()
                .map_err(|_| format!("op mix '{s}': '{part}' is not a weight"))?;
        }
        if w.iter().all(|&x| x == 0) {
            return Err(format!("op mix '{s}' needs at least one nonzero weight"));
        }
        Ok(OpMix::new(w[0], w[1], w[2]))
    }

    /// Total weight.
    pub fn total(&self) -> u32 {
        self.update + self.remove + self.read
    }

    /// Maps a uniform draw in `0..total()` to an [`OpKind`].
    #[inline]
    pub fn pick(&self, draw: u32) -> OpKind {
        debug_assert!(draw < self.total());
        if draw < self.update {
            OpKind::Update
        } else if draw < self.update + self.remove {
            OpKind::Remove
        } else {
            OpKind::Read
        }
    }
}

/// Completed-operation counts, merged across workers after a run.
///
/// `removes_empty` counts remove attempts that observed an empty
/// structure — they are not failures, but they must not be conflated
/// with successful removals when checking conservation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Completed updates during the measured run.
    pub updates: u64,
    /// Removes that returned an item.
    pub removes: u64,
    /// Remove attempts that found the structure empty.
    pub removes_empty: u64,
    /// Completed reads.
    pub reads: u64,
    /// Updates performed by the sequential prefill phase (not counted
    /// in throughput, but part of every conservation law).
    pub prefill: u64,
}

impl OpCounts {
    /// Operations that completed during the measured run (prefill and
    /// empty-remove attempts excluded).
    pub fn completed(&self) -> u64 {
        self.updates + self.removes + self.reads
    }

    /// All items ever inserted (prefill included).
    pub fn inserted(&self) -> u64 {
        self.updates + self.prefill
    }

    /// Merges another worker's counts into this one.
    pub fn merge(&mut self, other: &OpCounts) {
        self.updates += other.updates;
        self.removes += other.removes;
        self.removes_empty += other.removes_empty;
        self.reads += other.reads;
        self.prefill += other.prefill;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_maps_draws_in_order() {
        let mix = OpMix::new(50, 30, 20);
        assert_eq!(mix.total(), 100);
        assert_eq!(mix.pick(0), OpKind::Update);
        assert_eq!(mix.pick(49), OpKind::Update);
        assert_eq!(mix.pick(50), OpKind::Remove);
        assert_eq!(mix.pick(79), OpKind::Remove);
        assert_eq!(mix.pick(80), OpKind::Read);
        assert_eq!(mix.pick(99), OpKind::Read);
    }

    #[test]
    #[should_panic(expected = "nonzero weight")]
    fn empty_mix_rejected() {
        let _ = OpMix::new(0, 0, 0);
    }

    #[test]
    fn mix_label_parse_roundtrip() {
        for mix in [
            OpMix::new(50, 50, 0),
            OpMix::new(90, 0, 10),
            OpMix::new(60, 30, 10),
        ] {
            assert_eq!(OpMix::parse(&mix.label()), Ok(mix));
        }
        assert_eq!(OpMix::parse("90/0/10"), Ok(OpMix::new(90, 0, 10)));
        assert_eq!(OpMix::parse("60:30:10"), Ok(OpMix::new(60, 30, 10)));
        assert!(OpMix::parse("50/50").is_err(), "two fields");
        assert!(OpMix::parse("a/b/c").is_err(), "non-numeric");
        assert!(OpMix::parse("0-0-0").is_err(), "all-zero mix");
    }

    #[test]
    fn counts_merge_and_derive() {
        let mut a = OpCounts {
            updates: 10,
            removes: 5,
            removes_empty: 2,
            reads: 3,
            prefill: 100,
        };
        let b = OpCounts {
            updates: 1,
            removes: 1,
            removes_empty: 1,
            reads: 1,
            prefill: 0,
        };
        a.merge(&b);
        assert_eq!(a.completed(), 11 + 6 + 4);
        assert_eq!(a.inserted(), 111);
        assert_eq!(a.removes_empty, 3);
    }
}
