//! The unified backend interface every structure in the workspace
//! implements to be drivable by the engine.

use dlz_core::spec::HistoryArtifact;

use crate::metrics::TelemetrySample;
use crate::op::{Op, OpCounts};
use crate::scenario::Family;

/// Per-worker configuration handed to [`Backend::worker`].
#[derive(Debug, Clone, Copy)]
pub struct WorkerCfg {
    /// Worker index in `0..threads` (`threads` itself for the prefill
    /// worker, so its RNG stream is distinct from every measured one).
    pub id: usize,
    /// Total measured workers.
    pub threads: usize,
    /// Seed for this worker's private generator(s).
    pub seed: u64,
    /// Record stamped history events (queue family; small budgets only).
    pub record_history: bool,
    /// Sample a quality observation every N eligible ops (0 = never).
    pub quality_every: u32,
}

/// A concurrent structure drivable by the workload engine.
///
/// A backend is shared (`&self`) across workers; all per-thread state —
/// RNGs, STM handles, history logs, quality accumulators — lives in the
/// [`Worker`] sessions it hands out.
pub trait Backend: Sync {
    /// Report label, e.g. `multicounter(m=64)`.
    fn name(&self) -> String;

    /// Which scenario family this backend serves.
    fn family(&self) -> Family;

    /// Creates the per-thread session for one worker.
    fn worker<'a>(&'a self, cfg: WorkerCfg) -> Box<dyn Worker + Send + 'a>;

    /// Items currently held (queue backlog / counter total / STM array
    /// sum). Exact when quiescent; called only outside the run.
    fn residual(&self) -> u64;

    /// Conservation check after the run: given the merged op counts,
    /// verify the backend-specific balance law (no lost items, sums
    /// match). `Err` explains the violation.
    fn verify(&self, counts: &OpCounts) -> Result<(), String>;

    /// Backend-specific quality metrics accumulated during the run
    /// (read deviation, dequeue rank, abort rate, ...).
    fn quality(&self) -> QualityReport;

    /// Drains the last run's recorded stamped history as a serializable
    /// [`HistoryArtifact`] with the backend-known metadata (structure
    /// kind, policy label, envelope factor, queue count) already filled
    /// in; the engine adds run metadata (threads, source, sweep cell).
    ///
    /// History-recording backends stash the artifact while
    /// [`quality`](Self::quality) replays the history, so this must be
    /// called *after* `quality()`. Backends that record no history
    /// return `None` (the default).
    fn take_history_artifact(&self) -> Option<HistoryArtifact> {
        None
    }
}

/// One worker's session against a backend.
pub trait Worker {
    /// Executes one abstract operation. Returns `false` only for a
    /// remove that observed an empty structure.
    fn execute(&mut self, op: &Op) -> bool;

    /// Called once after the run: flush per-thread quality state
    /// (history logs, deviation samples) back to the backend.
    fn finish(&mut self) {}

    /// Drains backend-internal telemetry accumulated since the last
    /// drain (hot-path contention counters, the policy's observed
    /// envelope). Called by the engine at interval boundaries when the
    /// scenario enables time-resolved telemetry; never called
    /// otherwise, so counters cost nothing to backends that skip it.
    /// `None` (the default) means the backend records none.
    fn telemetry_sample(&mut self) -> Option<TelemetrySample> {
        None
    }
}

/// Distribution summary of a quality metric's samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct QualitySummary {
    /// Sample count.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl QualitySummary {
    /// Summarizes a sample vector (sorts a copy).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return QualitySummary::default();
        }
        let mut v: Vec<f64> = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let n = v.len();
        let q = |p: f64| v[(((n as f64) * p).ceil() as usize).clamp(1, n) - 1];
        QualitySummary {
            count: n as u64,
            mean: v.iter().sum::<f64>() / n as f64,
            p50: q(0.50),
            p99: q(0.99),
            max: v[n - 1],
        }
    }
}

/// A named quality metric with an optional sample distribution and
/// free-form named scalars (bounds, flags, rates).
#[derive(Debug, Clone, Default)]
pub struct QualityReport {
    /// Metric name: `read_deviation`, `dequeue_rank`, `abort_rate`, ...
    pub metric: String,
    /// Distribution of the metric's samples, when sampled.
    pub summary: Option<QualitySummary>,
    /// Named scalar facts (e.g. `("bound_m_ln_m", 266.0)`,
    /// `("within_bound", 1.0)`, `("linearizable", 1.0)`).
    pub scalars: Vec<(String, f64)>,
}

impl QualityReport {
    /// A report with just a metric name.
    pub fn named(metric: &str) -> Self {
        QualityReport {
            metric: metric.to_string(),
            summary: None,
            scalars: Vec::new(),
        }
    }

    /// Adds a named scalar (chainable).
    pub fn scalar(mut self, name: &str, value: f64) -> Self {
        self.scalars.push((name.to_string(), value));
        self
    }

    /// Sets the sample summary (chainable).
    pub fn with_summary(mut self, s: QualitySummary) -> Self {
        self.summary = Some(s);
        self
    }

    /// Looks up a scalar by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.scalars
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// `true` if every scalar and summary statistic is finite.
    pub fn is_finite(&self) -> bool {
        let scalars_ok = self.scalars.iter().all(|(_, v)| v.is_finite());
        let summary_ok = self.summary.is_none_or(|s| {
            s.mean.is_finite() && s.p50.is_finite() && s.p99.is_finite() && s.max.is_finite()
        });
        scalars_ok && summary_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_quantiles() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = QualitySummary::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = QualitySummary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn report_scalars_and_finiteness() {
        let r = QualityReport::named("x").scalar("a", 1.0).scalar("b", 2.0);
        assert_eq!(r.get("a"), Some(1.0));
        assert_eq!(r.get("missing"), None);
        assert!(r.is_finite());
        let bad = QualityReport::named("y").scalar("nan", f64::NAN);
        assert!(!bad.is_finite());
    }
}
