//! Declarative scenario configuration and the named catalog.

use std::path::PathBuf;
use std::time::Duration;

use dlz_core::{PolicyCfg, SubstrateCfg};

use crate::clients::ArrivalShape;
use crate::dist::{Arrival, Dist};
use crate::faults::FaultPlan;
use crate::op::OpMix;

/// Which structure family a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Relaxed counters (MultiCounter, d-choice, sharded, exact FAA).
    Counter,
    /// Priority queues — the MultiQueue and every `dlz-pq` substrate.
    Queue,
    /// Relaxed FIFO queues — the MultiQueue behind clock-assigned
    /// timestamp priorities (Section 7.1), plus an exact locked
    /// baseline.
    Fifo,
    /// The TL2 transactional array with exact or relaxed clocks.
    Stm,
}

impl Family {
    /// Lowercase label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Family::Counter => "counter",
            Family::Queue => "queue",
            Family::Fifo => "fifo",
            Family::Stm => "stm",
        }
    }
}

/// How much work a run does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Budget {
    /// Each worker performs exactly this many operations
    /// (deterministic; what tests use).
    OpsPerWorker(u64),
    /// Run for a wall-clock duration against a stop flag.
    Timed(Duration),
}

/// A complete declarative workload description.
///
/// Build one with [`Scenario::builder`], or start from a named preset
/// via [`Scenario::named`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (report key).
    pub name: String,
    /// One-line description (shown by `scenarios --list`).
    pub about: String,
    /// Structure family the scenario drives.
    pub family: Family,
    /// Worker thread count.
    pub threads: usize,
    /// Work budget.
    pub budget: Budget,
    /// Operation mix.
    pub mix: OpMix,
    /// Key distribution (counter weight cells / STM slots).
    pub keys: Dist,
    /// Priority distribution (queue inserts).
    pub priorities: Dist,
    /// Weight distribution (counter adds; `Fixed(1)` = plain increments).
    pub weights: Dist,
    /// Arrival process.
    pub arrival: Arrival,
    /// Simulated-client population. `0` (the default) keeps the legacy
    /// thread-per-worker driver; any positive count routes the run
    /// through the timer-wheel client driver
    /// ([`clients`](crate::clients)): the population is sharded across
    /// workers, each client follows its own seeded
    /// [`arrival_shape`](Scenario::arrival_shape) and op-mix stream,
    /// and the report gains a `clients` section with the
    /// queueing/service latency split.
    pub clients: usize,
    /// Per-client arrival process when [`clients`](Scenario::clients)
    /// is positive (ignored otherwise — the legacy
    /// [`arrival`](Scenario::arrival) field governs the 0-client path).
    pub arrival_shape: ArrivalShape,
    /// Items inserted sequentially before the measured run.
    pub prefill: u64,
    /// Base RNG seed; every worker derives its streams from this.
    pub seed: u64,
    /// Record a stamped history and replay it through the
    /// distributional-linearizability checker after the run (queue
    /// family only; memory ∝ op count, so pair with small budgets).
    pub record_history: bool,
    /// Directory to serialize the recorded history into as a
    /// policy-tagged [`HistoryArtifact`](dlz_core::spec::HistoryArtifact)
    /// (`.histjsonl`). Each run writes one artifact keyed by its sweep
    /// cell (or scenario name outside sweeps) and backend label, so a
    /// whole sweep yields a grid-indexed directory offline checkers can
    /// consume. No effect unless the run records a history.
    pub export: Option<PathBuf>,
    /// Sample a quality observation every this many eligible ops
    /// (read deviation / rank proxy). 0 disables sampling.
    pub quality_every: u32,
    /// Choice-policy dimension for queue backends: which
    /// [`ChoicePolicy`](dlz_core::ChoicePolicy) each worker's handle
    /// runs (two-choice, d-choice, static or adaptive stickiness).
    /// Rank degrades within the policy's envelope (O(s·m) for
    /// stickiness); the quality report carries the bound.
    pub choice_policy: PolicyCfg,
    /// Batch dimension for queue backends: operations buffered per
    /// lock acquisition (1 = unbatched). Ignored in history mode,
    /// which stamps individual operations.
    pub batch: usize,
    /// Substrate dimension for queue backends: what each internal
    /// queue runs on — the packed-lock heap (default), the lock-free
    /// pending-stack variant, or the flat-combining variant. All four
    /// choice policies run unchanged on every substrate.
    pub substrate: SubstrateCfg,
    /// Latency-sampling cadence: timestamp every Nth operation
    /// (1 = every op). Counts are always exact; higher values keep the
    /// two clock reads per op off the throughput hot path, which
    /// matters when the structure's own cost is tens of nanoseconds.
    /// Open-loop arrivals always timestamp (the pacing needs the
    /// clock anyway).
    pub latency_every: u32,
    /// Time-resolved telemetry: when set, every worker flushes a delta
    /// snapshot (op counts, latency, contention counters, observed
    /// envelope factor) at each interval boundary, and the report
    /// carries the merged, index-aligned
    /// [`TelemetrySeries`](crate::metrics::TelemetrySeries). `None`
    /// (the default) disables the boundary checks entirely — one
    /// untaken branch per operation.
    pub telemetry_interval: Option<Duration>,
    /// Fault-injection plan (the chaos dimension): seeded,
    /// deterministic per-worker panics, stalls and slow-downs (see
    /// [`FaultPlan`]). When set, the engine runs each worker inside a
    /// panic-tolerant harness, arms the no-progress watchdog, and the
    /// report carries a per-worker `faults` section. `None` (the
    /// default) disables every fault hook — one untaken branch per
    /// operation.
    pub faults: Option<FaultPlan>,
}

impl Scenario {
    /// Starts a builder with laptop-scale defaults.
    pub fn builder(name: &str, family: Family) -> ScenarioBuilder {
        ScenarioBuilder {
            s: Scenario {
                name: name.to_string(),
                about: String::new(),
                family,
                threads: 4,
                budget: Budget::Timed(Duration::from_millis(300)),
                mix: OpMix::new(50, 50, 0),
                keys: Dist::Uniform { n: 1 << 16 },
                priorities: Dist::Monotonic,
                weights: Dist::Fixed(1),
                arrival: Arrival::Closed,
                clients: 0,
                arrival_shape: ArrivalShape::SelfPaced,
                prefill: 0,
                seed: 0xd15f1e1d,
                record_history: false,
                export: None,
                quality_every: 64,
                choice_policy: PolicyCfg::TwoChoice,
                batch: 1,
                substrate: SubstrateCfg::Locked,
                latency_every: 1,
                telemetry_interval: None,
                faults: None,
            },
        }
    }

    /// Looks up a named scenario from [`Scenario::catalog`].
    pub fn named(name: &str) -> Option<Scenario> {
        Scenario::catalog().into_iter().find(|s| s.name == name)
    }

    /// The built-in scenario catalog.
    ///
    /// Every preset runs in a few hundred milliseconds by default and
    /// scales with `--threads` / `--duration-ms` overrides in the
    /// `scenarios` binary.
    pub fn catalog() -> Vec<Scenario> {
        vec![
            Scenario::builder("counter-update-heavy", Family::Counter)
                .about("90% increments / 10% sampled reads, closed loop — Figure 1(a)'s regime")
                .mix(OpMix::new(90, 0, 10))
                .build(),
            Scenario::builder("counter-read-heavy", Family::Counter)
                .about("20% increments / 80% sampled reads — read-deviation stress")
                .mix(OpMix::new(20, 0, 80))
                .build(),
            Scenario::builder("counter-weighted-zipf", Family::Counter)
                .about("weighted adds with Zipf-skewed weights — relaxed metric-counter regime")
                .mix(OpMix::new(80, 0, 20))
                .weights(Dist::Zipf { n: 64, theta: 0.9 })
                .build(),
            Scenario::builder("counter-history-audit", Family::Counter)
                .about("stamped counter history replayed through the relaxed-counter checker — Lemma 6.8's deviation as measured step costs")
                .mix(OpMix::new(70, 0, 30))
                .budget(Budget::OpsPerWorker(4_000))
                .record_history(true)
                .build(),
            Scenario::builder("queue-balanced", Family::Queue)
                .about("50/50 enqueue/dequeue, monotone priorities, 10k prefill — steady state")
                .mix(OpMix::new(50, 50, 0))
                .prefill(10_000)
                .build(),
            Scenario::builder("queue-producer-surge", Family::Queue)
                .about("2:1 enqueue:dequeue with uniform priorities — growing backlog")
                .mix(OpMix::new(60, 30, 10))
                .priorities(Dist::Uniform { n: 1 << 20 })
                .prefill(1_000)
                .build(),
            Scenario::builder("queue-bursty", Family::Queue)
                .about("stampede arrivals: 256-op bursts with 2ms pauses — adversarial schedule")
                .mix(OpMix::new(50, 50, 0))
                .arrival(Arrival::Bursty {
                    burst: 256,
                    pause: Duration::from_millis(2),
                })
                .prefill(5_000)
                .build(),
            Scenario::builder("queue-balanced-audit", Family::Queue)
                .about("queue-balanced's 50/50 steady state with stamped history + checker replay — the history-export flagship")
                .mix(OpMix::new(50, 50, 0))
                .budget(Budget::OpsPerWorker(4_000))
                .prefill(1_000)
                .record_history(true)
                .build(),
            Scenario::builder("queue-rank-audit", Family::Queue)
                .about("small fixed-op run with stamped history replayed through the checker")
                .mix(OpMix::new(60, 40, 0))
                .budget(Budget::OpsPerWorker(6_000))
                .prefill(2_000)
                .record_history(true)
                .build(),
            Scenario::builder("mq-hotpath-dequeue-heavy", Family::Queue)
                .about("30/70 enqueue:dequeue at 8 threads over a deep backlog — the contended hot path the packed/padded/sticky work targets")
                .threads(8)
                .mix(OpMix::new(30, 70, 0))
                .budget(Budget::OpsPerWorker(40_000))
                .priorities(Dist::Uniform { n: 1 << 20 })
                .prefill(400_000)
                .choice_policy(PolicyCfg::Sticky { ops: 16 })
                .batch(16)
                .latency_every(8)
                .build(),
            Scenario::builder("mq-hotpath-balanced", Family::Queue)
                .about("50/50 mix at 8 threads, steady backlog — hot path without drain pressure")
                .threads(8)
                .mix(OpMix::new(50, 50, 0))
                .budget(Budget::OpsPerWorker(40_000))
                .prefill(20_000)
                .choice_policy(PolicyCfg::Sticky { ops: 16 })
                .batch(16)
                .latency_every(8)
                .build(),
            Scenario::builder("mq-hotpath-insert-heavy", Family::Queue)
                .about("70/30 enqueue:dequeue at 8 threads — the insert-contended cell where the lock-free pending stack's single-CAS push pays off")
                .threads(8)
                .mix(OpMix::new(70, 30, 0))
                .budget(Budget::OpsPerWorker(40_000))
                .priorities(Dist::Uniform { n: 1 << 20 })
                .prefill(20_000)
                .latency_every(8)
                .build(),
            Scenario::builder("mq-substrate-lockfree-audit", Family::Queue)
                .about("lock-free substrate stamped history through the checker — claim-and-drain dequeues must replay within the policy envelope")
                .threads(4)
                .mix(OpMix::new(50, 50, 0))
                .budget(Budget::OpsPerWorker(6_000))
                .prefill(2_000)
                .record_history(true)
                .substrate(SubstrateCfg::LockFree)
                .build(),
            Scenario::builder("mq-substrate-combining-audit", Family::Queue)
                .about("flat-combining substrate stamped history through the checker — combined dequeues must replay within the policy envelope")
                .threads(4)
                .mix(OpMix::new(50, 50, 0))
                .budget(Budget::OpsPerWorker(6_000))
                .prefill(2_000)
                .record_history(true)
                .substrate(SubstrateCfg::Combining)
                .build(),
            Scenario::builder("mq-hotpath-rank-audit", Family::Queue)
                .about("sticky-mode stamped history through the checker — verifies the O(s·m) rank envelope")
                .threads(4)
                .mix(OpMix::new(50, 50, 0))
                .budget(Budget::OpsPerWorker(6_000))
                .prefill(2_000)
                .record_history(true)
                .choice_policy(PolicyCfg::Sticky { ops: 16 })
                .build(),
            Scenario::builder("mq-hotpath-adaptive-audit", Family::Queue)
                .about("adaptive-stickiness stamped history through the checker — observed rank must sit inside the observed-s envelope")
                .threads(4)
                .mix(OpMix::new(50, 50, 0))
                .budget(Budget::OpsPerWorker(6_000))
                .prefill(2_000)
                .record_history(true)
                .choice_policy(PolicyCfg::AdaptiveSticky { s_max: 16 })
                .build(),
            Scenario::builder("fifo-history-audit", Family::Fifo)
                .about("relaxed FIFO vs exact locked baseline, stamped history through the FIFO checker — dequeue positions are Theorem 7.1's rank error")
                .mix(OpMix::new(50, 50, 0))
                .budget(Budget::OpsPerWorker(6_000))
                .prefill(2_000)
                .record_history(true)
                .build(),
            Scenario::builder("stm-uniform-mix", Family::Stm)
                .about("80% 2-slot add txns / 20% read-only txns over 64k slots — Figure 1(c)")
                .mix(OpMix::new(80, 0, 20))
                .keys(Dist::Uniform { n: 1 << 16 })
                .build(),
            Scenario::builder("stm-hot-keys", Family::Stm)
                .about("Zipf-skewed slots (theta 0.9) — contention cliff for both clocks")
                .mix(OpMix::new(80, 0, 20))
                .keys(Dist::Zipf {
                    n: 1 << 14,
                    theta: 0.9,
                })
                .build(),
            Scenario::builder("stm-open-loop", Family::Stm)
                .about("Poisson arrivals at 50k ops/s/worker — latency under offered load")
                .mix(OpMix::new(70, 0, 30))
                .keys(Dist::Uniform { n: 1 << 16 })
                .arrival(Arrival::Open {
                    rate_per_worker: 50_000.0,
                })
                .build(),
            Scenario::builder("clients-poisson-100k", Family::Queue)
                .about("100k Poisson clients over 4 workers at a deliberately overloaded aggregate rate — queueing delay visible in the clients section")
                .threads(4)
                .mix(OpMix::new(50, 50, 0))
                .budget(Budget::OpsPerWorker(25_000))
                .clients(100_000)
                .arrival_shape(ArrivalShape::Poisson { rate: 50.0 })
                .prefill(10_000)
                .build(),
            Scenario::builder("clients-diurnal", Family::Queue)
                .about("50k clients on a sinusoidal diurnal curve (5 cycles/s) — load swings 0.2×–1.8× of the base rate")
                .threads(4)
                .mix(OpMix::new(50, 50, 0))
                .budget(Budget::OpsPerWorker(10_000))
                .clients(50_000)
                .arrival_shape(ArrivalShape::Diurnal {
                    rate: 20.0,
                    period_ms: 200,
                })
                .prefill(5_000)
                .build(),
            Scenario::builder("clients-flash-crowd", Family::Queue)
                .about("50k background-rate clients with a 20× flash crowd in the 50–100ms window — backlog spike and recovery")
                .threads(4)
                .mix(OpMix::new(50, 50, 0))
                .budget(Budget::OpsPerWorker(10_000))
                .clients(50_000)
                .arrival_shape(ArrivalShape::Flash {
                    rate: 5.0,
                    factor: 20.0,
                    at_ms: 50,
                    len_ms: 50,
                })
                .prefill(5_000)
                .build(),
            Scenario::builder("chaos-stall-audit", Family::Queue)
                .about("history-audited run with an injected panic, a bounded stall and a slow straggler — the surviving workers' history must still replay linearizable")
                .threads(4)
                .mix(OpMix::new(50, 50, 0))
                .budget(Budget::OpsPerWorker(1_200))
                .prefill(2_000)
                .record_history(true)
                .telemetry_interval(Duration::from_millis(25))
                .faults_spec("panic:1@400;stall:2@300:30;slow:3:5..20")
                .build(),
            Scenario::builder("chaos-slow-tail", Family::Queue)
                .about("two seeded slow workers stretch the latency tail; every worker still completes its budget")
                .threads(4)
                .mix(OpMix::new(50, 50, 0))
                .budget(Budget::OpsPerWorker(2_000))
                .prefill(2_000)
                .telemetry_interval(Duration::from_millis(25))
                .faults_spec("slow:0:10..200;slow:1:10..200")
                .build(),
            Scenario::builder("chaos-stall-forever", Family::Queue)
                .about("one worker wedges permanently; the watchdog diagnoses it and aborts the run instead of hanging")
                .threads(2)
                .mix(OpMix::new(50, 50, 0))
                .budget(Budget::OpsPerWorker(1_000_000))
                .prefill(1_000)
                .telemetry_interval(Duration::from_millis(25))
                .faults_spec("stall:0@100:forever")
                .build(),
        ]
    }
}

/// Builder for [`Scenario`] (all setters are chainable).
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    s: Scenario,
}

impl ScenarioBuilder {
    /// One-line description.
    pub fn about(mut self, text: &str) -> Self {
        self.s.about = text.to_string();
        self
    }

    /// Worker count.
    pub fn threads(mut self, n: usize) -> Self {
        self.s.threads = n;
        self
    }

    /// Work budget.
    pub fn budget(mut self, b: Budget) -> Self {
        self.s.budget = b;
        self
    }

    /// Operation mix.
    pub fn mix(mut self, mix: OpMix) -> Self {
        self.s.mix = mix;
        self
    }

    /// Key distribution.
    pub fn keys(mut self, d: Dist) -> Self {
        self.s.keys = d;
        self
    }

    /// Priority distribution.
    pub fn priorities(mut self, d: Dist) -> Self {
        self.s.priorities = d;
        self
    }

    /// Weight distribution.
    pub fn weights(mut self, d: Dist) -> Self {
        self.s.weights = d;
        self
    }

    /// Arrival process.
    pub fn arrival(mut self, a: Arrival) -> Self {
        self.s.arrival = a;
        self
    }

    /// Simulated-client population (0 = legacy thread-per-worker
    /// driver; see [`Scenario::clients`]).
    pub fn clients(mut self, n: usize) -> Self {
        self.s.clients = n;
        self
    }

    /// Per-client arrival shape (used when `clients > 0`).
    pub fn arrival_shape(mut self, shape: ArrivalShape) -> Self {
        self.s.arrival_shape = shape;
        self
    }

    /// Sequential prefill size.
    pub fn prefill(mut self, n: u64) -> Self {
        self.s.prefill = n;
        self
    }

    /// Base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.s.seed = seed;
        self
    }

    /// Enable stamped-history recording (queue family).
    pub fn record_history(mut self, on: bool) -> Self {
        self.s.record_history = on;
        self
    }

    /// Export directory for serialized history artifacts (see
    /// [`Scenario::export`]).
    pub fn export(mut self, dir: impl Into<PathBuf>) -> Self {
        self.s.export = Some(dir.into());
        self
    }

    /// Choice-policy dimension (queue backends; default two-choice).
    pub fn choice_policy(mut self, policy: PolicyCfg) -> Self {
        self.s.choice_policy = policy;
        self
    }

    /// Batch dimension (queue backends; 1 disables).
    pub fn batch(mut self, k: usize) -> Self {
        self.s.batch = k.max(1);
        self
    }

    /// Substrate dimension (queue backends; default packed lock).
    pub fn substrate(mut self, substrate: SubstrateCfg) -> Self {
        self.s.substrate = substrate;
        self
    }

    /// Latency-sampling cadence (1 = timestamp every op).
    pub fn latency_every(mut self, n: u32) -> Self {
        self.s.latency_every = n.max(1);
        self
    }

    /// Quality sampling cadence (0 disables).
    pub fn quality_every(mut self, every: u32) -> Self {
        self.s.quality_every = every;
        self
    }

    /// Enables time-resolved telemetry with the given snapshot interval
    /// (clamped to ≥ 1ms; see [`Scenario::telemetry_interval`]).
    pub fn telemetry_interval(mut self, interval: Duration) -> Self {
        self.s.telemetry_interval = Some(interval.max(Duration::from_millis(1)));
        self
    }

    /// Arms a fault-injection plan (see [`Scenario::faults`]).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.s.faults = Some(plan);
        self
    }

    /// Parses and arms a fault-plan spec string.
    ///
    /// # Panics
    /// If the spec does not parse — presets and tests hand-write these.
    pub fn faults_spec(self, spec: &str) -> Self {
        self.faults(FaultPlan::parse(spec).expect("fault plan spec"))
    }

    /// Finalizes the scenario.
    ///
    /// # Panics
    /// If `threads == 0`, or if the fault plan names a worker the
    /// scenario does not have.
    pub fn build(self) -> Scenario {
        assert!(self.s.threads > 0, "scenario needs at least one worker");
        if let Some(plan) = &self.s.faults {
            assert!(
                plan.max_worker() < self.s.threads,
                "fault plan names worker {} but the scenario has only {} threads",
                plan.max_worker(),
                self.s.threads
            );
        }
        self.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_at_least_six_distinct_named_scenarios() {
        let cat = Scenario::catalog();
        assert!(cat.len() >= 6, "catalog too small: {}", cat.len());
        let mut names: Vec<&str> = cat.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len(), "duplicate scenario names");
        for s in &cat {
            assert!(!s.about.is_empty(), "{} lacks a description", s.name);
        }
        // Every family is represented.
        for f in [Family::Counter, Family::Queue, Family::Stm] {
            assert!(cat.iter().any(|s| s.family == f), "{f:?} missing");
        }
    }

    #[test]
    fn named_lookup_roundtrip() {
        let s = Scenario::named("queue-balanced").expect("exists");
        assert_eq!(s.family, Family::Queue);
        assert_eq!(s.prefill, 10_000);
        assert!(Scenario::named("no-such-scenario").is_none());
    }

    #[test]
    fn hotpath_scenarios_carry_policy_and_batch_dimensions() {
        let s = Scenario::named("mq-hotpath-dequeue-heavy").expect("exists");
        assert_eq!(s.family, Family::Queue);
        assert!(s.threads >= 8, "contended point needs ≥ 8 threads");
        assert_eq!(s.choice_policy, PolicyCfg::Sticky { ops: 16 });
        assert!(s.batch > 1);
        let audit = Scenario::named("mq-hotpath-rank-audit").expect("exists");
        assert!(audit.record_history && !audit.choice_policy.is_default());
        let adaptive = Scenario::named("mq-hotpath-adaptive-audit").expect("exists");
        assert!(adaptive.record_history);
        assert_eq!(
            adaptive.choice_policy,
            PolicyCfg::AdaptiveSticky { s_max: 16 }
        );
        // Pre-existing scenarios keep the paper's fresh-draw behaviour.
        let plain = Scenario::named("queue-balanced").expect("exists");
        assert_eq!(
            (plain.choice_policy, plain.batch),
            (PolicyCfg::TwoChoice, 1)
        );
    }

    #[test]
    fn balanced_audit_records_and_export_is_a_dimension() {
        let s = Scenario::named("queue-balanced-audit").expect("exists");
        assert_eq!(s.family, Family::Queue);
        assert!(s.record_history);
        assert!(matches!(s.budget, Budget::OpsPerWorker(_)));
        assert!(s.export.is_none(), "presets never hard-code an export path");
        let e = Scenario::builder("x", Family::Queue)
            .export("hist/dir")
            .build();
        assert_eq!(e.export.as_deref(), Some(std::path::Path::new("hist/dir")));
    }

    #[test]
    fn counter_history_audit_records() {
        let s = Scenario::named("counter-history-audit").expect("exists");
        assert_eq!(s.family, Family::Counter);
        assert!(s.record_history);
        assert!(matches!(s.budget, Budget::OpsPerWorker(_)));
    }

    #[test]
    fn client_presets_shard_a_big_population_over_few_workers() {
        let cat = Scenario::catalog();
        let clients: Vec<&Scenario> = cat
            .iter()
            .filter(|s| s.name.starts_with("clients-"))
            .collect();
        assert!(clients.len() >= 3, "client presets missing");
        for s in &clients {
            assert!(s.clients >= 50_000, "{}: population too small", s.name);
            assert!(
                s.threads <= 8,
                "{}: client presets stay laptop-scale",
                s.name
            );
            assert!(
                matches!(s.budget, Budget::OpsPerWorker(_)),
                "{}: fixed-op budgets keep CI deterministic",
                s.name
            );
            assert_ne!(s.arrival_shape, ArrivalShape::SelfPaced, "{}", s.name);
        }
        let big = Scenario::named("clients-poisson-100k").expect("exists");
        assert!(big.clients >= 100_000 && big.threads == 4);
        // Legacy presets stay on the thread-per-worker driver.
        let plain = Scenario::named("queue-balanced").expect("exists");
        assert_eq!(plain.clients, 0);
        assert_eq!(plain.arrival_shape, ArrivalShape::SelfPaced);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = Scenario::builder("x", Family::Counter).threads(0).build();
    }

    #[test]
    fn chaos_presets_arm_faults_with_matching_thread_counts() {
        let cat = Scenario::catalog();
        let chaos: Vec<&Scenario> = cat
            .iter()
            .filter(|s| s.name.starts_with("chaos-"))
            .collect();
        assert!(chaos.len() >= 3, "chaos presets missing");
        for s in &chaos {
            let plan = s.faults.as_ref().expect("chaos preset without faults");
            assert!(plan.max_worker() < s.threads, "{}", s.name);
            assert!(
                s.telemetry_interval.is_some(),
                "{}: the watchdog feeds on telemetry intervals",
                s.name
            );
            assert!(matches!(s.budget, Budget::OpsPerWorker(_)), "{}", s.name);
        }
        let audit = Scenario::named("chaos-stall-audit").expect("exists");
        assert!(audit.record_history && audit.faults.expect("plan").is_lossy());
        let tail = Scenario::named("chaos-slow-tail").expect("exists");
        assert!(!tail.faults.expect("plan").is_lossy());
        // Non-chaos presets stay fault-free.
        assert!(Scenario::named("queue-balanced")
            .expect("exists")
            .faults
            .is_none());
    }

    #[test]
    #[should_panic(expected = "names worker 7")]
    fn fault_plan_beyond_thread_count_rejected() {
        let _ = Scenario::builder("x", Family::Queue)
            .threads(4)
            .faults_spec("panic:7@10")
            .build();
    }
}
