//! The result of one engine run, and its machine-readable form.

use std::time::Duration;

use crate::backend::QualityReport;
use crate::clients::ClientReport;
use crate::dist::Arrival;
use crate::json::JsonObject;
use crate::metrics::{LatencySummary, TelemetrySeries};
use crate::op::OpCounts;
use crate::scenario::{Budget, Scenario};

/// How one worker thread ended its run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerOutcome {
    /// The worker ran its full budget (or the stop flag) to the end.
    Completed,
    /// The worker panicked; the payload message is attached. Its
    /// metrics and telemetry up to the panic were salvaged.
    Panicked(String),
    /// The watchdog diagnosed the worker as making no progress and
    /// aborted the run; the diagnosis is attached.
    Stalled(String),
}

impl WorkerOutcome {
    /// Lowercase label used in reports (`completed` / `panicked` /
    /// `stalled`).
    pub fn label(&self) -> &'static str {
        match self {
            WorkerOutcome::Completed => "completed",
            WorkerOutcome::Panicked(_) => "panicked",
            WorkerOutcome::Stalled(_) => "stalled",
        }
    }

    /// The attached panic message or watchdog diagnosis, if any.
    pub fn detail(&self) -> Option<&str> {
        match self {
            WorkerOutcome::Completed => None,
            WorkerOutcome::Panicked(d) | WorkerOutcome::Stalled(d) => Some(d),
        }
    }
}

/// The fault section of a report: what the chaos layer injected and how
/// each worker fared. Present whenever the scenario armed a
/// [`FaultPlan`](crate::faults::FaultPlan).
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// The fault-plan spec the run armed.
    pub plan: String,
    /// `true` if the watchdog aborted the run.
    pub aborted: bool,
    /// Per-worker outcomes, indexed by worker id.
    pub workers: Vec<WorkerOutcome>,
}

impl FaultReport {
    /// `true` if every worker completed its budget.
    pub fn all_completed(&self) -> bool {
        self.workers
            .iter()
            .all(|w| matches!(w, WorkerOutcome::Completed))
    }
}

/// Everything one scenario run against one backend produced.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario family label.
    pub family: &'static str,
    /// Backend label.
    pub backend: String,
    /// Worker count.
    pub threads: usize,
    /// Base seed.
    pub seed: u64,
    /// Prefill size.
    pub prefill: u64,
    /// Measured wall-clock time.
    pub elapsed: Duration,
    /// Merged operation counts.
    pub counts: OpCounts,
    /// Merged latency summary (completed ops, nanoseconds).
    pub latency: LatencySummary,
    /// Backend quality metrics.
    pub quality: QualityReport,
    /// Items left in the structure after the run.
    pub residual: u64,
    /// `None` when the backend's conservation law held, else the
    /// violation message.
    pub verify_error: Option<String>,
    /// Budget the run used (echoed into the JSON).
    pub budget: Budget,
    /// Arrival process the run used.
    pub arrival: Arrival,
    /// Choice-policy label the scenario carried (queue backends act on
    /// it; other families echo the default).
    pub policy: String,
    /// Sweep-cell name when the run came from
    /// [`engine::run_sweep`](crate::engine::run_sweep)
    /// (e.g. `queue-balanced/t=8/policy=sticky(s=16)`); `None` for a
    /// plain [`engine::run`](crate::engine::run).
    pub cell: Option<String>,
    /// Swept grid coordinates as `(axis, value-label)` pairs; empty
    /// outside sweeps and for 1×1 grids with no explicit axes.
    pub grid: Vec<(String, String)>,
    /// Ratio of the checker-exact mean dequeue rank to the mean
    /// `dequeue_rank_proxy` sample, measured on history scenarios —
    /// the correction factor that makes the cheap proxy interpretable
    /// on non-history runs. `None` when the run recorded no history or
    /// the proxy drew no (or only zero) samples.
    pub rank_proxy_calibration: Option<f64>,
    /// Simulated-client accounting when the scenario set
    /// [`clients`](crate::Scenario::clients) > 0: active clients,
    /// arrival backlog, and the queueing/service latency split (see
    /// [`ClientReport`]). `None` on legacy thread-per-worker runs.
    pub clients: Option<ClientReport>,
    /// Time-resolved telemetry: the merged, index-aligned per-interval
    /// series when the scenario set
    /// [`telemetry_interval`](crate::Scenario::telemetry_interval);
    /// `None` otherwise. Per-interval op counts sum exactly to the
    /// run's (pre-prefill) totals.
    pub telemetry: Option<TelemetrySeries>,
    /// Fault-injection outcome when the scenario armed a fault plan;
    /// `None` for healthy runs.
    pub faults: Option<FaultReport>,
    /// Artifact-export failures (history / Prometheus writes). The run
    /// itself is unaffected — the engine degrades export errors to
    /// warnings — but they are recorded here so callers can fail loudly.
    pub export_errors: Vec<String>,
}

impl RunReport {
    /// Completed operations during the measured window.
    pub fn total_ops(&self) -> u64 {
        self.counts.completed()
    }

    /// Million completed operations per second.
    pub fn mops(&self) -> f64 {
        self.total_ops() as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// `true` if the backend's conservation law held.
    pub fn verified(&self) -> bool {
        self.verify_error.is_none()
    }

    /// `true` if the run is clean end to end: conservation held, every
    /// worker completed, and every requested artifact was exported.
    pub fn ok(&self) -> bool {
        self.verified()
            && self.export_errors.is_empty()
            && self.faults.as_ref().is_none_or(FaultReport::all_completed)
    }

    /// Renders the report as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("scenario", &self.scenario)
            .str("family", self.family)
            .str("backend", &self.backend)
            .u64("threads", self.threads as u64)
            .str("policy", &self.policy)
            .u64("seed", self.seed)
            .u64("prefill", self.prefill);
        if let Some(cell) = &self.cell {
            o.str("cell", cell);
            o.obj("grid", |g| {
                for (k, v) in &self.grid {
                    g.str(k, v);
                }
            });
        }
        match self.budget {
            Budget::OpsPerWorker(n) => {
                o.obj("budget", |b| {
                    b.str("type", "ops").u64("ops_per_worker", n);
                });
            }
            Budget::Timed(d) => {
                o.obj("budget", |b| {
                    b.str("type", "timed")
                        .f64("duration_ms", d.as_secs_f64() * 1e3);
                });
            }
        }
        match self.arrival {
            Arrival::Closed => {
                o.str("arrival", "closed");
            }
            Arrival::Open { rate_per_worker } => {
                o.obj("arrival", |a| {
                    a.str("type", "open")
                        .f64("rate_per_worker", rate_per_worker);
                });
            }
            Arrival::Bursty { burst, pause } => {
                o.obj("arrival", |a| {
                    a.str("type", "bursty")
                        .u64("burst", burst as u64)
                        .f64("pause_ms", pause.as_secs_f64() * 1e3);
                });
            }
        }
        o.f64("elapsed_s", self.elapsed.as_secs_f64());
        o.obj("throughput", |t| {
            t.u64("total_ops", self.total_ops())
                .f64("mops", self.mops())
                .u64("updates", self.counts.updates)
                .u64("removes", self.counts.removes)
                .u64("removes_empty", self.counts.removes_empty)
                .u64("reads", self.counts.reads);
        });
        o.obj("latency_ns", |l| {
            l.f64("mean", self.latency.mean_ns)
                .u64("p50", self.latency.p50_ns)
                .u64("p99", self.latency.p99_ns)
                .u64("p999", self.latency.p999_ns)
                .u64("max", self.latency.max_ns);
        });
        let q = &self.quality;
        o.obj("quality", |qo| {
            qo.str("metric", &q.metric);
            if let Some(s) = q.summary {
                qo.u64("count", s.count)
                    .f64("mean", s.mean)
                    .f64("p50", s.p50)
                    .f64("p99", s.p99)
                    .f64("max", s.max);
            }
            for (name, value) in &q.scalars {
                qo.f64(name, *value);
            }
        });
        if let Some(c) = self.rank_proxy_calibration {
            o.f64("rank_proxy_calibration", c);
        }
        if let Some(c) = &self.clients {
            o.obj("clients", |co| {
                co.u64("count", c.clients)
                    .str("shape", &c.shape)
                    .u64("active", c.active)
                    .u64("arrivals", c.arrivals)
                    .u64("backlog_max", c.backlog_max)
                    .str("arrival_digest", &format!("{:016x}", c.arrival_digest));
                for (name, l) in [
                    ("queueing_ns", &c.queueing_ns),
                    ("service_ns", &c.service_ns),
                ] {
                    co.obj(name, |lo| {
                        lo.f64("mean", l.mean_ns)
                            .u64("p50", l.p50_ns)
                            .u64("p99", l.p99_ns)
                            .u64("p999", l.p999_ns)
                            .u64("max", l.max_ns);
                    });
                }
            });
        }
        if let Some(t) = &self.telemetry {
            let rows: Vec<String> = t
                .intervals
                .iter()
                .map(|s| {
                    let lat = LatencySummary::from(&s.latency);
                    let mut io = JsonObject::new();
                    io.u64("index", s.index)
                        .u64("end_ms", s.end_ms)
                        .u64("updates", s.counts.updates)
                        .u64("removes", s.counts.removes)
                        .u64("removes_empty", s.counts.removes_empty)
                        .u64("reads", s.counts.reads)
                        .f64("latency_mean_ns", lat.mean_ns)
                        .u64("latency_p99_ns", lat.p99_ns)
                        .f64("envelope_factor", s.envelope_factor);
                    io.obj("contention", |c| {
                        for (name, value) in s.contention.fields() {
                            c.u64(name, value);
                        }
                    });
                    io.finish()
                })
                .collect();
            o.obj("telemetry", |to| {
                to.u64("interval_ms", t.interval_ms)
                    .u64("intervals", t.intervals.len() as u64)
                    .raw("series", &crate::json::array(&rows));
            });
        }
        if let Some(f) = &self.faults {
            let rows: Vec<String> = f
                .workers
                .iter()
                .enumerate()
                .map(|(id, w)| {
                    let mut wo = JsonObject::new();
                    wo.u64("id", id as u64).str("outcome", w.label());
                    if let Some(d) = w.detail() {
                        wo.str("detail", d);
                    }
                    wo.finish()
                })
                .collect();
            o.obj("faults", |fo| {
                fo.str("plan", &f.plan)
                    .bool("aborted", f.aborted)
                    .raw("workers", &crate::json::array(&rows));
            });
        }
        if !self.export_errors.is_empty() {
            let rows: Vec<String> = self
                .export_errors
                .iter()
                .map(|e| {
                    let mut s = String::new();
                    crate::json::escape_into(&mut s, e);
                    s
                })
                .collect();
            o.raw("export_errors", &crate::json::array(&rows));
        }
        o.u64("residual", self.residual);
        o.bool("verified", self.verified());
        match &self.verify_error {
            Some(e) => o.str("verify_error", e),
            None => o.null("verify_error"),
        };
        o.finish()
    }
}

/// Builds the static part of a report from a scenario (the engine fills
/// in the measured fields).
pub(crate) fn skeleton(scenario: &Scenario, backend_name: String) -> RunReport {
    RunReport {
        scenario: scenario.name.clone(),
        family: scenario.family.label(),
        backend: backend_name,
        threads: scenario.threads,
        seed: scenario.seed,
        prefill: scenario.prefill,
        elapsed: Duration::ZERO,
        counts: OpCounts::default(),
        latency: LatencySummary::default(),
        quality: QualityReport::default(),
        residual: 0,
        verify_error: None,
        budget: scenario.budget,
        arrival: scenario.arrival,
        policy: scenario.choice_policy.label(),
        cell: None,
        grid: Vec::new(),
        rank_proxy_calibration: None,
        clients: None,
        telemetry: None,
        faults: None,
        export_errors: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Family;

    #[test]
    fn json_contains_required_fields() {
        let s = Scenario::builder("t", Family::Counter).build();
        let mut r = skeleton(&s, "backend-x".into());
        r.elapsed = Duration::from_millis(100);
        r.counts.updates = 1000;
        r.latency.p50_ns = 120;
        r.latency.p99_ns = 900;
        r.quality = QualityReport::named("read_deviation").scalar("bound", 4.0);
        let j = r.to_json();
        for needle in [
            "\"scenario\":\"t\"",
            "\"backend\":\"backend-x\"",
            "\"mops\":",
            "\"p50\":120",
            "\"p99\":900",
            "\"metric\":\"read_deviation\"",
            "\"bound\":4",
            "\"verified\":true",
            "\"policy\":\"two-choice\"",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
        // Not a sweep run: no cell/grid keys.
        assert!(!j.contains("\"cell\":"));
        assert!(!j.contains("\"grid\":"));
        // Not a client-driven run: no clients section.
        assert!(!j.contains("\"clients\":"));
    }

    #[test]
    fn clients_section_renders_with_latency_split() {
        let s = Scenario::builder("t", Family::Queue).build();
        let mut r = skeleton(&s, "b".into());
        let mut queueing = crate::metrics::LogHistogram::new();
        let mut service = crate::metrics::LogHistogram::new();
        queueing.record(5_000);
        service.record(150);
        r.clients = Some(ClientReport {
            clients: 100_000,
            shape: "poisson(50/s)".into(),
            active: 12_345,
            arrivals: 40_000,
            backlog_max: 777,
            queueing_ns: crate::metrics::LatencySummary::from(&queueing),
            service_ns: crate::metrics::LatencySummary::from(&service),
            arrival_digest: 0xdead_beef_cafe_f00d,
        });
        let j = r.to_json();
        for needle in [
            "\"clients\":{\"count\":100000",
            "\"shape\":\"poisson(50/s)\"",
            "\"active\":12345",
            "\"arrivals\":40000",
            "\"backlog_max\":777",
            "\"arrival_digest\":\"deadbeefcafef00d\"",
            "\"queueing_ns\":{",
            "\"service_ns\":{",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }

    #[test]
    fn sweep_cell_and_grid_render() {
        let s = Scenario::builder("t", Family::Queue).build();
        let mut r = skeleton(&s, "b".into());
        r.cell = Some("t/t=8/policy=sticky(s=16)".into());
        r.grid = vec![
            ("t".into(), "8".into()),
            ("policy".into(), "sticky(s=16)".into()),
        ];
        let j = r.to_json();
        assert!(j.contains("\"cell\":\"t/t=8/policy=sticky(s=16)\""), "{j}");
        assert!(
            j.contains("\"grid\":{\"t\":\"8\",\"policy\":\"sticky(s=16)\"}"),
            "{j}"
        );
    }

    #[test]
    fn fault_section_and_export_errors_render() {
        let s = Scenario::builder("t", Family::Queue).build();
        let mut r = skeleton(&s, "b".into());
        assert!(r.ok(), "skeleton is clean");
        r.faults = Some(FaultReport {
            plan: "panic:1@400".into(),
            aborted: false,
            workers: vec![
                WorkerOutcome::Completed,
                WorkerOutcome::Panicked("injected fault: panic before op 400".into()),
            ],
        });
        r.export_errors.push("write hist: disk full".into());
        assert!(!r.ok());
        let j = r.to_json();
        for needle in [
            "\"faults\":{\"plan\":\"panic:1@400\",\"aborted\":false",
            "\"outcome\":\"completed\"",
            "\"outcome\":\"panicked\"",
            "\"detail\":\"injected fault: panic before op 400\"",
            "\"export_errors\":[\"write hist: disk full\"]",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
        // A fault section with only completed workers is still ok.
        r.export_errors.clear();
        r.faults.as_mut().expect("faults").workers[1] = WorkerOutcome::Completed;
        assert!(r.ok());
        // A stalled worker (watchdog abort) is not.
        r.faults.as_mut().expect("faults").workers[0] =
            WorkerOutcome::Stalled("no progress for 2 intervals".into());
        assert!(!r.ok());
    }

    #[test]
    fn verify_error_round_trips() {
        let s = Scenario::builder("t", Family::Queue).build();
        let mut r = skeleton(&s, "b".into());
        r.verify_error = Some("lost 3 items".into());
        assert!(!r.verified());
        assert!(r.to_json().contains("\"verify_error\":\"lost 3 items\""));
    }
}
