//! # dlz-workload — scenario-driven traffic generation for every
//! backend in the workspace
//!
//! The paper's guarantees are *distributional*: rank error and read
//! deviation are random variables whose tails depend on the workload —
//! arrival pattern, op mix, contention, skew. One synthetic loop cannot
//! exercise that; this crate makes workloads first-class:
//!
//! * [`Scenario`] — a declarative workload: thread count, op budget or
//!   duration, [`OpMix`], key/priority/weight [`Dist`]ributions
//!   (uniform, Zipf, monotone), open/closed/bursty [`Arrival`]s,
//!   prefill, seed. A named [`Scenario::catalog`] ships ≥ 6 presets.
//! * [`Backend`] — the single interface every structure implements:
//!   relaxed counters, the MultiQueue over any substrate, every
//!   `dlz-pq` linearizable queue, and the TL2 STM
//!   (see [`backends`]).
//! * [`engine::run`] — the concurrent driver: barrier start, sharded
//!   metrics, deterministic fixed-op or wall-clock budgets.
//! * [`SweepSpec`] / [`engine::run_sweep`] — declarative sweep grids:
//!   a base scenario × axes (threads, choice policy, mix, skew, batch,
//!   arrival, seed) expanded into named cells
//!   (`queue-balanced/t=8/policy=sticky(s=16)`), executed cell by cell,
//!   one grid-tagged [`RunReport`] per (cell × backend).
//! * [`metrics`] — log-bucketed latency histogram (p50/p99/p999 at ~3%
//!   resolution) merged from per-worker shards.
//! * [`clients`] — the simulated-client traffic frontend: a
//!   hierarchical timer wheel schedules 100k–1M open-loop clients over
//!   the worker pool, each with its own seeded [`ArrivalShape`]
//!   (Poisson, periodic, bursty, diurnal, flash crowd) and op-mix
//!   stream; latency is measured from *intended* arrival and split
//!   into queueing + service, defeating coordinated omission.
//! * Quality wiring — counter backends sample read deviation against
//!   the exact sum (Lemma 6.8's metric); queue backends either record a
//!   stamped history and replay it through the
//!   distributional-linearizability checker of `dlz-core::spec`
//!   (exact dequeue ranks, Theorem 7.1) or sample a cheap
//!   priority-space rank proxy; STM backends report abort breakdowns
//!   and verify the paper's array-sum safety law.
//! * [`RunReport`] — machine-readable results
//!   ([`RunReport::to_json`]).
//!
//! ## Example
//!
//! ```
//! use dlz_workload::{engine, backends::CounterBackend, Budget, Family, OpMix, Scenario};
//!
//! let scenario = Scenario::builder("demo", Family::Counter)
//!     .threads(2)
//!     .budget(Budget::OpsPerWorker(10_000))
//!     .mix(OpMix::new(90, 0, 10))
//!     .seed(7)
//!     .build();
//! let backend = CounterBackend::multicounter(32);
//! let report = engine::run(&scenario, &backend);
//! assert!(report.verified());          // no increment was lost
//! assert_eq!(report.total_ops(), 20_000);
//! println!("{}", report.to_json());    // throughput, p50/p99, deviation
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod backends;
pub mod calibration;
pub mod clients;
pub mod dist;
pub mod driver;
pub mod engine;
pub mod faults;
pub mod json;
pub mod metrics;
pub mod op;
pub mod report;
pub mod scenario;
pub mod sweep;
pub mod telemetry;

pub use backend::{Backend, QualityReport, QualitySummary, Worker, WorkerCfg};
pub use clients::{ArrivalShape, ClientReport, ClientStats};
pub use dist::{Arrival, Dist, Sampler};
pub use driver::{count_until_stopped, run_throughput, Throughput};
pub use engine::{run, run_sweep, run_sweep_shared};
pub use faults::{Fault, FaultPlan, WorkerFaults};
pub use metrics::{
    IntervalSnapshot, LatencySummary, LogHistogram, TelemetrySample, TelemetrySeries, WorkerMetrics,
};
pub use op::{Op, OpCounts, OpKind, OpMix};
pub use report::{FaultReport, RunReport, WorkerOutcome};
pub use scenario::{Budget, Family, Scenario, ScenarioBuilder};
pub use sweep::{SweepCell, SweepSpec};
pub use telemetry::{parse_prometheus, write_prometheus, PromSample};
