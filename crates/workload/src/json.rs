//! Minimal JSON emission (the workspace is dependency-free, so no
//! serde). Only what reports need: objects, strings, numbers, booleans,
//! nulls, nesting.

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental JSON object writer.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        escape_into(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        escape_into(&mut self.buf, v);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (`null` when not finite — bare NaN/inf are
    /// invalid JSON).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a `null` field.
    pub fn null(&mut self, k: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str("null");
        self
    }

    /// Adds a nested object built by `f`.
    pub fn obj(&mut self, k: &str, f: impl FnOnce(&mut JsonObject)) -> &mut Self {
        self.key(k);
        let mut inner = JsonObject::new();
        f(&mut inner);
        self.buf.push_str(&inner.finish());
        self
    }

    /// Adds pre-rendered JSON verbatim.
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Renders a list of pre-rendered JSON values as an array.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_rendering() {
        let mut o = JsonObject::new();
        o.str("name", "a\"b\\c\nd")
            .u64("n", 42)
            .f64("x", 1.5)
            .f64("bad", f64::NAN)
            .bool("ok", true)
            .null("nothing")
            .obj("nested", |i| {
                i.u64("k", 1);
            });
        let s = o.finish();
        assert_eq!(
            s,
            r#"{"name":"a\"b\\c\nd","n":42,"x":1.5,"bad":null,"ok":true,"nothing":null,"nested":{"k":1}}"#
        );
    }

    #[test]
    fn array_rendering() {
        assert_eq!(array(&["1".into(), "{}".into()]), "[1,{}]");
        assert_eq!(array(&[]), "[]");
    }

    #[test]
    fn control_chars_escaped() {
        let mut out = String::new();
        escape_into(&mut out, "\u{1}");
        assert_eq!(out, "\"\\u0001\"");
    }
}
