//! Minimal JSON layer — re-exported from [`dlz_core::json`], where the
//! emitter moved (together with a strict parser) when history artifacts
//! gained a serialized form: `dlz-core` cannot depend on this crate, and
//! keeping two hand-rolled JSON layers alive would guarantee drift.
//! Everything reports used from here (`JsonObject`, `escape_into`,
//! `array`) keeps its old path.

pub use dlz_core::json::{array, escape_into, parse, JsonError, JsonObject, JsonValue};
