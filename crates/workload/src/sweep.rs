//! Declarative sweep grids — the paper's curves as one artifact.
//!
//! The paper's claims are functions, not points: throughput and rank
//! cost *versus* thread count, skew and choice policy. A [`SweepSpec`]
//! holds a base [`Scenario`] plus a list of axes (threads, choice
//! policy, op mix, key/priority skew, batch, arrival, seed) and expands
//! the cartesian grid into concrete [`SweepCell`]s, each naming its
//! grid coordinates (`queue-balanced/t=8/policy=sticky(s=16)`).
//! [`engine::run_sweep`](crate::engine::run_sweep) executes the cells
//! and returns per-cell [`RunReport`](crate::RunReport)s with the
//! coordinates embedded, so one JSON array covers the whole grid.
//!
//! An axis left empty does not vary: the base scenario's value is used
//! and no coordinate is recorded. A spec with every axis empty is the
//! 1×1 grid — the single-run path is just a degenerate sweep.
//!
//! # Example
//!
//! ```
//! use dlz_core::PolicyCfg;
//! use dlz_workload::{Budget, Family, OpMix, Scenario, SweepSpec};
//!
//! let base = Scenario::builder("queue-balanced", Family::Queue)
//!     .budget(Budget::OpsPerWorker(1_000))
//!     .mix(OpMix::new(50, 50, 0))
//!     .build();
//! let spec = SweepSpec::new(base)
//!     .threads(&[2, 4, 8])
//!     .policies(&[PolicyCfg::TwoChoice, PolicyCfg::Sticky { ops: 16 }]);
//! let cells = spec.cells();
//! assert_eq!(cells.len(), 6);
//! assert_eq!(cells[0].name, "queue-balanced/t=2/policy=two-choice");
//! assert_eq!(cells[0].scenario.threads, 2);
//! ```

use dlz_core::{PolicyCfg, SubstrateCfg};

use crate::clients::ArrivalShape;
use crate::dist::{Arrival, Dist};
use crate::op::OpMix;
use crate::scenario::Scenario;

/// Display (and grid-key) order of the axes. Expansion nests in a
/// fixed outer→inner order (seed, shape, clients, arrival, keys,
/// priorities, mix, batch, substrate, policy, threads — threads varies
/// fastest), but cell names and grid coordinates always list axes in
/// this order.
const AXIS_ORDER: [&str; 11] = [
    "t", "policy", "sub", "mix", "keys", "prio", "batch", "arrival", "clients", "shape", "seed",
];

/// A base scenario plus the axes to sweep. Empty axes do not vary.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    base: Scenario,
    threads: Vec<usize>,
    policies: Vec<PolicyCfg>,
    substrates: Vec<SubstrateCfg>,
    mixes: Vec<OpMix>,
    keys: Vec<Dist>,
    priorities: Vec<Dist>,
    batches: Vec<usize>,
    arrivals: Vec<Arrival>,
    clients: Vec<usize>,
    shapes: Vec<ArrivalShape>,
    seeds: Vec<u64>,
}

/// One concrete point of an expanded sweep grid.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Cell name: the base scenario name plus one `axis=value` segment
    /// per swept axis, e.g. `queue-balanced/t=8/policy=sticky(s=16)`.
    pub name: String,
    /// The swept coordinates as `(axis, value-label)` pairs, in the
    /// fixed display order (`t`, `policy`, `sub`, `mix`, `keys`,
    /// `prio`, `batch`, `arrival`, `clients`, `shape`, `seed`); empty
    /// for a 1×1 grid.
    pub coords: Vec<(String, String)>,
    /// The fully concrete scenario for this cell (base values with the
    /// cell's coordinates applied; the name stays the base name).
    pub scenario: Scenario,
}

impl SweepSpec {
    /// A sweep over `base` with no axes yet (a 1×1 grid).
    pub fn new(base: Scenario) -> Self {
        SweepSpec {
            base,
            threads: Vec::new(),
            policies: Vec::new(),
            substrates: Vec::new(),
            mixes: Vec::new(),
            keys: Vec::new(),
            priorities: Vec::new(),
            batches: Vec::new(),
            arrivals: Vec::new(),
            clients: Vec::new(),
            shapes: Vec::new(),
            seeds: Vec::new(),
        }
    }

    /// The base scenario the axes are applied to.
    pub fn base(&self) -> &Scenario {
        &self.base
    }

    /// Sweep the worker-thread count (`t=` coordinate).
    ///
    /// # Panics
    /// If any value is zero — the grid coordinate must describe what
    /// actually runs, so invalid counts are rejected, not clamped.
    pub fn threads(mut self, values: &[usize]) -> Self {
        assert!(
            values.iter().all(|&v| v >= 1),
            "sweep threads values must be >= 1, got {values:?}"
        );
        self.threads = values.to_vec();
        self
    }

    /// Sweep the choice policy (`policy=` coordinate; queue backends).
    pub fn policies(mut self, values: &[PolicyCfg]) -> Self {
        self.policies = values.to_vec();
        self
    }

    /// Sweep the per-queue substrate (`sub=` coordinate; queue
    /// backends — packed lock vs lock-free vs flat combining).
    pub fn substrates(mut self, values: &[SubstrateCfg]) -> Self {
        self.substrates = values.to_vec();
        self
    }

    /// Sweep the operation mix (`mix=` coordinate).
    pub fn mixes(mut self, values: &[OpMix]) -> Self {
        self.mixes = values.to_vec();
        self
    }

    /// Sweep the key distribution (`keys=` coordinate — skew axis).
    pub fn keys(mut self, values: &[Dist]) -> Self {
        self.keys = values.to_vec();
        self
    }

    /// Sweep the priority distribution (`prio=` coordinate — skew axis).
    pub fn priorities(mut self, values: &[Dist]) -> Self {
        self.priorities = values.to_vec();
        self
    }

    /// Sweep the per-lock batch size (`batch=` coordinate).
    ///
    /// # Panics
    /// If any value is zero (1 means unbatched).
    pub fn batches(mut self, values: &[usize]) -> Self {
        assert!(
            values.iter().all(|&v| v >= 1),
            "sweep batch values must be >= 1, got {values:?}"
        );
        self.batches = values.to_vec();
        self
    }

    /// Sweep the arrival process (`arrival=` coordinate).
    pub fn arrivals(mut self, values: &[Arrival]) -> Self {
        self.arrivals = values.to_vec();
        self
    }

    /// Sweep the simulated-client population (`clients=` coordinate).
    /// `0` means the plain per-worker driver (no client frontend).
    pub fn clients(mut self, values: &[usize]) -> Self {
        self.clients = values.to_vec();
        self
    }

    /// Sweep the per-client arrival shape (`shape=` coordinate; only
    /// meaningful for cells with `clients > 0`).
    pub fn arrival_shapes(mut self, values: &[ArrivalShape]) -> Self {
        self.shapes = values.to_vec();
        self
    }

    /// Sweep the base RNG seed (`seed=` coordinate — repetitions or
    /// accumulating checkpoints).
    pub fn seeds(mut self, values: &[u64]) -> Self {
        self.seeds = values.to_vec();
        self
    }

    /// Number of cells the grid expands to (product of non-empty axes).
    pub fn len(&self) -> usize {
        [
            self.threads.len(),
            self.policies.len(),
            self.substrates.len(),
            self.mixes.len(),
            self.keys.len(),
            self.priorities.len(),
            self.batches.len(),
            self.arrivals.len(),
            self.clients.len(),
            self.shapes.len(),
            self.seeds.len(),
        ]
        .iter()
        .map(|&n| n.max(1))
        .product()
    }

    /// `true` only for the degenerate case of a zero-cell grid — which
    /// cannot happen (empty axes fall back to the base value), so this
    /// always returns `false`; it exists for `len`/`is_empty` symmetry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian grid into concrete cells.
    ///
    /// Nesting order (outer→inner): seed, shape, clients, arrival,
    /// keys, priorities, mix, batch, substrate, policy, threads — so
    /// the threads axis varies fastest and a `keys × threads` sweep
    /// groups naturally by skew. The expansion is fully deterministic.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = vec![SweepCell {
            name: String::new(),
            coords: Vec::new(),
            scenario: self.base.clone(),
        }];
        cells = apply_axis(
            cells,
            &self.seeds,
            "seed",
            |s, &v| s.seed = v,
            |v| v.to_string(),
        );
        cells = apply_axis(
            cells,
            &self.shapes,
            "shape",
            |s, &v| s.arrival_shape = v,
            |v| v.label(),
        );
        cells = apply_axis(
            cells,
            &self.clients,
            "clients",
            |s, &v| s.clients = v,
            |v| v.to_string(),
        );
        cells = apply_axis(
            cells,
            &self.arrivals,
            "arrival",
            |s, &v| s.arrival = v,
            |v| v.label(),
        );
        cells = apply_axis(cells, &self.keys, "keys", |s, &v| s.keys = v, |v| v.label());
        cells = apply_axis(
            cells,
            &self.priorities,
            "prio",
            |s, &v| s.priorities = v,
            |v| v.label(),
        );
        cells = apply_axis(cells, &self.mixes, "mix", |s, &v| s.mix = v, |v| v.label());
        cells = apply_axis(
            cells,
            &self.batches,
            "batch",
            |s, &v| s.batch = v,
            |v| v.to_string(),
        );
        cells = apply_axis(
            cells,
            &self.substrates,
            "sub",
            |s, &v| s.substrate = v,
            |v| v.label().to_string(),
        );
        cells = apply_axis(
            cells,
            &self.policies,
            "policy",
            |s, &v| s.choice_policy = v,
            |v| v.label(),
        );
        cells = apply_axis(
            cells,
            &self.threads,
            "t",
            |s, &v| s.threads = v,
            |v| v.to_string(),
        );
        for cell in &mut cells {
            cell.coords
                .sort_by_key(|(k, _)| AXIS_ORDER.iter().position(|a| a == k).unwrap_or(usize::MAX));
            cell.name = cell_name(&self.base.name, &cell.coords);
        }
        cells
    }
}

/// The canonical cell name: base scenario name plus `axis=value`
/// segments in `AXIS_ORDER`.
fn cell_name(base: &str, coords: &[(String, String)]) -> String {
    let mut name = base.to_string();
    for (k, v) in coords {
        name.push('/');
        name.push_str(k);
        name.push('=');
        name.push_str(v);
    }
    name
}

/// Multiplies `cells` by one axis: each existing cell is cloned once
/// per axis value with the value applied and the coordinate recorded.
/// An empty axis leaves the cells untouched (the base value rules).
fn apply_axis<T>(
    cells: Vec<SweepCell>,
    values: &[T],
    key: &str,
    set: impl Fn(&mut Scenario, &T),
    label: impl Fn(&T) -> String,
) -> Vec<SweepCell> {
    if values.is_empty() {
        return cells;
    }
    let mut out = Vec::with_capacity(cells.len() * values.len());
    for cell in cells {
        for v in values {
            let mut next = cell.clone();
            set(&mut next.scenario, v);
            next.coords.push((key.to_string(), label(v)));
            out.push(next);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Budget, Family};

    fn base() -> Scenario {
        Scenario::builder("sweep-base", Family::Queue)
            .threads(4)
            .budget(Budget::OpsPerWorker(100))
            .mix(OpMix::new(50, 50, 0))
            .seed(7)
            .build()
    }

    #[test]
    fn empty_spec_is_a_one_by_one_grid() {
        let spec = SweepSpec::new(base());
        assert_eq!(spec.len(), 1);
        assert!(!spec.is_empty());
        let cells = spec.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].name, "sweep-base");
        assert!(cells[0].coords.is_empty());
        assert_eq!(cells[0].scenario.threads, 4);
        assert_eq!(cells[0].scenario.name, "sweep-base");
    }

    #[test]
    fn cartesian_expansion_counts_and_names() {
        let spec = SweepSpec::new(base())
            .threads(&[2, 8])
            .policies(&[PolicyCfg::TwoChoice, PolicyCfg::Sticky { ops: 16 }])
            .mixes(&[OpMix::new(50, 50, 0)]);
        assert_eq!(spec.len(), 4);
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        // Policy is outer, threads inner; names list t first regardless.
        let names: Vec<&str> = cells.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "sweep-base/t=2/policy=two-choice/mix=50-50-0",
                "sweep-base/t=8/policy=two-choice/mix=50-50-0",
                "sweep-base/t=2/policy=sticky(s=16)/mix=50-50-0",
                "sweep-base/t=8/policy=sticky(s=16)/mix=50-50-0",
            ]
        );
        // Coordinates are applied to the concrete scenarios.
        assert_eq!(cells[1].scenario.threads, 8);
        assert_eq!(cells[1].scenario.choice_policy, PolicyCfg::TwoChoice);
        assert_eq!(
            cells[2].scenario.choice_policy,
            PolicyCfg::Sticky { ops: 16 }
        );
        // The scenario name stays the base name; the grid lives in coords.
        assert!(cells.iter().all(|c| c.scenario.name == "sweep-base"));
        assert!(cells.iter().all(|c| c.coords.len() == 3));
    }

    #[test]
    fn single_value_axis_still_tags_its_coordinate() {
        let cells = SweepSpec::new(base()).threads(&[8]).cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].name, "sweep-base/t=8");
        assert_eq!(cells[0].coords, vec![("t".into(), "8".into())]);
        assert_eq!(cells[0].scenario.threads, 8);
    }

    #[test]
    fn skew_batch_arrival_and_seed_axes_expand() {
        let spec = SweepSpec::new(base())
            .keys(&[
                Dist::Uniform { n: 1 << 10 },
                Dist::Zipf {
                    n: 1 << 10,
                    theta: 0.9,
                },
            ])
            .priorities(&[Dist::Monotonic])
            .batches(&[1, 16])
            .arrivals(&[Arrival::Closed])
            .seeds(&[1, 2, 3]);
        assert_eq!(spec.len(), 2 * 2 * 3);
        let cells = spec.cells();
        assert_eq!(cells.len(), 12);
        // Seed is the outermost axis; batch inner than keys.
        assert_eq!(cells[0].scenario.seed, 1);
        assert_eq!(cells[11].scenario.seed, 3);
        let c = &cells[0];
        assert_eq!(
            c.name,
            "sweep-base/keys=uniform(1024)/prio=monotonic/batch=1/arrival=closed/seed=1"
        );
        assert_eq!(c.scenario.batch, 1);
        assert!(cells.iter().any(|c| c.scenario.batch == 16));
        assert!(cells
            .iter()
            .any(|c| matches!(c.scenario.keys, Dist::Zipf { .. })));
    }

    #[test]
    fn client_and_shape_axes_expand_between_arrival_and_seed() {
        let spec = SweepSpec::new(base())
            .clients(&[0, 100_000])
            .arrival_shapes(&[
                ArrivalShape::Poisson { rate: 50.0 },
                ArrivalShape::Periodic { rate: 50.0 },
            ])
            .seeds(&[1]);
        assert_eq!(spec.len(), 4);
        let cells = spec.cells();
        assert_eq!(
            cells[0].name,
            "sweep-base/clients=0/shape=poisson(50/s)/seed=1"
        );
        assert_eq!(
            cells[3].name,
            "sweep-base/clients=100000/shape=periodic(50/s)/seed=1"
        );
        assert_eq!(cells[3].scenario.clients, 100_000);
        assert_eq!(
            cells[3].scenario.arrival_shape,
            ArrivalShape::Periodic { rate: 50.0 }
        );
        // Shape is outer to clients in expansion order.
        assert_eq!(cells[1].scenario.clients, 100_000);
        assert_eq!(
            cells[1].scenario.arrival_shape,
            ArrivalShape::Poisson { rate: 50.0 }
        );
    }

    #[test]
    fn substrate_axis_expands_rectangular_with_correct_labels() {
        let spec = SweepSpec::new(base())
            .policies(&[PolicyCfg::TwoChoice, PolicyCfg::Sticky { ops: 16 }])
            .substrates(&[
                SubstrateCfg::Locked,
                SubstrateCfg::LockFree,
                SubstrateCfg::Combining,
            ]);
        assert_eq!(spec.len(), 6);
        let cells = spec.cells();
        assert_eq!(cells.len(), 6);
        // Rectangular: every substrate appears under every policy.
        for sub in SubstrateCfg::all() {
            let with_sub: Vec<&SweepCell> = cells
                .iter()
                .filter(|c| c.scenario.substrate == sub)
                .collect();
            assert_eq!(with_sub.len(), 2, "ragged grid along sub={sub}");
            for c in with_sub {
                assert!(
                    c.name.contains(&format!("sub={}", sub.label())),
                    "cell {} missing its substrate coordinate",
                    c.name
                );
            }
        }
        // Display order puts policy before sub.
        assert_eq!(cells[0].name, "sweep-base/policy=two-choice/sub=locked");
        // Every coordinate round-trips through the parser.
        for c in &cells {
            let (_, label) = c.coords.iter().find(|(k, _)| k == "sub").expect("sub");
            assert_eq!(SubstrateCfg::parse(label), Some(c.scenario.substrate));
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let spec = SweepSpec::new(base())
            .threads(&[1, 2, 4])
            .policies(&[PolicyCfg::DChoice { d: 4 }]);
        let a = spec.cells();
        let b = spec.cells();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.coords, y.coords);
            assert_eq!(x.scenario.threads, y.scenario.threads);
        }
    }
}
