//! Simulated-client traffic frontend: open-loop arrival scheduling for
//! 100k–1M logical clients over a small worker pool.
//!
//! The paper's motivating setting is massive fan-in — far more logical
//! clients than hardware threads. A thread-per-worker engine cannot
//! express that: "open loop" degenerates to a handful of pacing
//! threads, and latency sampled at op-issue time hides queueing delay
//! entirely (the classic *coordinated omission* artifact). This module
//! makes clients first-class:
//!
//! * Each worker owns a contiguous shard of the client population and
//!   schedules their arrivals through a hierarchical
//!   [`dlz_sim::TimerWheel`] — O(1) per event, pop order a
//!   pure function of the seeded schedule, so fixed-op client runs are
//!   bit-reproducible.
//! * Each client carries its own session state (event counter), its own
//!   seeded arrival process (an [`ArrivalShape`]: Poisson, periodic,
//!   bursty, diurnal curve, flash crowd — or self-paced, the closed
//!   loop as a degenerate shape), and its own op-mix stream. Per-event
//!   randomness is *stateless* — a SplitMix64 hash of (client seed,
//!   event index) — so a million clients cost no per-client RNG state.
//! * Latency is measured from the **intended** arrival time and split
//!   into queueing (intended → issue) and service (issue → completion)
//!   components; the total (intended → completion) feeds the run's main
//!   latency histogram. Queueing delay under overload is therefore
//!   *visible* in the percentiles instead of silently omitted.
//!
//! The engine activates this driver for any scenario with
//! [`clients`](crate::Scenario::clients) > 0, and also routes the
//! legacy `Arrival::Open`/`Arrival::Bursty` paths through it (one
//! client per worker), which is what fixed their latency accounting.

use dlz_core::rng::{Rng64, SplitMix64};
use dlz_sim::TimerWheel;

use crate::metrics::{LatencySummary, LogHistogram};

/// Default level-0 slot width for the arrival wheel: ~65 µs covers
/// 16.7 ms at level 0 and 4.3 s at level 1 — interarrival gaps are
/// capped at 1 s, so cascades from overflow are rare.
const WHEEL_SLOT_NS: u64 = 65_536;

/// A per-client arrival process, seeded and stateless: the intended
/// time of a client's next arrival is a pure function of (client seed,
/// event index, previous intended time).
///
/// Rates are per client, in arrivals per second. Interarrival gaps are
/// capped at 1 s so a mis-set rate cannot hang a fixed-op run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ArrivalShape {
    /// Closed loop: the next arrival is intended at the moment the
    /// previous op completes (queueing delay is identically zero).
    /// This is the legacy closed-loop engine as a degenerate shape.
    #[default]
    SelfPaced,
    /// Memoryless arrivals at `rate` per second.
    Poisson {
        /// Arrivals per second per client.
        rate: f64,
    },
    /// Fixed-period arrivals at `rate` per second, with a per-client
    /// uniform phase so a million periodic clients do not thunder.
    Periodic {
        /// Arrivals per second per client.
        rate: f64,
    },
    /// Bursts of `burst` arrivals sharing one intended instant, burst
    /// starts spaced drift-free at `burst / rate` seconds (so the
    /// long-run rate is still `rate`), phase per client.
    Bursty {
        /// Long-run arrivals per second per client.
        rate: f64,
        /// Arrivals per burst.
        burst: u32,
    },
    /// A diurnal load curve: Poisson arrivals whose rate is modulated
    /// sinusoidally, `rate · (1 + 0.8·sin(2πt/period))` — peak 1.8×,
    /// trough 0.2× of the base rate.
    Diurnal {
        /// Base arrivals per second per client.
        rate: f64,
        /// Period of one load cycle, in milliseconds of virtual time.
        period_ms: u64,
    },
    /// A flash crowd: Poisson at `rate`, except `factor`× during the
    /// window `[at_ms, at_ms + len_ms)` of virtual time.
    Flash {
        /// Baseline arrivals per second per client.
        rate: f64,
        /// Rate multiplier inside the flash window.
        factor: f64,
        /// Window start, milliseconds of virtual time from run begin.
        at_ms: u64,
        /// Window length in milliseconds.
        len_ms: u64,
    },
}

/// A uniform draw in `[0, 1)` from 64 hash bits.
#[inline]
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Stateless per-(client, event) hash: event `e` of a client seeded
/// `cs` draws the `e`-th output of SplitMix64(cs).
#[inline]
fn event_bits(client_seed: u64, event: u64) -> u64 {
    SplitMix64::new(client_seed.wrapping_add(event.wrapping_mul(0x9e3779b97f4a7c15))).next_u64()
}

/// The per-client seed: one hash of (run seed, global client id).
#[inline]
pub(crate) fn client_seed(run_seed: u64, client_id: u64) -> u64 {
    SplitMix64::new(run_seed ^ (client_id + 1).wrapping_mul(0xbf58476d1ce4e5b9)).next_u64()
}

/// Exponential gap at `rate`/s from a unit draw, in ns, capped at 1 s
/// (the same discipline the closed-path op sampler uses).
#[inline]
fn exp_gap_ns(u: f64, rate: f64) -> u64 {
    let secs = (-(1.0 - u).ln()) / rate.max(1e-3);
    (secs.min(1.0) * 1e9) as u64
}

/// A deterministic gap of `1/rate` seconds in ns, capped at 1 s.
#[inline]
fn fixed_gap_ns(rate: f64) -> u64 {
    ((1.0 / rate.max(1e-3)).min(1.0) * 1e9) as u64
}

impl ArrivalShape {
    /// Short label used in sweep-cell names and grid coordinates.
    pub fn label(&self) -> String {
        match *self {
            ArrivalShape::SelfPaced => "self-paced".to_string(),
            ArrivalShape::Poisson { rate } => format!("poisson({rate}/s)"),
            ArrivalShape::Periodic { rate } => format!("periodic({rate}/s)"),
            ArrivalShape::Bursty { rate, burst } => format!("bursty({rate}/s,x{burst})"),
            ArrivalShape::Diurnal { rate, period_ms } => {
                format!("diurnal({rate}/s,{period_ms}ms)")
            }
            ArrivalShape::Flash {
                rate,
                factor,
                at_ms,
                len_ms,
            } => format!("flash({rate}/s,x{factor},@{at_ms}ms+{len_ms}ms)"),
        }
    }

    /// Parses the CLI grammar: `self-paced`, `poisson:RATE`,
    /// `periodic:RATE`, `bursty:RATE:BURST`, `diurnal:RATE:PERIOD_MS`,
    /// `flash:RATE:FACTOR:AT_MS:LEN_MS`. Rates are per client per
    /// second and must be positive.
    pub fn parse(s: &str) -> Result<ArrivalShape, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let bad = |what: &str| format!("arrival shape '{s}': {what}");
        let rate = |field: &str| -> Result<f64, String> {
            let r: f64 = field
                .trim()
                .parse()
                .map_err(|_| bad(&format!("'{field}' is not a rate")))?;
            if !(r.is_finite() && r > 0.0) {
                return Err(bad("rate must be a positive number"));
            }
            Ok(r)
        };
        let int = |field: &str, what: &str| -> Result<u64, String> {
            field
                .trim()
                .parse()
                .map_err(|_| bad(&format!("'{field}' is not {what}")))
        };
        match (parts[0].trim(), parts.len()) {
            ("self-paced", 1) => Ok(ArrivalShape::SelfPaced),
            ("poisson", 2) => Ok(ArrivalShape::Poisson {
                rate: rate(parts[1])?,
            }),
            ("periodic", 2) => Ok(ArrivalShape::Periodic {
                rate: rate(parts[1])?,
            }),
            ("bursty", 3) => {
                let burst = int(parts[2], "a burst size")?;
                if burst == 0 || burst > u32::MAX as u64 {
                    return Err(bad("burst must be in 1..=u32::MAX"));
                }
                Ok(ArrivalShape::Bursty {
                    rate: rate(parts[1])?,
                    burst: burst as u32,
                })
            }
            ("diurnal", 3) => Ok(ArrivalShape::Diurnal {
                rate: rate(parts[1])?,
                period_ms: int(parts[2], "a period in ms")?.max(1),
            }),
            ("flash", 5) => {
                let factor: f64 = parts[2]
                    .trim()
                    .parse()
                    .map_err(|_| bad(&format!("'{}' is not a factor", parts[2])))?;
                if !(factor.is_finite() && factor >= 1.0) {
                    return Err(bad("factor must be a number ≥ 1"));
                }
                Ok(ArrivalShape::Flash {
                    rate: rate(parts[1])?,
                    factor,
                    at_ms: int(parts[3], "a window start in ms")?,
                    len_ms: int(parts[4], "a window length in ms")?.max(1),
                })
            }
            _ => Err(bad(
                "expected self-paced | poisson:RATE | periodic:RATE | bursty:RATE:BURST \
                 | diurnal:RATE:PERIOD_MS | flash:RATE:FACTOR:AT_MS:LEN_MS",
            )),
        }
    }

    /// Instantaneous rate at virtual time `t_ns` (1.0 placeholder for
    /// shapes without a rate).
    fn rate_at(&self, t_ns: u64) -> f64 {
        match *self {
            ArrivalShape::SelfPaced => 1.0,
            ArrivalShape::Poisson { rate } | ArrivalShape::Periodic { rate } => rate,
            ArrivalShape::Bursty { rate, .. } => rate,
            ArrivalShape::Diurnal { rate, period_ms } => {
                let period = period_ms.max(1) as f64 * 1e6;
                let phase = (t_ns as f64 / period) * std::f64::consts::TAU;
                rate * (1.0 + 0.8 * phase.sin())
            }
            ArrivalShape::Flash {
                rate,
                factor,
                at_ms,
                len_ms,
            } => {
                let (start, end) = (at_ms * 1_000_000, (at_ms + len_ms) * 1_000_000);
                if (start..end).contains(&t_ns) {
                    rate * factor
                } else {
                    rate
                }
            }
        }
    }

    /// Intended virtual time (ns) of a client's `event`-th arrival,
    /// given the intended time of the previous one (`0` for event 0).
    /// `None` for [`SelfPaced`](ArrivalShape::SelfPaced): the driver
    /// reschedules at completion time instead.
    pub(crate) fn next_ns(&self, client_seed: u64, event: u64, prev_ns: u64) -> Option<u64> {
        match *self {
            ArrivalShape::SelfPaced => None,
            ArrivalShape::Poisson { rate } => {
                Some(prev_ns + exp_gap_ns(unit(event_bits(client_seed, event)), rate))
            }
            ArrivalShape::Periodic { rate } => {
                let period = fixed_gap_ns(rate);
                if event == 0 {
                    Some((unit(event_bits(client_seed, 0)) * period as f64) as u64)
                } else {
                    Some(prev_ns + period)
                }
            }
            ArrivalShape::Bursty { rate, burst } => {
                // Drift-free: burst k is intended at phase + k·gap, and
                // every arrival of a burst shares that instant.
                let b = burst.max(1) as u64;
                let gap = ((b as f64 / rate.max(1e-3)).min(1.0) * 1e9) as u64;
                let phase = (unit(event_bits(client_seed, u64::MAX)) * gap as f64) as u64;
                Some(phase + (event / b) * gap)
            }
            ArrivalShape::Diurnal { .. } | ArrivalShape::Flash { .. } => {
                let u = unit(event_bits(client_seed, event));
                Some(prev_ns + exp_gap_ns(u, self.rate_at(prev_ns)))
            }
        }
    }

    /// The per-client op-kind draw for `event`: a uniform index in
    /// `0..total` from the client's kind stream (independent of the
    /// arrival-time stream by construction).
    #[inline]
    pub(crate) fn kind_draw(client_seed: u64, event: u64, total: u64) -> u32 {
        let bits = event_bits(client_seed ^ 0xa5a5_a5a5_5a5a_5a5a, event);
        (((bits as u128) * (total as u128)) >> 64) as u32
    }
}

/// Caller-owned measurement state for one worker's client shard. Lives
/// *outside* the engine's panic harness (like `WorkerMetrics`), so a
/// fault-killed worker's partial client telemetry survives and merges.
#[derive(Debug, Default, Clone)]
pub struct ClientStats {
    /// Intended-arrival → op-issue delay distribution.
    pub queueing: LogHistogram,
    /// Op-issue → completion delay distribution.
    pub service: LogHistogram,
    /// Arrivals delivered (ops issued through the wheel).
    pub arrivals: u64,
    /// Arrival events scheduled (delivered or still pending).
    pub scheduled: u64,
    /// Distinct clients that had at least one arrival delivered.
    pub active: u64,
    /// Largest observed arrival backlog (arrivals past their intended
    /// time but not yet issued), sampled at a coarse cadence.
    pub backlog_max: u64,
    /// Order-sensitive digest of the worker's arrival schedule — every
    /// `(client id, intended ns)` pair folded in schedule order. Equal
    /// digests ⇒ bit-identical schedules.
    pub digest: u64,
}

impl ClientStats {
    /// Folds one scheduled arrival into the schedule digest.
    #[inline]
    fn note_scheduled(&mut self, client_id: u64, at_ns: u64) {
        self.scheduled += 1;
        self.digest = SplitMix64::new(
            self.digest
                ^ client_id.wrapping_mul(0x9e3779b97f4a7c15)
                ^ at_ns.wrapping_mul(0xbf58476d1ce4e5b9),
        )
        .next_u64();
    }

    /// Merges another worker's stats (worker order is deterministic, so
    /// the folded digest is too).
    pub fn merge(&mut self, other: &ClientStats) {
        self.queueing.merge(&other.queueing);
        self.service.merge(&other.service);
        self.arrivals += other.arrivals;
        self.scheduled += other.scheduled;
        self.active += other.active;
        self.backlog_max = self.backlog_max.max(other.backlog_max);
        self.digest = SplitMix64::new(self.digest.rotate_left(17) ^ other.digest).next_u64();
    }
}

/// One worker's shard of the client population: the arrival wheel plus
/// per-client session state. Scheduling state only — all measurement
/// goes through the caller-owned [`ClientStats`].
pub(crate) struct ClientSet {
    shape: ArrivalShape,
    wheel: TimerWheel<u32>,
    /// Per-local-client next event index.
    next_event: Vec<u64>,
    /// Served bitmap (drives `ClientStats::active`).
    served: Vec<u64>,
    /// Global id of local client 0.
    first_id: u64,
    run_seed: u64,
}

impl ClientSet {
    /// Builds worker `worker`'s shard of `total` clients (contiguous,
    /// near-even split across `threads` workers) and schedules every
    /// client's first arrival.
    pub(crate) fn new(
        shape: ArrivalShape,
        total: usize,
        worker: usize,
        threads: usize,
        run_seed: u64,
        stats: &mut ClientStats,
    ) -> Self {
        let lo = (total * worker / threads) as u64;
        let hi = (total * (worker + 1) / threads) as u64;
        let n = (hi - lo) as usize;
        let mut set = ClientSet {
            shape,
            wheel: TimerWheel::new(WHEEL_SLOT_NS),
            next_event: vec![1; n],
            served: vec![0; n.div_ceil(64)],
            first_id: lo,
            run_seed,
        };
        for local in 0..n {
            let id = lo + local as u64;
            let first = shape.next_ns(client_seed(run_seed, id), 0, 0).unwrap_or(0);
            set.wheel.schedule(first, local as u32);
            stats.note_scheduled(id, first);
        }
        set
    }

    /// Delivers the earliest pending arrival as
    /// `(intended_ns, local client index)`.
    pub(crate) fn pop(&mut self, stats: &mut ClientStats) -> Option<(u64, u32)> {
        let (at, local) = self.wheel.pop()?;
        stats.arrivals += 1;
        let (word, bit) = (local as usize / 64, local as usize % 64);
        if self.served[word] & (1 << bit) == 0 {
            self.served[word] |= 1 << bit;
            stats.active += 1;
        }
        Some((at, local))
    }

    /// The client's op-kind draw for its current event.
    #[inline]
    pub(crate) fn kind_draw(&self, local: u32, mix_total: u64) -> u32 {
        let id = self.first_id + local as u64;
        let event = self.next_event[local as usize] - 1;
        ArrivalShape::kind_draw(client_seed(self.run_seed, id), event, mix_total)
    }

    /// Schedules the client's next arrival after an event intended at
    /// `prev_ns` that completed at virtual time `now_ns`.
    pub(crate) fn reschedule(
        &mut self,
        local: u32,
        prev_ns: u64,
        now_ns: u64,
        stats: &mut ClientStats,
    ) {
        let id = self.first_id + local as u64;
        let event = self.next_event[local as usize];
        self.next_event[local as usize] = event + 1;
        let next = self
            .shape
            .next_ns(client_seed(self.run_seed, id), event, prev_ns)
            .unwrap_or(now_ns);
        self.wheel.schedule(next, local);
        stats.note_scheduled(id, next);
    }

    /// Arrivals past their intended time but not yet delivered.
    pub(crate) fn backlog(&self, now_ns: u64) -> u64 {
        self.wheel.due_len(now_ns) as u64
    }

    /// Clients in this shard.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.next_event.len()
    }
}

/// The `clients` section of a [`RunReport`](crate::RunReport):
/// population, arrival accounting, and the queueing/service latency
/// split, merged across workers.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// Simulated clients in the scenario.
    pub clients: u64,
    /// Arrival shape label.
    pub shape: String,
    /// Distinct clients that had at least one arrival delivered.
    pub active: u64,
    /// Arrivals delivered (= ops issued through the client driver).
    pub arrivals: u64,
    /// Largest sampled arrival backlog.
    pub backlog_max: u64,
    /// Intended-arrival → issue delay percentiles.
    pub queueing_ns: LatencySummary,
    /// Issue → completion delay percentiles.
    pub service_ns: LatencySummary,
    /// Deterministic digest of the full arrival schedule.
    pub arrival_digest: u64,
}

impl ClientReport {
    /// Builds the report section from merged worker stats.
    pub(crate) fn from_stats(clients: u64, shape: &ArrivalShape, stats: &ClientStats) -> Self {
        ClientReport {
            clients,
            shape: shape.label(),
            active: stats.active,
            arrivals: stats.arrivals,
            backlog_max: stats.backlog_max,
            queueing_ns: LatencySummary::from(&stats.queueing),
            service_ns: LatencySummary::from(&stats.service),
            arrival_digest: stats.digest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(ArrivalShape::SelfPaced.label(), "self-paced");
        assert_eq!(
            ArrivalShape::Poisson { rate: 50.0 }.label(),
            "poisson(50/s)"
        );
        assert_eq!(
            ArrivalShape::Bursty {
                rate: 320.0,
                burst: 64
            }
            .label(),
            "bursty(320/s,x64)"
        );
        assert_eq!(
            ArrivalShape::Diurnal {
                rate: 20.0,
                period_ms: 200
            }
            .label(),
            "diurnal(20/s,200ms)"
        );
        assert_eq!(
            ArrivalShape::Flash {
                rate: 5.0,
                factor: 20.0,
                at_ms: 50,
                len_ms: 50
            }
            .label(),
            "flash(5/s,x20,@50ms+50ms)"
        );
    }

    #[test]
    fn parse_grammar_roundtrips_semantics() {
        assert_eq!(
            ArrivalShape::parse("self-paced"),
            Ok(ArrivalShape::SelfPaced)
        );
        assert_eq!(
            ArrivalShape::parse("poisson:50"),
            Ok(ArrivalShape::Poisson { rate: 50.0 })
        );
        assert_eq!(
            ArrivalShape::parse("periodic:10.5"),
            Ok(ArrivalShape::Periodic { rate: 10.5 })
        );
        assert_eq!(
            ArrivalShape::parse("bursty:320:64"),
            Ok(ArrivalShape::Bursty {
                rate: 320.0,
                burst: 64
            })
        );
        assert_eq!(
            ArrivalShape::parse("diurnal:20:200"),
            Ok(ArrivalShape::Diurnal {
                rate: 20.0,
                period_ms: 200
            })
        );
        assert_eq!(
            ArrivalShape::parse("flash:5:20:50:50"),
            Ok(ArrivalShape::Flash {
                rate: 5.0,
                factor: 20.0,
                at_ms: 50,
                len_ms: 50
            })
        );
        for bad in [
            "",
            "poisson",
            "poisson:0",
            "poisson:-1",
            "poisson:nope",
            "bursty:10:0",
            "flash:5:0.5:0:10",
            "warp:9",
            "periodic:inf",
        ] {
            assert!(ArrivalShape::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn schedules_are_deterministic_and_seed_sensitive() {
        let shape = ArrivalShape::Poisson { rate: 100.0 };
        let walk = |seed: u64| -> Vec<u64> {
            let cs = client_seed(seed, 7);
            let mut prev = 0;
            (0..64)
                .map(|e| {
                    prev = shape.next_ns(cs, e, prev).unwrap();
                    prev
                })
                .collect()
        };
        assert_eq!(walk(1), walk(1));
        assert_ne!(walk(1), walk(2));
    }

    #[test]
    fn poisson_gaps_have_the_right_mean() {
        let shape = ArrivalShape::Poisson { rate: 1_000.0 };
        let mut prev = 0u64;
        let cs = client_seed(0xfeed, 0);
        let n = 20_000u64;
        for e in 0..n {
            prev = shape.next_ns(cs, e, prev).unwrap();
        }
        // Mean gap should be ~1ms = 1e6 ns.
        let mean = prev as f64 / n as f64;
        assert!((0.9e6..1.1e6).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn bursty_shares_intended_instants() {
        let shape = ArrivalShape::Bursty {
            rate: 64_000.0,
            burst: 64,
        };
        let cs = client_seed(3, 3);
        let t0 = shape.next_ns(cs, 0, 0).unwrap();
        for e in 1..64 {
            assert_eq!(shape.next_ns(cs, e, t0).unwrap(), t0, "event {e}");
        }
        // Next burst starts exactly one gap (64/64k s = 1ms) later.
        assert_eq!(shape.next_ns(cs, 64, t0).unwrap(), t0 + 1_000_000);
    }

    #[test]
    fn flash_window_multiplies_the_rate() {
        let shape = ArrivalShape::Flash {
            rate: 10.0,
            factor: 100.0,
            at_ms: 10,
            len_ms: 5,
        };
        assert_eq!(shape.rate_at(0), 10.0);
        assert_eq!(shape.rate_at(12_000_000), 1_000.0);
        assert_eq!(shape.rate_at(15_000_000), 10.0);
    }

    #[test]
    fn diurnal_rate_oscillates() {
        let shape = ArrivalShape::Diurnal {
            rate: 100.0,
            period_ms: 100,
        };
        let quarter = shape.rate_at(25_000_000); // sin peak
        let three_quarter = shape.rate_at(75_000_000); // sin trough
        assert!((quarter - 180.0).abs() < 1.0, "{quarter}");
        assert!((three_quarter - 20.0).abs() < 1.0, "{three_quarter}");
    }

    #[test]
    fn client_set_shards_evenly_and_digests_differ_by_seed() {
        let shape = ArrivalShape::Poisson { rate: 50.0 };
        let mut sizes = 0;
        for worker in 0..3 {
            let mut stats = ClientStats::default();
            let set = ClientSet::new(shape, 1_000, worker, 3, 42, &mut stats);
            assert_eq!(stats.scheduled, set.len() as u64);
            sizes += set.len();
        }
        assert_eq!(sizes, 1_000);
        let digest = |seed| {
            let mut stats = ClientStats::default();
            ClientSet::new(shape, 100, 0, 1, seed, &mut stats);
            stats.digest
        };
        assert_eq!(digest(7), digest(7));
        assert_ne!(digest(7), digest(8));
    }

    #[test]
    fn pop_and_reschedule_track_active_and_arrivals() {
        let shape = ArrivalShape::Periodic { rate: 1_000.0 };
        let mut stats = ClientStats::default();
        let mut set = ClientSet::new(shape, 4, 0, 1, 9, &mut stats);
        for _ in 0..8 {
            let (at, local) = set.pop(&mut stats).expect("arrival");
            set.reschedule(local, at, at, &mut stats);
        }
        assert_eq!(stats.arrivals, 8);
        assert_eq!(stats.active, 4, "every client served in two rounds");
        assert_eq!(stats.scheduled, 4 + 8);
    }

    #[test]
    fn merge_is_deterministic() {
        let mk = |seed| {
            let mut s = ClientStats::default();
            ClientSet::new(ArrivalShape::Poisson { rate: 10.0 }, 50, 0, 1, seed, &mut s);
            s
        };
        let merged = |a: u64, b: u64| {
            let mut m = mk(a);
            m.merge(&mk(b));
            m.digest
        };
        assert_eq!(merged(1, 2), merged(1, 2));
        assert_ne!(merged(1, 2), merged(2, 1), "digest is order-sensitive");
    }
}
