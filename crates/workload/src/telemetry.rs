//! Prometheus-style text-exposition export of run telemetry.
//!
//! File-based, std-only: [`write_prometheus`] renders a [`RunReport`]
//! (ideally one carrying a [`TelemetrySeries`](crate::TelemetrySeries))
//! in the Prometheus text exposition format, and the engine writes one
//! `.prom` file per run next to the `.histjsonl` history artifacts when
//! an export directory is set. Per-interval samples carry explicit
//! timestamps — **milliseconds since run start**, not epoch — so a
//! series of scrapes over one file reconstructs the run's time axis;
//! run-total families omit the timestamp.
//!
//! [`parse_prometheus`] is the strict inverse used by the test suite to
//! round-trip the emitter, and by anything that wants to consume the
//! artifacts without a Prometheus server.

use crate::report::RunReport;

/// Every label a run's samples share: scenario, backend, policy, and —
/// for sweep cells — the cell name plus one `axis_<name>` label per
/// grid coordinate (prefixed so a `policy` axis cannot collide with
/// the policy label itself).
fn base_labels(report: &RunReport) -> Vec<(String, String)> {
    let mut labels = vec![
        ("scenario".to_string(), report.scenario.clone()),
        ("backend".to_string(), report.backend.clone()),
        ("policy".to_string(), report.policy.clone()),
    ];
    if let Some(cell) = &report.cell {
        labels.push(("cell".to_string(), cell.clone()));
    }
    for (axis, value) in &report.grid {
        labels.push((format!("axis_{}", sanitize_label_name(axis)), value.clone()));
    }
    labels
}

/// Clamps a string to a legal Prometheus label-name suffix
/// (`[a-zA-Z0-9_]`, non-conforming bytes become `_`).
fn sanitize_label_name(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escapes a label value per the exposition format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
fn escape_label_value(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn head(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: &[(&str, &str)],
    value: f64,
    timestamp_ms: Option<u64>,
) {
    out.push_str(name);
    out.push('{');
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(out, v);
        out.push('"');
    }
    out.push_str("} ");
    if value.is_finite() {
        out.push_str(&format!("{value}"));
    } else {
        out.push_str("NaN");
    }
    if let Some(t) = timestamp_ms {
        out.push(' ');
        out.push_str(&t.to_string());
    }
    out.push('\n');
}

/// Renders a run report in the Prometheus text exposition format.
///
/// Always emitted: `dlz_ops_total` (per op kind), `dlz_mops`,
/// `dlz_elapsed_seconds`. When the report carries telemetry, the
/// run-total contention counters (`dlz_contention_events_total`, one
/// sample per counter name) and the per-interval gauges
/// (`dlz_interval_ops`, `dlz_interval_contention_events`,
/// `dlz_adaptive_s`, `dlz_envelope_factor`) follow, timestamped in
/// milliseconds since run start.
pub fn write_prometheus(report: &RunReport) -> String {
    let mut out = String::new();
    let base = base_labels(report);
    let c = &report.counts;

    head(
        &mut out,
        "dlz_ops_total",
        "counter",
        "Operations over the whole run, by kind.",
    );
    for (kind, v) in [
        ("updates", c.updates),
        ("removes", c.removes),
        ("removes_empty", c.removes_empty),
        ("reads", c.reads),
        ("prefill", c.prefill),
    ] {
        sample(
            &mut out,
            "dlz_ops_total",
            &base,
            &[("kind", kind)],
            v as f64,
            None,
        );
    }
    head(
        &mut out,
        "dlz_mops",
        "gauge",
        "Throughput, million completed operations per second.",
    );
    sample(&mut out, "dlz_mops", &base, &[], report.mops(), None);
    head(
        &mut out,
        "dlz_elapsed_seconds",
        "gauge",
        "Measured wall-clock span of the run.",
    );
    sample(
        &mut out,
        "dlz_elapsed_seconds",
        &base,
        &[],
        report.elapsed.as_secs_f64(),
        None,
    );

    let Some(t) = &report.telemetry else {
        return out;
    };

    let total = t.total_contention();
    head(
        &mut out,
        "dlz_contention_events_total",
        "counter",
        "Hot-path contention events over the whole run, by counter.",
    );
    for (name, v) in total.fields() {
        if name == "adaptive_s" || name == "drain_len" {
            continue; // gauges, not event counts
        }
        sample(
            &mut out,
            "dlz_contention_events_total",
            &base,
            &[("counter", name)],
            v as f64,
            None,
        );
    }

    head(
        &mut out,
        "dlz_interval_ops",
        "gauge",
        "Per-interval operations by kind; timestamp is ms since run start.",
    );
    for s in &t.intervals {
        for (kind, v) in [
            ("updates", s.counts.updates),
            ("removes", s.counts.removes),
            ("removes_empty", s.counts.removes_empty),
            ("reads", s.counts.reads),
        ] {
            sample(
                &mut out,
                "dlz_interval_ops",
                &base,
                &[("kind", kind)],
                v as f64,
                Some(s.end_ms),
            );
        }
    }
    head(
        &mut out,
        "dlz_interval_contention_events",
        "gauge",
        "Per-interval contention events by counter; timestamp is ms since run start.",
    );
    for s in &t.intervals {
        for (name, v) in s.contention.fields() {
            if name == "adaptive_s" || name == "drain_len" {
                continue;
            }
            sample(
                &mut out,
                "dlz_interval_contention_events",
                &base,
                &[("counter", name)],
                v as f64,
                Some(s.end_ms),
            );
        }
    }
    head(
        &mut out,
        "dlz_adaptive_s",
        "gauge",
        "Adaptive-stickiness camp width observed at each interval boundary.",
    );
    for s in &t.intervals {
        sample(
            &mut out,
            "dlz_adaptive_s",
            &base,
            &[],
            s.contention.adaptive_s as f64,
            Some(s.end_ms),
        );
    }
    head(
        &mut out,
        "dlz_drain_len",
        "gauge",
        "Longest claimed drain batch observed at each interval boundary (lock-free substrate).",
    );
    for s in &t.intervals {
        sample(
            &mut out,
            "dlz_drain_len",
            &base,
            &[],
            s.contention.drain_len as f64,
            Some(s.end_ms),
        );
    }
    head(
        &mut out,
        "dlz_envelope_factor",
        "gauge",
        "Policy envelope factor observed at each interval boundary.",
    );
    for s in &t.intervals {
        sample(
            &mut out,
            "dlz_envelope_factor",
            &base,
            &[],
            s.envelope_factor,
            Some(s.end_ms),
        );
    }
    out
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name.
    pub name: String,
    /// Labels in emission order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
    /// Optional timestamp (ms since run start, per this module's
    /// convention).
    pub timestamp_ms: Option<i64>,
}

impl PromSample {
    /// Looks up a label value by name.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

fn is_name_char(c: char, first: bool) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':' || (!first && c.is_ascii_digit())
}

/// Strictly parses text in the Prometheus exposition format, as
/// [`write_prometheus`] emits it. Every sample's metric must have been
/// declared by a preceding `# TYPE` line; malformed lines, undeclared
/// metrics, bad escapes and duplicate label names are errors.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut declared: Vec<String> = Vec::new();
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (verb, body) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {n}: bare comment verb"))?;
            match verb {
                "HELP" => {
                    body.split_once(' ')
                        .ok_or_else(|| format!("line {n}: HELP without text"))?;
                }
                "TYPE" => {
                    let (name, kind) = body
                        .split_once(' ')
                        .ok_or_else(|| format!("line {n}: TYPE without kind"))?;
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {n}: unknown metric type '{kind}'"));
                    }
                    declared.push(name.to_string());
                }
                v => return Err(format!("line {n}: unknown comment verb '{v}'")),
            }
            continue;
        }
        samples.push(parse_sample(line, n, &declared)?);
    }
    Ok(samples)
}

fn parse_sample(line: &str, n: usize, declared: &[String]) -> Result<PromSample, String> {
    let mut chars = line.char_indices().peekable();
    let mut name_end = 0;
    let mut first = true;
    while let Some(&(i, c)) = chars.peek() {
        if !is_name_char(c, first) {
            break;
        }
        first = false;
        name_end = i + c.len_utf8();
        chars.next();
    }
    let name = &line[..name_end];
    if name.is_empty() {
        return Err(format!("line {n}: no metric name"));
    }
    if !declared.iter().any(|d| d == name) {
        return Err(format!("line {n}: metric '{name}' has no TYPE declaration"));
    }
    let mut labels = Vec::new();
    let mut rest = &line[name_end..];
    if let Some(after_brace) = rest.strip_prefix('{') {
        let close = find_label_block_end(after_brace)
            .ok_or_else(|| format!("line {n}: unterminated label block"))?;
        parse_labels(&after_brace[..close], n, &mut labels)?;
        rest = &after_brace[close + 1..];
    }
    let rest = rest
        .strip_prefix(' ')
        .ok_or_else(|| format!("line {n}: expected space before value"))?;
    let mut parts = rest.split(' ');
    let value_str = parts
        .next()
        .filter(|s| !s.is_empty())
        .ok_or_else(|| format!("line {n}: missing value"))?;
    let value: f64 = value_str
        .parse()
        .map_err(|_| format!("line {n}: bad value '{value_str}'"))?;
    let timestamp_ms = match parts.next() {
        None => None,
        Some(ts) => Some(
            ts.parse::<i64>()
                .map_err(|_| format!("line {n}: bad timestamp '{ts}'"))?,
        ),
    };
    if parts.next().is_some() {
        return Err(format!("line {n}: trailing tokens after timestamp"));
    }
    Ok(PromSample {
        name: name.to_string(),
        labels,
        value,
        timestamp_ms,
    })
}

/// Index of the `}` closing the label block (respecting quoted,
/// escaped label values), in a str starting just past the `{`.
fn find_label_block_end(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_labels(block: &str, n: usize, labels: &mut Vec<(String, String)>) -> Result<(), String> {
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {n}: label without '='"))?;
        let key = &rest[..eq];
        if key.is_empty()
            || !key
                .chars()
                .enumerate()
                .all(|(i, c)| is_name_char(c, i == 0) && c != ':')
        {
            return Err(format!("line {n}: bad label name '{key}'"));
        }
        if labels.iter().any(|(k, _)| k == key) {
            return Err(format!("line {n}: duplicate label '{key}'"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("line {n}: label value must be quoted"))?;
        let mut value = String::new();
        let mut consumed = None;
        let mut escaped = false;
        for (i, c) in rest.char_indices() {
            if escaped {
                match c {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    c => return Err(format!("line {n}: bad escape '\\{c}'")),
                }
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                c => value.push(c),
            }
        }
        let consumed = consumed.ok_or_else(|| format!("line {n}: unterminated label value"))?;
        labels.push((key.to_string(), value));
        rest = &rest[consumed..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
            if rest.is_empty() {
                return Err(format!("line {n}: trailing comma in labels"));
            }
        } else if !rest.is_empty() {
            return Err(format!("line {n}: junk after label value"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{IntervalSnapshot, TelemetrySeries};
    use crate::report::skeleton;
    use crate::scenario::{Family, Scenario};

    fn telemetry_report() -> RunReport {
        let s = Scenario::builder("prom-test", Family::Queue).build();
        let mut r = skeleton(&s, "multiqueue-heap(m=8,strict)".into());
        r.elapsed = std::time::Duration::from_millis(300);
        r.counts.updates = 120;
        r.counts.removes = 80;
        r.counts.prefill = 40;
        r.cell = Some("prom-test/t=4".into());
        r.grid = vec![("t".into(), "4".into())];
        let mut series = TelemetrySeries::new(100);
        for (i, (ups, fails, s_now)) in [(60u64, 5u64, 2u64), (60, 9, 8)].iter().enumerate() {
            let mut snap = IntervalSnapshot {
                index: i as u64,
                end_ms: (i as u64 + 1) * 100,
                envelope_factor: *s_now as f64,
                ..IntervalSnapshot::default()
            };
            snap.counts.updates = *ups;
            snap.counts.removes = 40;
            snap.contention.try_lock_failures = *fails;
            snap.contention.adaptive_s = *s_now;
            series.merge_worker(&[snap]);
        }
        r.telemetry = Some(series);
        r
    }

    #[test]
    fn emitter_round_trips_through_strict_parser() {
        let r = telemetry_report();
        let text = write_prometheus(&r);
        let samples = parse_prometheus(&text).expect("strict parse");
        // Run totals present and labeled.
        let updates = samples
            .iter()
            .find(|s| s.name == "dlz_ops_total" && s.label("kind") == Some("updates"))
            .expect("updates total");
        assert_eq!(updates.value, 120.0);
        assert_eq!(updates.label("scenario"), Some("prom-test"));
        assert_eq!(updates.label("cell"), Some("prom-test/t=4"));
        assert_eq!(updates.label("axis_t"), Some("4"));
        assert_eq!(updates.timestamp_ms, None);
        // Interval series: timestamped, and per-interval updates sum to
        // the run total.
        let interval_updates: Vec<&PromSample> = samples
            .iter()
            .filter(|s| s.name == "dlz_interval_ops" && s.label("kind") == Some("updates"))
            .collect();
        assert_eq!(interval_updates.len(), 2);
        assert_eq!(
            interval_updates.iter().map(|s| s.value).sum::<f64>(),
            updates.value
        );
        assert_eq!(interval_updates[0].timestamp_ms, Some(100));
        assert_eq!(interval_updates[1].timestamp_ms, Some(200));
        // The adaptive trajectory is visible and nonconstant.
        let s_vals: Vec<f64> = samples
            .iter()
            .filter(|s| s.name == "dlz_adaptive_s")
            .map(|s| s.value)
            .collect();
        assert_eq!(s_vals, vec![2.0, 8.0]);
        // Total contention aggregates the intervals.
        let fails = samples
            .iter()
            .find(|s| {
                s.name == "dlz_contention_events_total"
                    && s.label("counter") == Some("try_lock_failures")
            })
            .expect("try-lock totals");
        assert_eq!(fails.value, 14.0);
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let mut r = telemetry_report();
        r.backend = "weird\"name\\with\nnewline".into();
        let text = write_prometheus(&r);
        let samples = parse_prometheus(&text).expect("parse");
        assert_eq!(
            samples[0].label("backend"),
            Some("weird\"name\\with\nnewline")
        );
    }

    #[test]
    fn reports_without_telemetry_still_expose_totals() {
        let s = Scenario::builder("plain", Family::Counter).build();
        let mut r = skeleton(&s, "exact".into());
        r.counts.updates = 7;
        r.elapsed = std::time::Duration::from_millis(10);
        let text = write_prometheus(&r);
        assert!(!text.contains("dlz_interval_ops"));
        let samples = parse_prometheus(&text).expect("parse");
        assert!(samples.iter().any(|x| x.name == "dlz_ops_total"));
        assert!(samples.iter().all(|x| x.timestamp_ms.is_none()));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "dlz_x 1",                                        // no TYPE declaration
            "# TYPE dlz_x counter\ndlz_x{a=\"1\" 2",          // unterminated labels
            "# TYPE dlz_x counter\ndlz_x{a=\"1\",a=\"2\"} 3", // duplicate label
            "# TYPE dlz_x widget\ndlz_x 1",                   // unknown type
            "# TYPE dlz_x counter\ndlz_x one",                // non-numeric value
            "# TYPE dlz_x counter\ndlz_x 1 2 3",              // trailing tokens
            "# TYPE dlz_x counter\ndlz_x{a=\"\\q\"} 1",       // bad escape
        ] {
            assert!(parse_prometheus(bad).is_err(), "accepted: {bad}");
        }
    }
}
