//! Key/priority/weight distributions and arrival processes.
//!
//! Scenarios describe *what* is drawn ([`Dist`]) and *when* operations
//! are issued ([`Arrival`]) declaratively; [`Sampler`] turns a
//! distribution into per-worker sampling state. All sampling is
//! deterministic given the worker's seed.

use std::time::Duration;

use dlz_core::rng::Rng64;

/// A declarative value distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Always the same value.
    Fixed(u64),
    /// Uniform over `0..n`.
    Uniform {
        /// Exclusive upper bound (must be ≥ 1).
        n: u64,
    },
    /// Zipfian over `0..n` with skew `theta ∈ (0, 1)`: key 0 is hottest.
    ///
    /// Uses the closed-form approximation of Gray et al. (*Quickly
    /// Generating Billion-Record Synthetic Databases*, SIGMOD '94) — the
    /// same generator YCSB popularized — with the ζ constants
    /// precomputed once at scenario setup.
    Zipf {
        /// Exclusive upper bound (must be ≥ 2).
        n: u64,
        /// Skew exponent in `(0, 1)`; 0.99 is the YCSB default.
        theta: f64,
    },
    /// Per-stream monotone sequence `w, w + T, w + 2T, …` where `w` is
    /// the stream (worker) id and `T` the stream count: globally dense,
    /// unique, and roughly insertion-ordered — the "priorities are
    /// timestamps" regime of the paper's queue semantics. (The engine
    /// reserves one extra stream for its prefill worker, so prefilled
    /// priorities never collide with measured ones.)
    Monotonic,
}

/// Per-worker sampling state for a [`Dist`].
#[derive(Debug, Clone)]
pub enum Sampler {
    /// See [`Dist::Fixed`].
    Fixed(u64),
    /// See [`Dist::Uniform`].
    Uniform {
        /// Exclusive upper bound.
        n: u64,
    },
    /// See [`Dist::Zipf`] — precomputed constants.
    Zipf {
        /// Exclusive upper bound.
        n: u64,
        /// Skew exponent.
        theta: f64,
        /// `1 / (1 - theta)`.
        alpha: f64,
        /// `ζ(n, theta)`.
        zetan: f64,
        /// Gray et al.'s η constant.
        eta: f64,
    },
    /// See [`Dist::Monotonic`] — next value and stride.
    Monotonic {
        /// Next value to emit.
        next: u64,
        /// Increment between emissions (the worker count).
        stride: u64,
    },
}

fn zeta(n: u64, theta: f64) -> f64 {
    // O(n) once per scenario; fine up to tens of millions of keys.
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl Dist {
    /// Short human-readable label used in sweep-cell names and grid
    /// coordinates (e.g. `uniform(65536)`, `zipf(16384,0.9)`).
    pub fn label(&self) -> String {
        match self {
            Dist::Fixed(v) => format!("fixed({v})"),
            Dist::Uniform { n } => format!("uniform({n})"),
            Dist::Zipf { n, theta } => format!("zipf({n},{theta})"),
            Dist::Monotonic => "monotonic".to_string(),
        }
    }

    /// Builds the sampler for worker `worker` of `threads`.
    ///
    /// # Panics
    /// On out-of-range parameters (`n == 0`, `theta ∉ (0, 1)`).
    pub fn sampler(&self, worker: usize, threads: usize) -> Sampler {
        match *self {
            Dist::Fixed(v) => Sampler::Fixed(v),
            Dist::Uniform { n } => {
                assert!(n >= 1, "Uniform needs n >= 1");
                Sampler::Uniform { n }
            }
            Dist::Zipf { n, theta } => {
                assert!(n >= 2, "Zipf needs n >= 2");
                assert!(
                    theta > 0.0 && theta < 1.0,
                    "Zipf skew must lie in (0, 1), got {theta}"
                );
                let zetan = zeta(n, theta);
                let zeta2 = zeta(2, theta);
                let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
                Sampler::Zipf {
                    n,
                    theta,
                    alpha: 1.0 / (1.0 - theta),
                    zetan,
                    eta,
                }
            }
            Dist::Monotonic => Sampler::Monotonic {
                next: worker as u64,
                stride: (threads.max(1)) as u64,
            },
        }
    }
}

impl Sampler {
    /// Draws the next value.
    #[inline]
    pub fn draw(&mut self, rng: &mut impl Rng64) -> u64 {
        match self {
            Sampler::Fixed(v) => *v,
            Sampler::Uniform { n } => rng.bounded(*n),
            Sampler::Zipf {
                n,
                theta,
                alpha,
                zetan,
                eta,
            } => {
                let u = rng.uniform_f64();
                let uz = u * *zetan;
                if uz < 1.0 {
                    0
                } else if uz < 1.0 + 0.5f64.powf(*theta) {
                    1
                } else {
                    let v = (*n as f64 * (*eta * u - *eta + 1.0).powf(*alpha)) as u64;
                    v.min(*n - 1)
                }
            }
            Sampler::Monotonic { next, stride } => {
                let v = *next;
                *next += *stride;
                v
            }
        }
    }
}

/// When operations are issued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Closed loop: issue the next operation as soon as the previous one
    /// completes. Measures peak structure throughput.
    Closed,
    /// Open loop: Poisson arrivals at the given per-worker rate;
    /// latency is measured from the *scheduled* arrival, so queueing
    /// delay (coordinated omission) is captured, not hidden.
    Open {
        /// Mean operations per second issued by each worker.
        rate_per_worker: f64,
    },
    /// Bursts of back-to-back operations separated by idle pauses —
    /// the stampede pattern of the paper's adversarial schedules.
    Bursty {
        /// Operations per burst.
        burst: u32,
        /// Idle time between bursts.
        pause: Duration,
    },
}

impl Arrival {
    /// Short human-readable label used in sweep-cell names and grid
    /// coordinates (e.g. `closed`, `open(50000/s)`, `bursty(256,2ms)`).
    pub fn label(&self) -> String {
        match self {
            Arrival::Closed => "closed".to_string(),
            Arrival::Open { rate_per_worker } => format!("open({rate_per_worker}/s)"),
            Arrival::Bursty { burst, pause } => format!("bursty({burst},{pause:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlz_core::rng::Xoshiro256;

    #[test]
    fn uniform_covers_range() {
        let mut s = Dist::Uniform { n: 8 }.sampler(0, 1);
        let mut rng = Xoshiro256::new(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = s.draw(&mut rng);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn fixed_is_constant() {
        let mut s = Dist::Fixed(7).sampler(3, 4);
        let mut rng = Xoshiro256::new(2);
        for _ in 0..10 {
            assert_eq!(s.draw(&mut rng), 7);
        }
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let n = 1000u64;
        let mut s = Dist::Zipf { n, theta: 0.99 }.sampler(0, 1);
        let mut rng = Xoshiro256::new(3);
        let mut head = 0u64;
        let draws = 20_000;
        for _ in 0..draws {
            let v = s.draw(&mut rng);
            assert!(v < n);
            if v < 10 {
                head += 1;
            }
        }
        // Under theta=0.99 the top-10 keys carry well over a third of
        // the mass; uniform would give 1%.
        assert!(
            head as f64 / draws as f64 > 0.3,
            "zipf head mass too small: {head}/{draws}"
        );
    }

    #[test]
    fn monotonic_interleaves_workers_densely() {
        let mut a = Dist::Monotonic.sampler(0, 2);
        let mut b = Dist::Monotonic.sampler(1, 2);
        let mut rng = Xoshiro256::new(4);
        let mut all: Vec<u64> = (0..5)
            .flat_map(|_| [a.draw(&mut rng), b.draw(&mut rng)])
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_deterministic_per_seed() {
        let mut s1 = Dist::Zipf { n: 100, theta: 0.8 }.sampler(0, 1);
        let mut s2 = Dist::Zipf { n: 100, theta: 0.8 }.sampler(0, 1);
        let mut r1 = Xoshiro256::new(9);
        let mut r2 = Xoshiro256::new(9);
        for _ in 0..100 {
            assert_eq!(s1.draw(&mut r1), s2.draw(&mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "Zipf skew")]
    fn zipf_rejects_bad_theta() {
        let _ = Dist::Zipf { n: 10, theta: 1.5 }.sampler(0, 1);
    }
}
