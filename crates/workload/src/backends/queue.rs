//! Queue-family backends: the MultiQueue (any sequential substrate,
//! both delete modes, any choice policy) and every linearizable
//! `dlz-pq` queue.

use std::collections::VecDeque;
use std::sync::Mutex;

use dlz_core::spec::{
    check_distributional, Event, History, HistoryArtifact, PqOp, PqSpec, StampClock, ThreadLog,
};
use dlz_core::{
    AnyPolicy, ChoicePolicy, DeleteMode, MqHandle, MultiQueue, PolicyCfg, SubstrateCfg,
};
use dlz_pq::{
    BinaryHeap, CoarsePq, ConcurrentPq, LockedPq, PairingHeap, ParkingLotPq, SeqPriorityQueue,
    SkipListPq,
};

use crate::backend::{Backend, QualityReport, QualitySummary, Worker, WorkerCfg};
use crate::metrics::TelemetrySample;
use crate::op::{Op, OpCounts, OpKind};
use crate::scenario::Family;

/// Generous constant over the envelope scale, as the core tests use:
/// the reported rank bound is `RANK_BOUND_C · factor · m`. Public so
/// offline checkers (`histcheck`) reconstruct the *same* envelope from
/// an artifact's `envelope_factor` and queue count.
pub const RANK_BOUND_C: f64 = 30.0;

/// Shared quality state of the queue backends.
#[derive(Debug, Default)]
struct QueueQuality {
    /// Stamped logs (history mode), replayed through the checker.
    logs: Mutex<Vec<ThreadLog<PqOp>>>,
    /// Cheap online samples: `removed_priority - min_hint` at dequeue
    /// time — a priority-space proxy for dequeue rank, exact-ish when
    /// priorities are dense and monotone.
    proxies: Mutex<Vec<f64>>,
    /// Widest policy envelope factor any worker observed this run
    /// (0 = no worker reported; fall back to the a-priori factor).
    factor: Mutex<f64>,
    /// The last run's history, packaged for export. Stashed by
    /// `quality()` (which replays it), drained by
    /// `take_history_artifact()`.
    artifact: Mutex<Option<HistoryArtifact>>,
}

impl QueueQuality {
    fn note_factor(&self, f: f64) {
        let mut g = self.factor.lock().expect("factor");
        if f.is_finite() && f > *g {
            *g = f;
        }
    }
}

/// The paper's MultiQueue behind the [`Backend`] interface.
///
/// `Update` enqueues `(priority, priority)`; `Remove` dequeues; `Read`
/// peeks the published min hint. With `record_history` on, operations
/// run through the handle's stamped history mode and the recorded
/// history is replayed through the distributional-linearizability
/// checker (Definition 5.2), yielding the *exact* dequeue-rank cost
/// distribution of Theorem 7.1.
///
/// Every worker operates through its own [`MqHandle`], so the
/// scenario's `choice_policy` dimension (two-choice, d-choice, static
/// or adaptive stickiness) is per-worker state by construction; the
/// `batch` dimension buffers `k` ops per lock acquisition on top.
/// History mode stamps individual operations, so it honours the policy
/// but ignores batching. The quality report carries the policy's rank
/// envelope — `RANK_BOUND_C · factor · m`, where `factor` is the
/// widest [`envelope_factor`](dlz_core::ChoicePolicy::envelope_factor)
/// any worker observed (`s` for sticky policies, the observed max `s`
/// for adaptive ones).
#[derive(Debug)]
pub struct MultiQueueBackend<Q = BinaryHeap<u64, u64>>
where
    Q: SeqPriorityQueue<u64, u64> + Send,
{
    mq: MultiQueue<u64, Q>,
    batch: usize,
    label: String,
    clock: StampClock,
    quality: QueueQuality,
}

impl MultiQueueBackend<BinaryHeap<u64, u64>> {
    /// Binary-heap substrate (the default configuration: two-choice,
    /// unbatched).
    pub fn heap(m: usize, mode: DeleteMode) -> Self {
        Self::heap_policy(m, mode, PolicyCfg::TwoChoice, 1)
    }

    /// Binary-heap substrate with an explicit choice policy and batch
    /// size — the configurations the `mq-hotpath` scenarios measure.
    pub fn heap_policy(m: usize, mode: DeleteMode, policy: PolicyCfg, batch: usize) -> Self {
        Self::heap_full(m, mode, policy, batch, SubstrateCfg::Locked)
    }

    /// The fully-dimensioned binary-heap constructor: choice policy,
    /// batch size *and* per-queue substrate (packed lock, lock-free
    /// pending stack, or flat combining) — the axis the substrate
    /// head-to-heads sweep.
    pub fn heap_full(
        m: usize,
        mode: DeleteMode,
        policy: PolicyCfg,
        batch: usize,
        substrate: SubstrateCfg,
    ) -> Self {
        Self::with_queues_substrate(
            (0..m).map(|_| BinaryHeap::new()).collect(),
            mode,
            policy,
            batch,
            "heap",
            substrate,
        )
    }
}

impl MultiQueueBackend<PairingHeap<u64, u64>> {
    /// Pairing-heap substrate.
    pub fn pairing(m: usize, mode: DeleteMode) -> Self {
        Self::with_queues(
            (0..m).map(|_| PairingHeap::new()).collect(),
            mode,
            PolicyCfg::TwoChoice,
            1,
            "pairing",
        )
    }
}

impl MultiQueueBackend<SkipListPq<u64, u64>> {
    /// Skip-list substrate.
    pub fn skiplist(m: usize, mode: DeleteMode, seed: u64) -> Self {
        Self::with_queues(
            (0..m)
                .map(|i| SkipListPq::with_seed(seed ^ i as u64))
                .collect(),
            mode,
            PolicyCfg::TwoChoice,
            1,
            "skiplist",
        )
    }
}

impl<Q: SeqPriorityQueue<u64, u64> + Send> MultiQueueBackend<Q> {
    fn with_queues(
        queues: Vec<Q>,
        mode: DeleteMode,
        policy: PolicyCfg,
        batch: usize,
        seq: &str,
    ) -> Self {
        Self::with_queues_substrate(queues, mode, policy, batch, seq, SubstrateCfg::Locked)
    }

    fn with_queues_substrate(
        queues: Vec<Q>,
        mode: DeleteMode,
        policy: PolicyCfg,
        batch: usize,
        seq: &str,
        substrate: SubstrateCfg,
    ) -> Self {
        let m = queues.len();
        let batch = batch.max(1);
        let mode_tag = match mode {
            DeleteMode::Strict => "strict",
            DeleteMode::TryLock => "trylock",
        };
        let tuning = if !policy.is_default() || batch > 1 {
            format!(",{},b={batch}", policy.label())
        } else {
            String::new()
        };
        // The substrate tag appears only when it deviates from the
        // packed-lock default, so established labels stay unchanged.
        let sub_tag = if substrate.is_default() {
            String::new()
        } else {
            format!(",sub={}", substrate.label())
        };
        MultiQueueBackend {
            mq: MultiQueue::with_substrate(queues, mode, policy, substrate),
            batch,
            label: format!("multiqueue-{seq}(m={m},{mode_tag}{tuning}{sub_tag})"),
            clock: StampClock::new(),
            quality: QueueQuality::default(),
        }
    }

    /// The wrapped MultiQueue.
    pub fn multiqueue(&self) -> &MultiQueue<u64, Q> {
        &self.mq
    }

    /// The choice policy every worker handle is built from.
    pub fn policy(&self) -> PolicyCfg {
        self.mq.policy()
    }

    /// Operations buffered per lock acquisition (1 = unbatched).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The per-queue substrate the MultiQueue runs on.
    pub fn substrate(&self) -> SubstrateCfg {
        self.mq.substrate()
    }

    /// The rank envelope for a given factor: `RANK_BOUND_C · f · m`.
    fn rank_bound(&self, factor: f64) -> f64 {
        RANK_BOUND_C * factor * self.mq.num_queues() as f64
    }

    /// The factor the report uses: widest worker-observed factor when
    /// any worker reported one, else the policy's a-priori factor.
    fn report_factor(&self) -> f64 {
        let observed = std::mem::take(&mut *self.quality.factor.lock().expect("factor"));
        if observed > 0.0 {
            observed
        } else {
            self.mq.policy().envelope_factor()
        }
    }
}

impl<Q: SeqPriorityQueue<u64, u64> + Send> Backend for MultiQueueBackend<Q> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn family(&self) -> Family {
        Family::Queue
    }

    fn worker<'a>(&'a self, cfg: WorkerCfg) -> Box<dyn Worker + Send + 'a> {
        Box::new(MultiQueueWorker {
            backend: self,
            handle: self.mq.handle(cfg.seed),
            thread: cfg.id,
            log: cfg.record_history.then(|| ThreadLog::new(cfg.id)),
            quality_every: cfg.quality_every,
            removes_seen: 0,
            proxies: Vec::new(),
            batch: if cfg.record_history { 1 } else { self.batch },
            pending_inserts: Vec::new(),
            prefetched: VecDeque::new(),
            scratch: Vec::new(),
            refills_seen: 0,
            settled: false,
        })
    }

    fn residual(&self) -> u64 {
        self.mq.len() as u64
    }

    fn verify(&self, counts: &OpCounts) -> Result<(), String> {
        let residual = self.residual();
        let inserted = counts.inserted();
        if inserted == counts.removes + residual {
            Ok(())
        } else {
            Err(format!(
                "queue lost items: {inserted} inserted != {} removed + {residual} residual",
                counts.removes
            ))
        }
    }

    fn quality(&self) -> QualityReport {
        let logs = std::mem::take(&mut *self.quality.logs.lock().expect("logs"));
        let m = self.mq.num_queues() as f64;
        let scale = m * m.max(2.0).ln();
        // The policy's envelope: expected rank O(factor·m), with the
        // same generous constant the test suite uses for the
        // two-choice Theorem 7.1 checks.
        let factor = self.report_factor();
        let rank_bound = self.rank_bound(factor);
        if !logs.is_empty() {
            let history = History::from_logs(logs);
            let outcome = check_distributional(&PqSpec, &history);
            let costs: Vec<f64> = outcome
                .costs
                .samples()
                .iter()
                .copied()
                .filter(|c| c.is_finite())
                .collect();
            let summary = QualitySummary::from_samples(&costs);
            // Vacuous passes are failures: with no rank samples the
            // envelope verified nothing, so report it as not-within.
            let within =
                if summary.count > 0 && rank_bound.is_finite() && summary.mean <= rank_bound {
                    1.0
                } else {
                    0.0
                };
            let mut report = QualityReport::named("dequeue_rank")
                .with_summary(summary)
                .scalar("scale_m_ln_m", scale)
                .scalar("batch", self.batch as f64)
                .scalar(
                    "linearizable",
                    if outcome.is_linearizable() { 1.0 } else { 0.0 },
                )
                .scalar("history_ops", history.len() as f64);
            if factor.is_finite() {
                report = report
                    .scalar("policy_factor", factor)
                    .scalar("rank_bound_policy", rank_bound)
                    .scalar("within_policy_bound", within);
            }
            // Rank-proxy calibration: history workers also sample the
            // cheap priority-space proxy, so the checker-exact mean
            // dequeue rank calibrates it — the ratio lets non-history
            // runs interpret their proxy numbers.
            let proxies = std::mem::take(&mut *self.quality.proxies.lock().expect("proxies"));
            if outcome.is_linearizable() && !proxies.is_empty() {
                let proxy_mean = proxies.iter().sum::<f64>() / proxies.len() as f64;
                report = report.scalar("rank_proxy_mean", proxy_mean);
                // With nothing unmappable, costs align 1:1 with labels
                // in update order; average the dequeues only (inserts
                // always cost 0 and would dilute the rank).
                let (mut sum, mut n) = (0.0f64, 0u64);
                for (l, c) in history
                    .labels_in_update_order()
                    .iter()
                    .zip(outcome.costs.samples())
                {
                    if matches!(l, PqOp::DeleteMin { .. }) {
                        sum += *c;
                        n += 1;
                    }
                }
                if n > 0 && proxy_mean > 0.0 {
                    report = report.scalar("rank_proxy_calibration", (sum / n as f64) / proxy_mean);
                }
            }
            // Package the checked history for export: the policy label
            // and (observed) envelope factor travel with the events.
            *self.quality.artifact.lock().expect("artifact") = Some(HistoryArtifact::pq(
                history,
                self.mq.policy().label(),
                factor,
                self.mq.num_queues(),
            ));
            return report;
        }
        // Drained, not cloned: a backend reused across runs must report
        // per-run statistics (the history logs above use mem::take too).
        let proxies = std::mem::take(&mut *self.quality.proxies.lock().expect("proxies"));
        let mut report = QualityReport::named("dequeue_rank_proxy")
            .with_summary(QualitySummary::from_samples(&proxies))
            .scalar("scale_m_ln_m", scale)
            .scalar("batch", self.batch as f64);
        if factor.is_finite() {
            report = report
                .scalar("policy_factor", factor)
                .scalar("rank_bound_policy", rank_bound);
        }
        report
    }

    fn take_history_artifact(&self) -> Option<HistoryArtifact> {
        self.quality.artifact.lock().expect("artifact").take()
    }
}

struct MultiQueueWorker<'a, Q: SeqPriorityQueue<u64, u64> + Send> {
    backend: &'a MultiQueueBackend<Q>,
    /// The worker's operational surface: private RNG + policy instance.
    handle: MqHandle<'a, u64, Q, AnyPolicy>,
    thread: usize,
    log: Option<ThreadLog<PqOp>>,
    quality_every: u32,
    removes_seen: u32,
    proxies: Vec<f64>,
    /// Ops buffered per lock acquisition; forced to 1 in history mode,
    /// which stamps individual operations.
    batch: usize,
    /// Updates buffered until a full batch (flushed at `finish`).
    pending_inserts: Vec<(u64, u64)>,
    /// Entries taken by a batch dequeue, handed out one per `Remove`
    /// op; leftovers are re-inserted at `finish` so conservation holds.
    prefetched: VecDeque<(u64, u64)>,
    /// Reusable buffer for batch dequeues (no per-refill allocation).
    scratch: Vec<(u64, u64)>,
    /// Refill count, for the batched proxy-sampling cadence.
    refills_seen: u32,
    /// Guards [`Self::settle`] so the Drop-based salvage of a panicked
    /// worker and a normal `finish()` never run the flush twice.
    settled: bool,
}

impl<Q: SeqPriorityQueue<u64, u64> + Send> MultiQueueWorker<'_, Q> {
    fn flush_pending(&mut self) {
        if !self.pending_inserts.is_empty() {
            self.handle.insert_batch(self.pending_inserts.drain(..));
        }
    }

    /// Refills the prefetch buffer with one batch dequeue. Flushes our
    /// own buffered inserts first if the structure looks empty, so a
    /// closed-loop worker cannot starve itself.
    fn refill(&mut self, sample: bool) {
        let hint = if sample {
            self.backend.mq.min_hint()
        } else {
            u64::MAX
        };
        let mut tmp = std::mem::take(&mut self.scratch);
        tmp.clear();
        if self.handle.dequeue_batch(self.batch, &mut tmp) == 0 && !self.pending_inserts.is_empty()
        {
            self.flush_pending();
            self.handle.dequeue_batch(self.batch, &mut tmp);
        }
        if sample && hint != u64::MAX {
            if let Some((p, _)) = tmp.first() {
                self.proxies.push(p.saturating_sub(hint) as f64);
            }
        }
        self.prefetched.extend(tmp.drain(..));
        self.scratch = tmp;
    }
}

impl<Q: SeqPriorityQueue<u64, u64> + Send> Worker for MultiQueueWorker<'_, Q> {
    fn execute(&mut self, op: &Op) -> bool {
        let clock = &self.backend.clock;
        match op.kind {
            OpKind::Update => {
                if let Some(log) = &mut self.log {
                    let thread = self.thread;
                    let invoke = clock.stamp();
                    let update = self
                        .handle
                        .stamped(clock.as_atomic())
                        .insert(op.priority, op.priority);
                    let response = clock.stamp();
                    log.push(Event {
                        thread,
                        label: PqOp::Insert {
                            priority: op.priority,
                        },
                        invoke,
                        update,
                        response,
                    });
                } else if self.batch > 1 {
                    self.pending_inserts.push((op.priority, op.priority));
                    if self.pending_inserts.len() >= self.batch {
                        self.flush_pending();
                    }
                } else {
                    self.handle.insert(op.priority, op.priority);
                }
                true
            }
            OpKind::Remove => {
                if self.log.is_some() {
                    // History mode also samples the cheap rank proxy so
                    // the checker-exact ranks can calibrate it.
                    self.removes_seen += 1;
                    let sample = self.quality_every > 0
                        && self.removes_seen.is_multiple_of(self.quality_every);
                    let hint = if sample {
                        self.backend.mq.min_hint()
                    } else {
                        u64::MAX
                    };
                    let thread = self.thread;
                    let invoke = clock.stamp();
                    match self.handle.stamped(clock.as_atomic()).dequeue() {
                        Some((p, _, update)) => {
                            let response = clock.stamp();
                            if sample && hint != u64::MAX {
                                self.proxies.push(p.saturating_sub(hint) as f64);
                            }
                            if let Some(log) = &mut self.log {
                                log.push(Event {
                                    thread,
                                    label: PqOp::DeleteMin { removed: p },
                                    invoke,
                                    update,
                                    response,
                                });
                            }
                            true
                        }
                        None => false,
                    }
                } else if self.batch > 1 {
                    self.removes_seen += 1;
                    if self.prefetched.is_empty() {
                        // Sampling cadence is per refill (each refill
                        // covers `batch` removes), so batched runs
                        // still produce proxy observations.
                        self.refills_seen += 1;
                        let cadence = (self.quality_every / self.batch as u32).max(1);
                        let sample =
                            self.quality_every > 0 && self.refills_seen.is_multiple_of(cadence);
                        self.refill(sample);
                    }
                    self.prefetched.pop_front().is_some()
                } else {
                    self.removes_seen += 1;
                    let sample = self.quality_every > 0
                        && self.removes_seen.is_multiple_of(self.quality_every);
                    let hint = if sample {
                        self.backend.mq.min_hint()
                    } else {
                        u64::MAX
                    };
                    match self.handle.dequeue() {
                        Some((p, _)) => {
                            if sample && hint != u64::MAX {
                                self.proxies.push(p.saturating_sub(hint) as f64);
                            }
                            true
                        }
                        None => false,
                    }
                }
            }
            OpKind::Read => {
                std::hint::black_box(self.backend.mq.min_hint());
                true
            }
        }
    }

    fn telemetry_sample(&mut self) -> Option<TelemetrySample> {
        // Drains the handle's plain-u64 counters (which flushes the
        // policy's pending camp/adaptation events first) — the engine
        // calls this only at interval boundaries, so nothing here
        // touches the op hot path.
        let envelope_factor = self.handle.policy().envelope_factor();
        Some(TelemetrySample {
            contention: self.handle.take_contention(),
            envelope_factor: if envelope_factor.is_finite() {
                envelope_factor
            } else {
                0.0
            },
        })
    }

    fn finish(&mut self) {
        self.settle();
    }
}

impl<Q: SeqPriorityQueue<u64, u64> + Send> MultiQueueWorker<'_, Q> {
    /// Flush buffered updates, then return undelivered prefetched
    /// entries (already removed from the MultiQueue but never handed
    /// to an op) so the conservation law sees them as residual, and
    /// hand the history log / quality samples to the backend. Runs at
    /// most once — from `finish()` on clean exits, or from `Drop` when
    /// the engine's panic harness skipped `finish()`, so a panicked
    /// worker's partial history and buffered items are still salvaged.
    fn settle(&mut self) {
        if self.settled {
            return;
        }
        self.settled = true;
        self.flush_pending();
        if !self.prefetched.is_empty() {
            self.handle.insert_batch(self.prefetched.drain(..));
        }
        if let Some(log) = self.log.take() {
            self.backend.quality.logs.lock().expect("logs").push(log);
        }
        self.backend
            .quality
            .proxies
            .lock()
            .expect("proxies")
            .append(&mut self.proxies);
        // The policy's observed envelope (e.g. adaptive stickiness'
        // widest s) feeds the reported rank bound.
        self.backend
            .quality
            .note_factor(self.handle.policy().envelope_factor());
    }
}

impl<Q: SeqPriorityQueue<u64, u64> + Send> Drop for MultiQueueWorker<'_, Q> {
    fn drop(&mut self) {
        // The engine catches worker panics *before* dropping the
        // worker, so the salvage path runs outside any unwind. If we
        // are nevertheless dropped mid-unwind, stay passive: a panic
        // out of Drop would abort the process.
        if !std::thread::panicking() {
            self.settle();
        }
    }
}

/// Any linearizable [`ConcurrentPq`] behind the [`Backend`] interface —
/// [`CoarsePq`], [`LockedPq`], [`ParkingLotPq`] (and, via its trait
/// impl, the MultiQueue itself when thread-local randomness is fine).
#[derive(Debug)]
pub struct ConcurrentPqBackend<C: ConcurrentPq<u64>> {
    pq: C,
    label: String,
    exact: bool,
    quality: QueueQuality,
}

impl ConcurrentPqBackend<CoarsePq<u64>> {
    /// The single-global-lock exact baseline.
    pub fn coarse() -> Self {
        Self::new(CoarsePq::new(), "coarse-pq", true)
    }
}

impl ConcurrentPqBackend<LockedPq<u64, BinaryHeap<u64, u64>>> {
    /// One spinlocked binary heap (exact, hint-published).
    pub fn locked_heap() -> Self {
        Self::new(LockedPq::new(BinaryHeap::new()), "locked-heap", true)
    }
}

impl ConcurrentPqBackend<ParkingLotPq<u64, BinaryHeap<u64, u64>>> {
    /// One OS-mutex binary heap (exact, hint-published).
    pub fn parking_heap() -> Self {
        Self::new(ParkingLotPq::new(BinaryHeap::new()), "parking-heap", true)
    }
}

impl<C: ConcurrentPq<u64>> ConcurrentPqBackend<C> {
    /// Wraps an arbitrary concurrent priority queue.
    pub fn new(pq: C, label: &str, exact: bool) -> Self {
        ConcurrentPqBackend {
            pq,
            label: label.to_string(),
            exact,
            quality: QueueQuality::default(),
        }
    }
}

impl<C: ConcurrentPq<u64>> Backend for ConcurrentPqBackend<C> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn family(&self) -> Family {
        Family::Queue
    }

    fn worker<'a>(&'a self, cfg: WorkerCfg) -> Box<dyn Worker + Send + 'a> {
        Box::new(ConcurrentPqWorker {
            backend: self,
            quality_every: cfg.quality_every,
            removes_seen: 0,
            proxies: Vec::new(),
        })
    }

    fn residual(&self) -> u64 {
        self.pq.approx_len() as u64
    }

    fn verify(&self, counts: &OpCounts) -> Result<(), String> {
        let residual = self.residual();
        let inserted = counts.inserted();
        if inserted == counts.removes + residual {
            Ok(())
        } else {
            Err(format!(
                "queue lost items: {inserted} inserted != {} removed + {residual} residual",
                counts.removes
            ))
        }
    }

    fn quality(&self) -> QualityReport {
        let proxies = std::mem::take(&mut *self.quality.proxies.lock().expect("proxies"));
        QualityReport::named("dequeue_rank_proxy")
            .with_summary(QualitySummary::from_samples(&proxies))
            .scalar("exact_structure", if self.exact { 1.0 } else { 0.0 })
    }
}

struct ConcurrentPqWorker<'a, C: ConcurrentPq<u64>> {
    backend: &'a ConcurrentPqBackend<C>,
    quality_every: u32,
    removes_seen: u32,
    proxies: Vec<f64>,
}

impl<C: ConcurrentPq<u64>> Worker for ConcurrentPqWorker<'_, C> {
    fn execute(&mut self, op: &Op) -> bool {
        let pq = &self.backend.pq;
        match op.kind {
            OpKind::Update => {
                pq.insert(op.priority, op.priority);
                true
            }
            OpKind::Remove => {
                self.removes_seen += 1;
                let sample =
                    self.quality_every > 0 && self.removes_seen.is_multiple_of(self.quality_every);
                let hint = if sample { pq.min_hint() } else { u64::MAX };
                match pq.remove_min() {
                    Some((p, _)) => {
                        if sample && hint != u64::MAX {
                            self.proxies.push(p.saturating_sub(hint) as f64);
                        }
                        true
                    }
                    None => false,
                }
            }
            OpKind::Read => {
                std::hint::black_box(pq.min_hint());
                true
            }
        }
    }

    fn finish(&mut self) {
        self.backend
            .quality
            .proxies
            .lock()
            .expect("proxies")
            .append(&mut self.proxies);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(backend: &dyn Backend, n: u64, record_history: bool) -> OpCounts {
        let cfg = WorkerCfg {
            id: 0,
            threads: 1,
            seed: 7,
            record_history,
            quality_every: 4,
        };
        let mut counts = OpCounts::default();
        let mut w = backend.worker(cfg);
        for k in 0..n {
            let kind = if k % 2 == 0 {
                OpKind::Update
            } else {
                OpKind::Remove
            };
            let ok = w.execute(&Op {
                kind,
                key: k,
                priority: k,
                weight: 1,
            });
            match (kind, ok) {
                (OpKind::Update, _) => counts.updates += 1,
                (OpKind::Remove, true) => counts.removes += 1,
                (OpKind::Remove, false) => counts.removes_empty += 1,
                _ => {}
            }
        }
        w.finish();
        counts
    }

    #[test]
    fn multiqueue_backend_conserves_and_reports_proxy() {
        let b = MultiQueueBackend::heap(4, DeleteMode::Strict);
        let counts = drive(&b, 2_000, false);
        b.verify(&counts).expect("conservation");
        let q = b.quality();
        assert_eq!(q.metric, "dequeue_rank_proxy");
        assert_eq!(q.get("policy_factor"), Some(1.0));
        assert!(q.is_finite());
    }

    #[test]
    fn multiqueue_history_mode_yields_exact_ranks() {
        let b = MultiQueueBackend::heap(4, DeleteMode::Strict);
        let counts = drive(&b, 1_000, true);
        b.verify(&counts).expect("conservation");
        let q = b.quality();
        assert_eq!(q.metric, "dequeue_rank");
        assert_eq!(q.get("linearizable"), Some(1.0), "{q:?}");
        assert!(q.summary.expect("costs").count > 0);
        assert!(q.is_finite());
    }

    #[test]
    fn substrate_and_exact_backends_conserve() {
        let backends: Vec<Box<dyn Backend>> = vec![
            Box::new(MultiQueueBackend::pairing(4, DeleteMode::TryLock)),
            Box::new(MultiQueueBackend::skiplist(4, DeleteMode::Strict, 3)),
            Box::new(ConcurrentPqBackend::coarse()),
            Box::new(ConcurrentPqBackend::locked_heap()),
            Box::new(ConcurrentPqBackend::parking_heap()),
        ];
        for b in &backends {
            let counts = drive(b.as_ref(), 1_000, false);
            b.verify(&counts)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        }
    }

    #[test]
    fn policy_backend_conserves_with_sticky_and_batch() {
        for mode in [DeleteMode::Strict, DeleteMode::TryLock] {
            let b = MultiQueueBackend::heap_policy(8, mode, PolicyCfg::Sticky { ops: 8 }, 8);
            assert!(b.name().contains("sticky(s=8),b=8"), "{}", b.name());
            let counts = drive(&b, 3_000, false);
            b.verify(&counts)
                .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
            let q = b.quality();
            assert_eq!(q.metric, "dequeue_rank_proxy");
            assert_eq!(q.get("policy_factor"), Some(8.0));
            assert_eq!(q.get("batch"), Some(8.0));
            assert!(q.get("rank_bound_policy").unwrap_or(0.0) > 0.0);
        }
    }

    #[test]
    fn adaptive_backend_reports_observed_factor() {
        let b = MultiQueueBackend::heap_policy(
            8,
            DeleteMode::Strict,
            PolicyCfg::AdaptiveSticky { s_max: 8 },
            1,
        );
        assert!(b.name().contains("adaptive(s_max=8)"), "{}", b.name());
        let counts = drive(&b, 4_000, false);
        b.verify(&counts).expect("conservation");
        let q = b.quality();
        let f = q.get("policy_factor").expect("factor");
        assert!((1.0..=8.0).contains(&f), "observed factor {f} out of range");
        assert!(q.get("rank_bound_policy").unwrap_or(0.0) >= RANK_BOUND_C * 8.0);
    }

    #[test]
    fn policy_backend_history_mode_stays_within_bound() {
        // History mode stamps individual ops (batching disabled) but
        // honours the policy; the checker-exact ranks must sit inside
        // the reported envelope.
        let b =
            MultiQueueBackend::heap_policy(4, DeleteMode::Strict, PolicyCfg::Sticky { ops: 8 }, 8);
        let counts = drive(&b, 2_000, true);
        b.verify(&counts).expect("conservation");
        let q = b.quality();
        assert_eq!(q.metric, "dequeue_rank");
        assert_eq!(q.get("linearizable"), Some(1.0), "{q:?}");
        assert_eq!(q.get("within_policy_bound"), Some(1.0), "{q:?}");
        let s = q.summary.expect("costs");
        assert!(s.count > 0);
        assert!(s.mean <= q.get("rank_bound_policy").expect("bound"));
    }

    #[test]
    fn substrate_backends_conserve_and_tag_labels() {
        for sub in SubstrateCfg::all() {
            for mode in [DeleteMode::Strict, DeleteMode::TryLock] {
                let b = MultiQueueBackend::heap_full(4, mode, PolicyCfg::TwoChoice, 1, sub);
                assert_eq!(b.substrate(), sub);
                if sub.is_default() {
                    assert!(!b.name().contains("sub="), "{}", b.name());
                } else {
                    assert!(
                        b.name().contains(&format!("sub={}", sub.label())),
                        "{}",
                        b.name()
                    );
                }
                let counts = drive(&b, 2_000, false);
                b.verify(&counts)
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            }
        }
    }

    #[test]
    fn substrate_history_mode_replays_linearizable() {
        for sub in [SubstrateCfg::LockFree, SubstrateCfg::Combining] {
            let b =
                MultiQueueBackend::heap_full(4, DeleteMode::Strict, PolicyCfg::TwoChoice, 1, sub);
            let counts = drive(&b, 1_000, true);
            b.verify(&counts).expect("conservation");
            let q = b.quality();
            assert_eq!(q.metric, "dequeue_rank");
            assert_eq!(q.get("linearizable"), Some(1.0), "{sub}: {q:?}");
            assert!(q.summary.expect("costs").count > 0);
        }
    }

    #[test]
    fn untuned_label_is_unchanged() {
        let b = MultiQueueBackend::heap(4, DeleteMode::Strict);
        assert_eq!(b.name(), "multiqueue-heap(m=4,strict)");
        assert_eq!(b.batch(), 1);
        assert_eq!(b.policy(), PolicyCfg::TwoChoice);
    }

    #[test]
    fn exact_pq_proxy_is_zero_sequentially() {
        let b = ConcurrentPqBackend::coarse();
        let _ = drive(&b, 2_000, false);
        let q = b.quality();
        let s = q.summary.expect("sampled");
        assert_eq!(s.max, 0.0, "exact queue dequeues the true min: {s:?}");
    }
}
