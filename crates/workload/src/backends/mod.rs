//! Backend adapters: every structure family in the workspace behind the
//! unified [`Backend`](crate::backend::Backend) interface.

pub mod counter;
pub mod queue;
pub mod stm;

pub use counter::{AnyCounter, CounterBackend};
pub use queue::{ConcurrentPqBackend, MultiQueueBackend};
pub use stm::StmBackend;

use dlz_core::DeleteMode;

use crate::backend::Backend;
use crate::scenario::{Family, Scenario};

/// The default backend roster for a scenario: every structure of the
/// scenario's family, sized for its thread count. This is what the
/// `scenarios` binary runs and what the integration tests sweep.
pub fn roster(scenario: &Scenario) -> Vec<Box<dyn Backend>> {
    let n = scenario.threads;
    match scenario.family {
        Family::Counter => vec![
            Box::new(CounterBackend::exact()),
            Box::new(CounterBackend::sharded(n.max(2))),
            Box::new(CounterBackend::multicounter((4 * n).max(8))),
            Box::new(CounterBackend::dchoice((4 * n).max(8), 4, scenario.seed)),
        ],
        Family::Queue => {
            let m = (4 * n).max(8);
            let mut backends: Vec<Box<dyn Backend>> = vec![
                Box::new(MultiQueueBackend::heap(m, DeleteMode::Strict)),
                Box::new(MultiQueueBackend::skiplist(
                    m,
                    DeleteMode::TryLock,
                    scenario.seed,
                )),
                Box::new(ConcurrentPqBackend::coarse()),
                Box::new(ConcurrentPqBackend::locked_heap()),
            ];
            // Scenarios with active sticky/batch dimensions also run
            // the tuned hot-path configurations, so one report carries
            // the before/after comparison.
            if scenario.sticky_ops > 1 || scenario.batch > 1 {
                backends.push(Box::new(MultiQueueBackend::heap_tuned(
                    m,
                    DeleteMode::Strict,
                    scenario.sticky_ops,
                    scenario.batch,
                )));
                backends.push(Box::new(MultiQueueBackend::heap_tuned(
                    m,
                    DeleteMode::TryLock,
                    scenario.sticky_ops,
                    scenario.batch,
                )));
            }
            backends
        }
        Family::Stm => {
            let slots = 1 << 16;
            vec![
                Box::new(StmBackend::exact(slots)),
                Box::new(StmBackend::relaxed(slots, n)),
            ]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_covers_every_family_with_two_plus_backends() {
        for s in Scenario::catalog() {
            let r = roster(&s);
            assert!(r.len() >= 2, "{}: roster too small", s.name);
            for b in &r {
                assert_eq!(b.family(), s.family, "{}", b.name());
            }
        }
    }
}
