//! Backend adapters: every structure family in the workspace behind the
//! unified [`Backend`] interface.

pub mod counter;
pub mod queue;
pub mod stm;

pub use counter::{AnyCounter, CounterBackend};
pub use queue::{ConcurrentPqBackend, MultiQueueBackend};
pub use stm::StmBackend;

use dlz_core::DeleteMode;

use crate::backend::Backend;
use crate::scenario::{Family, Scenario};

/// `true` if the scenario asks for a tuned MultiQueue configuration
/// (a non-default choice policy or batching).
fn tuned(scenario: &Scenario) -> bool {
    !scenario.choice_policy.is_default() || scenario.batch > 1
}

/// The default backend roster for a scenario: every structure of the
/// scenario's family, sized for its thread count. This is what the
/// `scenarios` binary runs and what the integration tests sweep.
pub fn roster(scenario: &Scenario) -> Vec<Box<dyn Backend>> {
    let n = scenario.threads;
    match scenario.family {
        Family::Counter => vec![
            Box::new(CounterBackend::exact()),
            Box::new(CounterBackend::sharded(n.max(2))),
            Box::new(CounterBackend::multicounter((4 * n).max(8))),
            Box::new(CounterBackend::dchoice((4 * n).max(8), 4, scenario.seed)),
        ],
        Family::Queue => {
            let m = (4 * n).max(8);
            let mut backends: Vec<Box<dyn Backend>> = vec![
                Box::new(MultiQueueBackend::heap(m, DeleteMode::Strict)),
                Box::new(MultiQueueBackend::skiplist(
                    m,
                    DeleteMode::TryLock,
                    scenario.seed,
                )),
                Box::new(ConcurrentPqBackend::coarse()),
                Box::new(ConcurrentPqBackend::locked_heap()),
            ];
            // Scenarios with an active policy/batch dimension also run
            // the tuned hot-path configurations, so one report carries
            // the before/after comparison.
            if tuned(scenario) {
                backends.push(Box::new(MultiQueueBackend::heap_policy(
                    m,
                    DeleteMode::Strict,
                    scenario.choice_policy,
                    scenario.batch,
                )));
                backends.push(Box::new(MultiQueueBackend::heap_policy(
                    m,
                    DeleteMode::TryLock,
                    scenario.choice_policy,
                    scenario.batch,
                )));
            }
            backends
        }
        Family::Stm => {
            let slots = 1 << 16;
            vec![
                Box::new(StmBackend::exact(slots)),
                Box::new(StmBackend::relaxed(slots, n)),
            ]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_covers_every_family_with_two_plus_backends() {
        for s in Scenario::catalog() {
            let r = roster(&s);
            assert!(r.len() >= 2, "{}: roster too small", s.name);
            for b in &r {
                assert_eq!(b.family(), s.family, "{}", b.name());
            }
        }
    }
}
