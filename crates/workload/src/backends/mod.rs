//! Backend adapters: every structure family in the workspace behind the
//! unified [`Backend`] interface.

pub mod counter;
pub mod fifo;
pub mod queue;
pub mod stm;

pub use counter::{AnyCounter, CounterBackend};
pub use fifo::{LockedFifoBackend, RelaxedFifoBackend};
pub use queue::{ConcurrentPqBackend, MultiQueueBackend};
pub use stm::StmBackend;

use dlz_core::DeleteMode;

use crate::backend::Backend;
use crate::scenario::{Family, Scenario};

/// `true` if the scenario asks for a tuned MultiQueue configuration
/// (a non-default choice policy or batching).
fn tuned(scenario: &Scenario) -> bool {
    !scenario.choice_policy.is_default() || scenario.batch > 1
}

/// The default backend roster for a scenario: every structure of the
/// scenario's family, sized for its thread count. This is what the
/// `scenarios` binary runs and what the integration tests sweep.
pub fn roster(scenario: &Scenario) -> Vec<Box<dyn Backend>> {
    let n = scenario.threads;
    match scenario.family {
        Family::Counter => vec![
            Box::new(CounterBackend::exact()),
            Box::new(CounterBackend::sharded(n.max(2))),
            Box::new(CounterBackend::multicounter((4 * n).max(8))),
            Box::new(CounterBackend::dchoice((4 * n).max(8), 4, scenario.seed)),
        ],
        Family::Queue => {
            let m = (4 * n).max(8);
            let mut backends: Vec<Box<dyn Backend>> = vec![
                Box::new(MultiQueueBackend::heap(m, DeleteMode::Strict)),
                Box::new(MultiQueueBackend::skiplist(
                    m,
                    DeleteMode::TryLock,
                    scenario.seed,
                )),
                Box::new(ConcurrentPqBackend::coarse()),
                Box::new(ConcurrentPqBackend::locked_heap()),
            ];
            // Scenarios with an active policy/batch dimension also run
            // the tuned hot-path configurations, so one report carries
            // the before/after comparison.
            if tuned(scenario) {
                backends.push(Box::new(MultiQueueBackend::heap_full(
                    m,
                    DeleteMode::Strict,
                    scenario.choice_policy,
                    scenario.batch,
                    scenario.substrate,
                )));
                backends.push(Box::new(MultiQueueBackend::heap_full(
                    m,
                    DeleteMode::TryLock,
                    scenario.choice_policy,
                    scenario.batch,
                    scenario.substrate,
                )));
            } else if !scenario.substrate.is_default() {
                // A bare substrate dimension (default policy, no
                // batching) still runs the selected substrate next to
                // the packed-lock baseline already in the roster.
                backends.push(Box::new(MultiQueueBackend::heap_full(
                    m,
                    DeleteMode::Strict,
                    scenario.choice_policy,
                    scenario.batch,
                    scenario.substrate,
                )));
            }
            backends
        }
        Family::Fifo => {
            let m = (4 * n).max(8);
            vec![
                Box::new(RelaxedFifoBackend::new(m)),
                Box::new(LockedFifoBackend::new()),
            ]
        }
        Family::Stm => {
            let slots = 1 << 16;
            vec![
                Box::new(StmBackend::exact(slots)),
                Box::new(StmBackend::relaxed(slots, n)),
            ]
        }
    }
}

/// The roster for one cell of a **policy sweep**: only backends that
/// actually act on the scenario's `choice_policy` (the policy-driven
/// MultiQueue in both delete modes), so every cell along the policy
/// axis runs the same backend set and every report's policy label is
/// truthful. Works for the default policy too (`heap_policy` with
/// two-choice is the comparable baseline point), unlike [`roster`],
/// which adds tuned variants only when the policy deviates and would
/// tag policy-oblivious backends with the swept label.
///
/// Returns an empty vector for non-queue families (no backend acts on
/// a policy there).
pub fn policy_roster(scenario: &Scenario) -> Vec<Box<dyn Backend>> {
    if scenario.family != Family::Queue {
        return Vec::new();
    }
    let m = (4 * scenario.threads).max(8);
    vec![
        Box::new(MultiQueueBackend::heap_full(
            m,
            DeleteMode::Strict,
            scenario.choice_policy,
            scenario.batch,
            scenario.substrate,
        )),
        Box::new(MultiQueueBackend::heap_full(
            m,
            DeleteMode::TryLock,
            scenario.choice_policy,
            scenario.batch,
            scenario.substrate,
        )),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlz_core::PolicyCfg;

    #[test]
    fn roster_covers_every_family_with_two_plus_backends() {
        for s in Scenario::catalog() {
            let r = roster(&s);
            assert!(r.len() >= 2, "{}: roster too small", s.name);
            for b in &r {
                assert_eq!(b.family(), s.family, "{}", b.name());
            }
        }
    }

    #[test]
    fn policy_roster_is_uniform_across_the_policy_axis() {
        let mut s = Scenario::named("queue-balanced").expect("catalog");
        // Same backend set (by count and delete modes) for the default
        // and a deviating policy — no ragged series along the axis.
        s.choice_policy = PolicyCfg::TwoChoice;
        let default_names: Vec<String> = policy_roster(&s).iter().map(|b| b.name()).collect();
        s.choice_policy = PolicyCfg::Sticky { ops: 16 };
        let sticky_names: Vec<String> = policy_roster(&s).iter().map(|b| b.name()).collect();
        assert_eq!(default_names.len(), 2);
        assert_eq!(sticky_names.len(), 2);
        // Every backend in a policy cell really acts on the policy.
        for n in &sticky_names {
            assert!(n.contains("sticky(s=16)"), "{n}");
        }
        // Non-queue families have no policy-acting backend.
        let c = Scenario::named("counter-read-heavy").expect("catalog");
        assert!(policy_roster(&c).is_empty());
    }
}
