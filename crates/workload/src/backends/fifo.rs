//! FIFO-family backends: the paper's [`RelaxedFifo`] (Section 7.1's
//! MultiQueue with clock-assigned timestamp priorities) and an exact
//! locked baseline.
//!
//! `Update` enqueues a fresh, globally unique element id; `Remove`
//! dequeues; `Read` peeks the published oldest-timestamp hint. With
//! `record_history` on, every operation is stamped and the recorded
//! history replays through the distributional-linearizability checker
//! under [`FifoSpec`]: the step cost is the dequeued element's
//! **position** in the FIFO order (0 = head = exact), the quantity
//! Theorem 7.1 bounds by O(m) in expectation.

use std::collections::VecDeque;
use std::sync::Mutex;

use dlz_core::clock::{Clock, FaaClock};
use dlz_core::spec::{
    check_distributional, Event, FifoOp, FifoSpec, History, HistoryArtifact, StampClock, ThreadLog,
};
use dlz_core::{AnyPolicy, ChoicePolicy, MqHandle, RelaxedFifo};
use dlz_pq::{BinaryHeap, ConcurrentPq};

use crate::backend::{Backend, QualityReport, QualitySummary, Worker, WorkerCfg};
use crate::metrics::TelemetrySample;
use crate::op::{Op, OpCounts, OpKind};
use crate::scenario::Family;

/// Shared quality state of the FIFO backends.
#[derive(Debug, Default)]
struct FifoQuality {
    /// Stamped logs (history mode), replayed through the checker.
    logs: Mutex<Vec<ThreadLog<FifoOp>>>,
    /// Cheap online samples: `dequeued_ts - oldest_hint` — a
    /// timestamp-space staleness proxy for the dequeue position.
    proxies: Mutex<Vec<f64>>,
    /// The last run's history, packaged for export.
    artifact: Mutex<Option<HistoryArtifact>>,
}

/// Element ids pack the worker id above a per-worker sequence number,
/// so ids are globally unique without shared state (the sequential
/// prefill worker has its own id, `threads`).
fn element_id(worker: usize, seq: u64) -> u64 {
    ((worker as u64) << 40) | seq
}

/// The paper's relaxed FIFO behind the [`Backend`] interface.
///
/// Workers operate through their own [`MqHandle`] over the wrapped
/// structure's MultiQueue, so the hot path carries the same contention
/// telemetry as the priority-queue backends; enqueue timestamps come
/// from the structure's shared [`FaaClock`] (Algorithm 2's
/// `Clock.Read()`), which makes the FIFO order total and the replay
/// costs exact positions.
#[derive(Debug)]
pub struct RelaxedFifoBackend {
    fifo: RelaxedFifo<u64, FaaClock>,
    label: String,
    clock: StampClock,
    quality: FifoQuality,
}

impl RelaxedFifoBackend {
    /// A relaxed FIFO over `m` internal binary heaps.
    pub fn new(m: usize) -> Self {
        RelaxedFifoBackend {
            fifo: RelaxedFifo::new(m, FaaClock::new()),
            label: format!("relaxed-fifo(m={m})"),
            clock: StampClock::new(),
            quality: FifoQuality::default(),
        }
    }

    /// The wrapped relaxed FIFO.
    pub fn fifo(&self) -> &RelaxedFifo<u64, FaaClock> {
        &self.fifo
    }
}

impl Backend for RelaxedFifoBackend {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn family(&self) -> Family {
        Family::Fifo
    }

    fn worker<'a>(&'a self, cfg: WorkerCfg) -> Box<dyn Worker + Send + 'a> {
        Box::new(RelaxedFifoWorker {
            backend: self,
            handle: self.fifo.multiqueue().handle(cfg.seed),
            thread: cfg.id,
            seq: 0,
            log: cfg.record_history.then(|| ThreadLog::new(cfg.id)),
            quality_every: cfg.quality_every,
            removes_seen: 0,
            proxies: Vec::new(),
        })
    }

    fn residual(&self) -> u64 {
        self.fifo.len() as u64
    }

    fn verify(&self, counts: &OpCounts) -> Result<(), String> {
        let residual = self.residual();
        let inserted = counts.inserted();
        if inserted == counts.removes + residual {
            Ok(())
        } else {
            Err(format!(
                "fifo lost items: {inserted} enqueued != {} dequeued + {residual} residual",
                counts.removes
            ))
        }
    }

    fn quality(&self) -> QualityReport {
        let logs = std::mem::take(&mut *self.quality.logs.lock().expect("logs"));
        let proxies = std::mem::take(&mut *self.quality.proxies.lock().expect("proxies"));
        let m = self.fifo.multiqueue().num_queues() as f64;
        if !logs.is_empty() {
            let history = History::from_logs(logs);
            let outcome = check_distributional(&FifoSpec, &history);
            let costs: Vec<f64> = outcome
                .costs
                .samples()
                .iter()
                .copied()
                .filter(|c| c.is_finite())
                .collect();
            let summary = QualitySummary::from_samples(&costs);
            let report = QualityReport::named("dequeue_position")
                .with_summary(summary)
                .scalar("scale_m", m)
                .scalar(
                    "linearizable",
                    if outcome.is_linearizable() { 1.0 } else { 0.0 },
                )
                .scalar("history_ops", history.len() as f64);
            *self.quality.artifact.lock().expect("artifact") = Some(HistoryArtifact::fifo(history));
            return report;
        }
        QualityReport::named("dequeue_ts_lag_proxy")
            .with_summary(QualitySummary::from_samples(&proxies))
            .scalar("scale_m", m)
    }

    fn take_history_artifact(&self) -> Option<HistoryArtifact> {
        self.quality.artifact.lock().expect("artifact").take()
    }
}

struct RelaxedFifoWorker<'a> {
    backend: &'a RelaxedFifoBackend,
    handle: MqHandle<'a, u64, BinaryHeap<u64, u64>, AnyPolicy>,
    thread: usize,
    /// Per-worker element sequence (packed under the worker id).
    seq: u64,
    log: Option<ThreadLog<FifoOp>>,
    quality_every: u32,
    removes_seen: u32,
    proxies: Vec<f64>,
}

impl Worker for RelaxedFifoWorker<'_> {
    fn execute(&mut self, op: &Op) -> bool {
        let clock = &self.backend.clock;
        match op.kind {
            OpKind::Update => {
                let id = element_id(self.thread, self.seq);
                self.seq += 1;
                // Algorithm 2: read the clock, insert with the time as
                // the priority. The FAA clock makes timestamps unique,
                // so FIFO order is total and replay positions exact.
                let ts = self.backend.fifo.clock().tick();
                if let Some(log) = &mut self.log {
                    let thread = self.thread;
                    let invoke = clock.stamp();
                    let update = self.handle.stamped(clock.as_atomic()).insert(ts, id);
                    let response = clock.stamp();
                    log.push(Event {
                        thread,
                        label: FifoOp::Enqueue { id },
                        invoke,
                        update,
                        response,
                    });
                } else {
                    self.handle.insert(ts, id);
                }
                true
            }
            OpKind::Remove => {
                self.removes_seen += 1;
                let sample =
                    self.quality_every > 0 && self.removes_seen.is_multiple_of(self.quality_every);
                let hint = if sample {
                    self.backend.fifo.multiqueue().min_hint()
                } else {
                    u64::MAX
                };
                if self.log.is_some() {
                    let thread = self.thread;
                    let invoke = clock.stamp();
                    match self.handle.stamped(clock.as_atomic()).dequeue() {
                        Some((ts, id, update)) => {
                            let response = clock.stamp();
                            if sample && hint != u64::MAX {
                                self.proxies.push(ts.saturating_sub(hint) as f64);
                            }
                            if let Some(log) = &mut self.log {
                                log.push(Event {
                                    thread,
                                    label: FifoOp::Dequeue { id },
                                    invoke,
                                    update,
                                    response,
                                });
                            }
                            true
                        }
                        None => false,
                    }
                } else {
                    match self.handle.dequeue() {
                        Some((ts, _)) => {
                            if sample && hint != u64::MAX {
                                self.proxies.push(ts.saturating_sub(hint) as f64);
                            }
                            true
                        }
                        None => false,
                    }
                }
            }
            OpKind::Read => {
                std::hint::black_box(self.backend.fifo.multiqueue().min_hint());
                true
            }
        }
    }

    fn telemetry_sample(&mut self) -> Option<TelemetrySample> {
        let envelope_factor = self.handle.policy().envelope_factor();
        Some(TelemetrySample {
            contention: self.handle.take_contention(),
            envelope_factor: if envelope_factor.is_finite() {
                envelope_factor
            } else {
                0.0
            },
        })
    }

    fn finish(&mut self) {
        if let Some(log) = self.log.take() {
            self.backend.quality.logs.lock().expect("logs").push(log);
        }
        self.backend
            .quality
            .proxies
            .lock()
            .expect("proxies")
            .append(&mut self.proxies);
    }
}

/// The exact baseline: one mutex around a `VecDeque`. Every dequeue
/// returns the true head, so checker replay costs are identically zero
/// — the control the relaxed positions are read against.
#[derive(Debug, Default)]
pub struct LockedFifoBackend {
    queue: Mutex<VecDeque<u64>>,
    clock: StampClock,
    quality: FifoQuality,
}

impl LockedFifoBackend {
    /// An empty locked FIFO.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Backend for LockedFifoBackend {
    fn name(&self) -> String {
        "locked-fifo".to_string()
    }

    fn family(&self) -> Family {
        Family::Fifo
    }

    fn worker<'a>(&'a self, cfg: WorkerCfg) -> Box<dyn Worker + Send + 'a> {
        Box::new(LockedFifoWorker {
            backend: self,
            thread: cfg.id,
            seq: 0,
            log: cfg.record_history.then(|| ThreadLog::new(cfg.id)),
        })
    }

    fn residual(&self) -> u64 {
        self.queue.lock().expect("queue").len() as u64
    }

    fn verify(&self, counts: &OpCounts) -> Result<(), String> {
        let residual = self.residual();
        let inserted = counts.inserted();
        if inserted == counts.removes + residual {
            Ok(())
        } else {
            Err(format!(
                "fifo lost items: {inserted} enqueued != {} dequeued + {residual} residual",
                counts.removes
            ))
        }
    }

    fn quality(&self) -> QualityReport {
        let logs = std::mem::take(&mut *self.quality.logs.lock().expect("logs"));
        if !logs.is_empty() {
            let history = History::from_logs(logs);
            let outcome = check_distributional(&FifoSpec, &history);
            let costs: Vec<f64> = outcome
                .costs
                .samples()
                .iter()
                .copied()
                .filter(|c| c.is_finite())
                .collect();
            let report = QualityReport::named("dequeue_position")
                .with_summary(QualitySummary::from_samples(&costs))
                .scalar(
                    "linearizable",
                    if outcome.is_linearizable() { 1.0 } else { 0.0 },
                )
                .scalar("history_ops", history.len() as f64);
            *self.quality.artifact.lock().expect("artifact") = Some(HistoryArtifact::fifo(history));
            return report;
        }
        QualityReport::named("dequeue_position").scalar("exact_structure", 1.0)
    }

    fn take_history_artifact(&self) -> Option<HistoryArtifact> {
        self.quality.artifact.lock().expect("artifact").take()
    }
}

struct LockedFifoWorker<'a> {
    backend: &'a LockedFifoBackend,
    thread: usize,
    seq: u64,
    log: Option<ThreadLog<FifoOp>>,
}

impl Worker for LockedFifoWorker<'_> {
    fn execute(&mut self, op: &Op) -> bool {
        let clock = &self.backend.clock;
        match op.kind {
            OpKind::Update => {
                let id = element_id(self.thread, self.seq);
                self.seq += 1;
                if self.log.is_some() {
                    let invoke = clock.stamp();
                    // The update stamp is taken inside the critical
                    // section: the true linearization point.
                    let update = {
                        let mut q = self.backend.queue.lock().expect("queue");
                        let u = clock.stamp();
                        q.push_back(id);
                        u
                    };
                    let response = clock.stamp();
                    if let Some(log) = &mut self.log {
                        log.push(Event {
                            thread: self.thread,
                            label: FifoOp::Enqueue { id },
                            invoke,
                            update,
                            response,
                        });
                    }
                } else {
                    self.backend.queue.lock().expect("queue").push_back(id);
                }
                true
            }
            OpKind::Remove => {
                if self.log.is_some() {
                    let invoke = clock.stamp();
                    let (popped, update) = {
                        let mut q = self.backend.queue.lock().expect("queue");
                        let u = clock.stamp();
                        (q.pop_front(), u)
                    };
                    let response = clock.stamp();
                    match popped {
                        Some(id) => {
                            if let Some(log) = &mut self.log {
                                log.push(Event {
                                    thread: self.thread,
                                    label: FifoOp::Dequeue { id },
                                    invoke,
                                    update,
                                    response,
                                });
                            }
                            true
                        }
                        None => false,
                    }
                } else {
                    self.backend
                        .queue
                        .lock()
                        .expect("queue")
                        .pop_front()
                        .is_some()
                }
            }
            OpKind::Read => {
                std::hint::black_box(self.backend.queue.lock().expect("queue").front().copied());
                true
            }
        }
    }

    fn finish(&mut self) {
        if let Some(log) = self.log.take() {
            self.backend.quality.logs.lock().expect("logs").push(log);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(backend: &dyn Backend, n: u64, record_history: bool) -> OpCounts {
        let cfg = WorkerCfg {
            id: 0,
            threads: 1,
            seed: 7,
            record_history,
            quality_every: 4,
        };
        let mut counts = OpCounts::default();
        let mut w = backend.worker(cfg);
        for k in 0..n {
            let kind = if k % 2 == 0 {
                OpKind::Update
            } else {
                OpKind::Remove
            };
            let ok = w.execute(&Op {
                kind,
                key: k,
                priority: k,
                weight: 1,
            });
            match (kind, ok) {
                (OpKind::Update, _) => counts.updates += 1,
                (OpKind::Remove, true) => counts.removes += 1,
                (OpKind::Remove, false) => counts.removes_empty += 1,
                _ => {}
            }
        }
        w.finish();
        counts
    }

    #[test]
    fn relaxed_fifo_backend_conserves() {
        let b = RelaxedFifoBackend::new(4);
        let counts = drive(&b, 2_000, false);
        b.verify(&counts).expect("conservation");
        let q = b.quality();
        assert_eq!(q.metric, "dequeue_ts_lag_proxy");
        assert!(q.is_finite());
    }

    #[test]
    fn relaxed_fifo_history_mode_yields_exact_positions() {
        let b = RelaxedFifoBackend::new(4);
        let counts = drive(&b, 1_000, true);
        b.verify(&counts).expect("conservation");
        let q = b.quality();
        assert_eq!(q.metric, "dequeue_position");
        assert_eq!(q.get("linearizable"), Some(1.0), "{q:?}");
        assert!(q.summary.expect("positions").count > 0);
        // The checked history is packaged for export as a fifo artifact.
        let a = b.take_history_artifact().expect("artifact");
        let text = a.to_json_lines();
        assert!(text.contains("\"kind\":\"fifo\""), "{}", &text[..200]);
        let round = HistoryArtifact::from_json_lines(&text).expect("parse");
        assert_eq!(round.history.len(), a.history.len());
    }

    #[test]
    fn locked_fifo_history_positions_are_zero() {
        let b = LockedFifoBackend::new();
        let counts = drive(&b, 1_000, true);
        b.verify(&counts).expect("conservation");
        let q = b.quality();
        assert_eq!(q.metric, "dequeue_position");
        assert_eq!(q.get("linearizable"), Some(1.0), "{q:?}");
        let s = q.summary.expect("positions");
        assert_eq!(s.max, 0.0, "exact FIFO dequeues the true head: {s:?}");
    }

    #[test]
    fn element_ids_never_collide_across_workers() {
        assert_ne!(element_id(0, 1), element_id(1, 1));
        assert_ne!(element_id(3, 0), element_id(0, 3));
        // Prefill worker (id == threads) stays disjoint too.
        assert_ne!(element_id(4, 9), element_id(0, 9));
    }

    #[test]
    fn relaxed_fifo_worker_reports_telemetry() {
        let b = RelaxedFifoBackend::new(4);
        let cfg = WorkerCfg {
            id: 0,
            threads: 1,
            seed: 3,
            record_history: false,
            quality_every: 0,
        };
        let mut w = b.worker(cfg);
        for k in 0..100u64 {
            w.execute(&Op {
                kind: OpKind::Update,
                key: k,
                priority: k,
                weight: 1,
            });
        }
        let sample = w.telemetry_sample().expect("fifo workers sample");
        assert!(sample.envelope_factor >= 0.0);
    }
}
