//! STM-family backend: the TL2 engine under any clock strategy.

use std::sync::Mutex;

use dlz_core::rng::{Rng64, Xoshiro256};
use dlz_core::MultiCounter;
use dlz_stm::{ClockStrategy, ExactClock, RelaxedClock, Tl2, TxStats};

use crate::backend::{Backend, QualityReport, Worker, WorkerCfg};
use crate::op::{Op, OpCounts, OpKind};
use crate::scenario::Family;

/// The TL2 transactional array behind the [`Backend`] interface.
///
/// `Update` (and `Remove`, which STM maps to the same thing) runs the
/// paper's Section-8 transaction — add 1 to two uniformly chosen slots
/// and commit; `Read` runs a read-only transaction over one slot. The
/// conservation law is the paper's own verification: the quiescent
/// array sum must equal exactly 2× the committed update count.
#[derive(Debug)]
pub struct StmBackend<C: ClockStrategy> {
    stm: Tl2<C>,
    label: String,
    slots: u64,
    stats: Mutex<TxStats>,
}

impl StmBackend<ExactClock> {
    /// Baseline TL2 (single fetch-and-add clock) over `slots` cells.
    pub fn exact(slots: usize) -> Self {
        StmBackend {
            stm: Tl2::new(slots, ExactClock::new()),
            label: format!("stm-exact(slots={slots})"),
            slots: slots as u64,
            stats: Mutex::new(TxStats::default()),
        }
    }
}

impl StmBackend<RelaxedClock> {
    /// TL2 with the paper's relaxed MultiCounter clock, sized for
    /// `threads` workers with the κ = 3 margin of the fig1cde harness.
    pub fn relaxed(slots: usize, threads: usize) -> Self {
        let m = (2 * threads).max(4);
        let delta = RelaxedClock::suggested_delta(m, 3.0);
        StmBackend {
            stm: Tl2::new(slots, RelaxedClock::new(MultiCounter::new(m), delta)),
            label: format!("stm-relaxed(slots={slots},m={m})"),
            slots: slots as u64,
            stats: Mutex::new(TxStats::default()),
        }
    }
}

impl<C: ClockStrategy> StmBackend<C> {
    /// The wrapped engine.
    pub fn engine(&self) -> &Tl2<C> {
        &self.stm
    }

    /// Merged per-thread statistics so far (post-run).
    pub fn stats(&self) -> TxStats {
        *self.stats.lock().expect("stats")
    }
}

impl<C: ClockStrategy> Backend for StmBackend<C> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn family(&self) -> Family {
        Family::Stm
    }

    fn worker<'a>(&'a self, cfg: WorkerCfg) -> Box<dyn Worker + Send + 'a> {
        Box::new(StmWorker {
            backend: self,
            handle: self.stm.thread(),
            rng: Xoshiro256::new(cfg.seed),
        })
    }

    fn residual(&self) -> u64 {
        self.stm.array().sum_quiescent().min(u64::MAX as u128) as u64
    }

    fn verify(&self, counts: &OpCounts) -> Result<(), String> {
        if self.stm.array().any_locked() {
            return Err("a slot lock leaked past the run".to_string());
        }
        let update_txs = (counts.updates + counts.removes + counts.prefill) as u128;
        let sum = self.stm.array().sum_quiescent();
        if sum != 2 * update_txs {
            return Err(format!(
                "STM safety violation: array sum {sum} != 2 x {update_txs} committed update txns"
            ));
        }
        let stats = self.stats();
        let committed = update_txs as u64 + counts.reads;
        if stats.commits != committed {
            return Err(format!(
                "commit accounting mismatch: {} commits != {committed} completed txns",
                stats.commits
            ));
        }
        Ok(())
    }

    fn quality(&self) -> QualityReport {
        let stats = self.stats();
        QualityReport::named("abort_rate")
            .scalar("abort_rate", stats.abort_rate())
            .scalar("commits", stats.commits as f64)
            .scalar("aborts", stats.aborts as f64)
            .scalar("future_version_aborts", stats.future_version as f64)
            .scalar("lock_busy_aborts", stats.lock_busy as f64)
            .scalar("read_validation_aborts", stats.read_validation as f64)
    }
}

struct StmWorker<'a, C: ClockStrategy> {
    backend: &'a StmBackend<C>,
    handle: dlz_stm::TxThread<'a, C>,
    rng: Xoshiro256,
}

impl<C: ClockStrategy> Worker for StmWorker<'_, C> {
    fn execute(&mut self, op: &Op) -> bool {
        let slots = self.backend.slots;
        match op.kind {
            OpKind::Update | OpKind::Remove => {
                let i = (op.key % slots) as usize;
                let j = self.rng.bounded(slots) as usize;
                self.handle.run(|tx| {
                    tx.add(i, 1)?;
                    tx.add(j, 1)?;
                    Ok(())
                });
                true
            }
            OpKind::Read => {
                let i = (op.key % slots) as usize;
                let _ = self.handle.run(|tx| tx.read(i));
                true
            }
        }
    }

    fn finish(&mut self) {
        self.backend
            .stats
            .lock()
            .expect("stats")
            .merge(&self.handle.stats());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(backend: &dyn Backend, n: u64) -> OpCounts {
        let cfg = WorkerCfg {
            id: 0,
            threads: 1,
            seed: 11,
            record_history: false,
            quality_every: 0,
        };
        let mut counts = OpCounts::default();
        let mut w = backend.worker(cfg);
        for k in 0..n {
            let kind = if k % 5 == 4 {
                OpKind::Read
            } else {
                OpKind::Update
            };
            w.execute(&Op {
                kind,
                key: k,
                priority: 0,
                weight: 1,
            });
            match kind {
                OpKind::Update => counts.updates += 1,
                OpKind::Read => counts.reads += 1,
                OpKind::Remove => unreachable!(),
            }
        }
        w.finish();
        counts
    }

    #[test]
    fn exact_and_relaxed_stm_verify() {
        let exact = StmBackend::exact(256);
        let counts = drive(&exact, 2_000);
        exact.verify(&counts).expect("exact safety");
        assert!(exact.quality().is_finite());

        let relaxed = StmBackend::relaxed(1024, 2);
        let counts = drive(&relaxed, 2_000);
        relaxed.verify(&counts).expect("relaxed safety");
        let q = relaxed.quality();
        assert_eq!(q.metric, "abort_rate");
        assert!(q.get("commits").unwrap() >= 2_000.0);
    }

    #[test]
    fn verify_catches_missing_commits() {
        let b = StmBackend::exact(16);
        let counts = OpCounts {
            updates: 5, // claimed but never executed
            ..OpCounts::default()
        };
        assert!(b.verify(&counts).is_err());
    }
}
