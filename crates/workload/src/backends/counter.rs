//! Counter-family backends: every relaxed counter in `dlz-core` behind
//! the unified [`Backend`] interface.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dlz_core::rng::Xoshiro256;
use dlz_core::spec::{
    check_distributional, CounterOp, CounterSpec, Event, History, HistoryArtifact, StampClock,
    ThreadLog,
};
use dlz_core::{DChoiceCounter, ExactCounter, MultiCounter, RelaxedCounter, ShardedCounter};

use crate::backend::{Backend, QualityReport, QualitySummary, Worker, WorkerCfg};
use crate::op::{Op, OpCounts, OpKind};
use crate::scenario::Family;

/// Generous constant over the `m·ln m` deviation scale, as the core
/// tests use: the reported read-deviation bound is
/// `DEVIATION_BOUND_C · scale`. Public so offline checkers
/// (`histcheck`) reconstruct the *same* envelope from an artifact's
/// `envelope_factor`.
pub const DEVIATION_BOUND_C: f64 = 4.0;

/// Any counter from `dlz-core`, with explicit-RNG calls where the
/// concrete type offers them (keeping runs deterministic per seed).
#[derive(Debug)]
pub enum AnyCounter {
    /// Algorithm 1.
    Multi(MultiCounter),
    /// The d-choice generalization.
    DChoice(DChoiceCounter),
    /// Per-thread stripes (no bounded single-sample read).
    Sharded(ShardedCounter),
    /// The single fetch-and-add baseline.
    Exact(ExactCounter),
}

/// A counter behind the [`Backend`] interface.
///
/// `Update` applies the op's weight (a weight-w add for the
/// MultiCounter, w unit increments for substrates without a weighted
/// add, so conservation laws stay exact). `Read` draws a sampled
/// relaxed read and, every `quality_every` reads, records the absolute
/// deviation from the exact sum — the paper's read-error metric
/// (Lemma 6.8). `Remove` is treated as a read: counters don't consume.
///
/// With `record_history` on, workers record a stamped
/// [`CounterOp`] history (unit increments; reads with their returned
/// values) and [`quality`](Backend::quality) replays it through the
/// relaxed-counter checker: each read's cost is its deviation from the
/// true count *at its linearization point* — the exact Lemma 6.8
/// metric, rather than the racy online sample.
#[derive(Debug)]
pub struct CounterBackend {
    inner: AnyCounter,
    label: String,
    /// Sum of weights actually applied (conservation ground truth).
    expected: AtomicU64,
    deviations: Mutex<Vec<f64>>,
    /// Stamp source and per-thread logs for history mode.
    clock: StampClock,
    logs: Mutex<Vec<ThreadLog<CounterOp>>>,
    /// The last run's history, packaged for export (stashed by
    /// `quality()`, drained by `take_history_artifact()`).
    artifact: Mutex<Option<HistoryArtifact>>,
}

impl CounterBackend {
    /// Wraps a MultiCounter with `m` cells.
    pub fn multicounter(m: usize) -> Self {
        Self::new(
            AnyCounter::Multi(MultiCounter::new(m)),
            format!("multicounter(m={m})"),
        )
    }

    /// Wraps a d-choice counter.
    pub fn dchoice(m: usize, d: usize, seed: u64) -> Self {
        Self::new(
            AnyCounter::DChoice(DChoiceCounter::new(m, d, seed)),
            format!("dchoice(m={m},d={d})"),
        )
    }

    /// Wraps a sharded (striped) counter.
    pub fn sharded(stripes: usize) -> Self {
        Self::new(
            AnyCounter::Sharded(ShardedCounter::new(stripes)),
            format!("sharded(s={stripes})"),
        )
    }

    /// Wraps the exact fetch-and-add baseline.
    pub fn exact() -> Self {
        Self::new(AnyCounter::Exact(ExactCounter::new()), "exact-faa".into())
    }

    fn new(inner: AnyCounter, label: String) -> Self {
        CounterBackend {
            inner,
            label,
            expected: AtomicU64::new(0),
            deviations: Mutex::new(Vec::new()),
            clock: StampClock::new(),
            logs: Mutex::new(Vec::new()),
            artifact: Mutex::new(None),
        }
    }

    fn read_exact(&self) -> u64 {
        match &self.inner {
            AnyCounter::Multi(c) => c.read_exact(),
            AnyCounter::DChoice(c) => c.read_exact(),
            AnyCounter::Sharded(c) => c.read_exact(),
            AnyCounter::Exact(c) => c.read_exact(),
        }
    }

    /// The deviation scale the paper's Lemma 6.8 bounds: `m·ln m` for
    /// cell-sampling counters; 0 for the exact baseline.
    fn deviation_scale(&self) -> f64 {
        let m = match &self.inner {
            AnyCounter::Multi(c) => c.num_counters(),
            AnyCounter::DChoice(c) => c.num_counters(),
            AnyCounter::Sharded(c) => c.num_stripes(),
            AnyCounter::Exact(_) => return 0.0,
        } as f64;
        m * m.max(2.0).ln()
    }

    fn max_gap(&self) -> u64 {
        match &self.inner {
            AnyCounter::Multi(c) => c.max_gap(),
            AnyCounter::DChoice(c) => c.max_gap(),
            AnyCounter::Sharded(c) => c.max_gap(),
            AnyCounter::Exact(_) => 0,
        }
    }
}

impl Backend for CounterBackend {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn family(&self) -> Family {
        Family::Counter
    }

    fn worker<'a>(&'a self, cfg: WorkerCfg) -> Box<dyn Worker + Send + 'a> {
        Box::new(CounterWorker {
            backend: self,
            rng: Xoshiro256::new(cfg.seed),
            stripe: cfg.id % cfg.threads.max(1),
            thread: cfg.id,
            quality_every: cfg.quality_every,
            reads_seen: 0,
            added: 0,
            deviations: Vec::new(),
            log: cfg.record_history.then(|| ThreadLog::new(cfg.id)),
        })
    }

    fn residual(&self) -> u64 {
        self.read_exact()
    }

    fn verify(&self, _counts: &OpCounts) -> Result<(), String> {
        let expected = self.expected.load(Ordering::Acquire);
        let actual = self.read_exact();
        if actual == expected {
            Ok(())
        } else {
            Err(format!(
                "counter lost updates: exact sum {actual} != applied weight {expected}"
            ))
        }
    }

    fn quality(&self) -> QualityReport {
        let scale = self.deviation_scale();
        let bound = DEVIATION_BOUND_C * scale;
        // History mode: replay the stamped history through the
        // relaxed-counter checker. Each read's cost is its deviation
        // from the count at its linearization point (Lemma 6.8's
        // metric, exact rather than sampled).
        let logs = std::mem::take(&mut *self.logs.lock().expect("logs"));
        if !logs.is_empty() {
            let history = History::from_logs(logs);
            let outcome = check_distributional(&CounterSpec, &history);
            // Costs align 1:1 with labels in update order: the counter
            // relaxation has no unmappable transitions (every Inc and
            // Read applies), so nothing is skipped.
            let labels = history.labels_in_update_order();
            let read_costs: Vec<f64> = labels
                .iter()
                .zip(outcome.costs.samples())
                .filter(|(l, _)| matches!(l, CounterOp::Read { .. }))
                .map(|(_, c)| *c)
                .collect();
            let summary = QualitySummary::from_samples(&read_costs);
            let within = if scale == 0.0 {
                summary.max == 0.0
            } else {
                summary.max <= bound
            };
            let report = QualityReport::named("read_deviation")
                .with_summary(summary)
                .scalar("scale_m_ln_m", scale)
                .scalar("bound", bound)
                .scalar("within_bound", if within { 1.0 } else { 0.0 })
                .scalar("max_gap", self.max_gap() as f64)
                .scalar(
                    "linearizable",
                    if outcome.is_linearizable() { 1.0 } else { 0.0 },
                )
                .scalar("history_ops", history.len() as f64);
            // Package the checked history for export; the deviation
            // scale travels as the envelope factor (bound = 4·scale).
            *self.artifact.lock().expect("artifact") =
                Some(HistoryArtifact::counter(history, scale));
            return report;
        }
        // Drains the samples so a backend reused across several engine
        // runs (fig1b's checkpoints) reports per-run, not cumulative,
        // statistics.
        let samples = std::mem::take(&mut *self.deviations.lock().expect("deviations"));
        let summary = QualitySummary::from_samples(&samples);
        let within = if samples.is_empty() || scale == 0.0 {
            summary.max == 0.0
        } else {
            summary.max <= bound
        };
        QualityReport::named("read_deviation")
            .with_summary(summary)
            .scalar("scale_m_ln_m", scale)
            .scalar("bound", bound)
            .scalar("within_bound", if within { 1.0 } else { 0.0 })
            .scalar("max_gap", self.max_gap() as f64)
    }

    fn take_history_artifact(&self) -> Option<HistoryArtifact> {
        self.artifact.lock().expect("artifact").take()
    }
}

struct CounterWorker<'a> {
    backend: &'a CounterBackend,
    rng: Xoshiro256,
    stripe: usize,
    thread: usize,
    quality_every: u32,
    reads_seen: u32,
    added: u64,
    deviations: Vec<f64>,
    /// Stamped `CounterOp` events (history mode only).
    log: Option<ThreadLog<CounterOp>>,
}

impl CounterWorker<'_> {
    fn sampled_read(&mut self) -> u64 {
        match &self.backend.inner {
            AnyCounter::Multi(c) => c.read_with(&mut self.rng),
            AnyCounter::DChoice(c) => c.read_with(&mut self.rng),
            AnyCounter::Sharded(c) => c.read_sample_with(&mut self.rng),
            AnyCounter::Exact(c) => c.read(),
        }
    }

    /// One unit increment on whatever substrate.
    fn increment_unit(&mut self) {
        match &self.backend.inner {
            AnyCounter::Multi(c) => c.increment_with(&mut self.rng),
            AnyCounter::DChoice(c) => c.increment_with(&mut self.rng),
            AnyCounter::Sharded(c) => c.increment_stripe(self.stripe),
            AnyCounter::Exact(c) => {
                c.increment();
            }
        }
    }
}

impl Worker for CounterWorker<'_> {
    fn execute(&mut self, op: &Op) -> bool {
        let clock = &self.backend.clock;
        match op.kind {
            OpKind::Update => {
                if self.log.is_some() {
                    // History mode: the spec's `Inc` is a unit
                    // increment, so apply (and stamp) the weight as
                    // units. The update stamp is drawn right after the
                    // increment's atomic step — inside the operation's
                    // interval, which is all Definition 5.2 needs.
                    for _ in 0..op.weight {
                        let invoke = clock.stamp();
                        self.increment_unit();
                        let update = clock.stamp();
                        let response = clock.stamp();
                        if let Some(log) = &mut self.log {
                            log.push(Event {
                                thread: self.thread,
                                label: CounterOp::Inc,
                                invoke,
                                update,
                                response,
                            });
                        }
                    }
                } else {
                    match &self.backend.inner {
                        AnyCounter::Multi(c) => {
                            if op.weight == 1 {
                                c.increment_with(&mut self.rng);
                            } else {
                                c.add_with(&mut self.rng, op.weight);
                            }
                        }
                        // No weighted add on these substrates: apply the
                        // weight as unit increments so totals stay exact.
                        AnyCounter::DChoice(c) => {
                            for _ in 0..op.weight {
                                c.increment_with(&mut self.rng);
                            }
                        }
                        AnyCounter::Sharded(c) => {
                            for _ in 0..op.weight {
                                c.increment_stripe(self.stripe);
                            }
                        }
                        AnyCounter::Exact(c) => {
                            for _ in 0..op.weight {
                                c.increment();
                            }
                        }
                    }
                }
                self.added += op.weight;
                true
            }
            OpKind::Remove | OpKind::Read => {
                if self.log.is_some() {
                    let invoke = clock.stamp();
                    let returned = self.sampled_read();
                    let update = clock.stamp();
                    let response = clock.stamp();
                    if let Some(log) = &mut self.log {
                        log.push(Event {
                            thread: self.thread,
                            label: CounterOp::Read { returned },
                            invoke,
                            update,
                            response,
                        });
                    }
                    return true;
                }
                let approx = self.sampled_read();
                self.reads_seen += 1;
                if self.quality_every > 0 && self.reads_seen.is_multiple_of(self.quality_every) {
                    let exact = self.backend.read_exact();
                    self.deviations.push(approx.abs_diff(exact) as f64);
                }
                true
            }
        }
    }

    fn finish(&mut self) {
        self.backend
            .expected
            .fetch_add(self.added, Ordering::AcqRel);
        self.backend
            .deviations
            .lock()
            .expect("deviations")
            .append(&mut self.deviations);
        if let Some(log) = self.log.take() {
            self.backend.logs.lock().expect("logs").push(log);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ops(b: &CounterBackend, n: u64) {
        let cfg = WorkerCfg {
            id: 0,
            threads: 1,
            seed: 42,
            record_history: false,
            quality_every: 8,
        };
        let mut w = b.worker(cfg);
        for k in 0..n {
            let kind = if k % 4 == 3 {
                OpKind::Read
            } else {
                OpKind::Update
            };
            w.execute(&Op {
                kind,
                key: k,
                priority: 0,
                weight: 1 + k % 3,
            });
        }
        w.finish();
    }

    #[test]
    fn all_counter_backends_conserve() {
        for b in [
            CounterBackend::multicounter(16),
            CounterBackend::dchoice(16, 3, 9),
            CounterBackend::sharded(4),
            CounterBackend::exact(),
        ] {
            run_ops(&b, 4_000);
            let counts = OpCounts::default();
            b.verify(&counts).expect("conservation");
            let q = b.quality();
            assert_eq!(q.metric, "read_deviation");
            assert!(q.is_finite(), "{}: {q:?}", b.name());
        }
    }

    #[test]
    fn exact_counter_has_zero_deviation() {
        let b = CounterBackend::exact();
        run_ops(&b, 2_000);
        let q = b.quality();
        assert_eq!(q.summary.expect("sampled").max, 0.0);
        assert_eq!(q.get("within_bound"), Some(1.0));
    }

    #[test]
    fn multicounter_deviation_within_bound() {
        let b = CounterBackend::multicounter(32);
        run_ops(&b, 50_000);
        let q = b.quality();
        assert!(q.summary.expect("sampled").count > 0);
        assert_eq!(q.get("within_bound"), Some(1.0), "{q:?}");
    }
}
