//! Counter-family backends: every relaxed counter in `dlz-core` behind
//! the unified [`Backend`] interface.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dlz_core::rng::Xoshiro256;
use dlz_core::{DChoiceCounter, ExactCounter, MultiCounter, RelaxedCounter, ShardedCounter};

use crate::backend::{Backend, QualityReport, QualitySummary, Worker, WorkerCfg};
use crate::op::{Op, OpCounts, OpKind};
use crate::scenario::Family;

/// Any counter from `dlz-core`, with explicit-RNG calls where the
/// concrete type offers them (keeping runs deterministic per seed).
#[derive(Debug)]
pub enum AnyCounter {
    /// Algorithm 1.
    Multi(MultiCounter),
    /// The d-choice generalization.
    DChoice(DChoiceCounter),
    /// Per-thread stripes (no bounded single-sample read).
    Sharded(ShardedCounter),
    /// The single fetch-and-add baseline.
    Exact(ExactCounter),
}

/// A counter behind the [`Backend`] interface.
///
/// `Update` applies the op's weight (a weight-w add for the
/// MultiCounter, w unit increments for substrates without a weighted
/// add, so conservation laws stay exact). `Read` draws a sampled
/// relaxed read and, every `quality_every` reads, records the absolute
/// deviation from the exact sum — the paper's read-error metric
/// (Lemma 6.8). `Remove` is treated as a read: counters don't consume.
#[derive(Debug)]
pub struct CounterBackend {
    inner: AnyCounter,
    label: String,
    /// Sum of weights actually applied (conservation ground truth).
    expected: AtomicU64,
    deviations: Mutex<Vec<f64>>,
}

impl CounterBackend {
    /// Wraps a MultiCounter with `m` cells.
    pub fn multicounter(m: usize) -> Self {
        Self::new(
            AnyCounter::Multi(MultiCounter::new(m)),
            format!("multicounter(m={m})"),
        )
    }

    /// Wraps a d-choice counter.
    pub fn dchoice(m: usize, d: usize, seed: u64) -> Self {
        Self::new(
            AnyCounter::DChoice(DChoiceCounter::new(m, d, seed)),
            format!("dchoice(m={m},d={d})"),
        )
    }

    /// Wraps a sharded (striped) counter.
    pub fn sharded(stripes: usize) -> Self {
        Self::new(
            AnyCounter::Sharded(ShardedCounter::new(stripes)),
            format!("sharded(s={stripes})"),
        )
    }

    /// Wraps the exact fetch-and-add baseline.
    pub fn exact() -> Self {
        Self::new(AnyCounter::Exact(ExactCounter::new()), "exact-faa".into())
    }

    fn new(inner: AnyCounter, label: String) -> Self {
        CounterBackend {
            inner,
            label,
            expected: AtomicU64::new(0),
            deviations: Mutex::new(Vec::new()),
        }
    }

    fn read_exact(&self) -> u64 {
        match &self.inner {
            AnyCounter::Multi(c) => c.read_exact(),
            AnyCounter::DChoice(c) => c.read_exact(),
            AnyCounter::Sharded(c) => c.read_exact(),
            AnyCounter::Exact(c) => c.read_exact(),
        }
    }

    /// The deviation scale the paper's Lemma 6.8 bounds: `m·ln m` for
    /// cell-sampling counters; 0 for the exact baseline.
    fn deviation_scale(&self) -> f64 {
        let m = match &self.inner {
            AnyCounter::Multi(c) => c.num_counters(),
            AnyCounter::DChoice(c) => c.num_counters(),
            AnyCounter::Sharded(c) => c.num_stripes(),
            AnyCounter::Exact(_) => return 0.0,
        } as f64;
        m * m.max(2.0).ln()
    }

    fn max_gap(&self) -> u64 {
        match &self.inner {
            AnyCounter::Multi(c) => c.max_gap(),
            AnyCounter::DChoice(c) => c.max_gap(),
            AnyCounter::Sharded(c) => c.max_gap(),
            AnyCounter::Exact(_) => 0,
        }
    }
}

impl Backend for CounterBackend {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn family(&self) -> Family {
        Family::Counter
    }

    fn worker<'a>(&'a self, cfg: WorkerCfg) -> Box<dyn Worker + Send + 'a> {
        Box::new(CounterWorker {
            backend: self,
            rng: Xoshiro256::new(cfg.seed),
            stripe: cfg.id % cfg.threads.max(1),
            quality_every: cfg.quality_every,
            reads_seen: 0,
            added: 0,
            deviations: Vec::new(),
        })
    }

    fn residual(&self) -> u64 {
        self.read_exact()
    }

    fn verify(&self, _counts: &OpCounts) -> Result<(), String> {
        let expected = self.expected.load(Ordering::Acquire);
        let actual = self.read_exact();
        if actual == expected {
            Ok(())
        } else {
            Err(format!(
                "counter lost updates: exact sum {actual} != applied weight {expected}"
            ))
        }
    }

    fn quality(&self) -> QualityReport {
        // Drains the samples so a backend reused across several engine
        // runs (fig1b's checkpoints) reports per-run, not cumulative,
        // statistics.
        let samples = std::mem::take(&mut *self.deviations.lock().expect("deviations"));
        let summary = QualitySummary::from_samples(&samples);
        let scale = self.deviation_scale();
        // Generous constant over the m·ln m scale, as the core tests use.
        let bound = 4.0 * scale;
        let within = if samples.is_empty() || scale == 0.0 {
            summary.max == 0.0
        } else {
            summary.max <= bound
        };
        QualityReport::named("read_deviation")
            .with_summary(summary)
            .scalar("scale_m_ln_m", scale)
            .scalar("bound", bound)
            .scalar("within_bound", if within { 1.0 } else { 0.0 })
            .scalar("max_gap", self.max_gap() as f64)
    }
}

struct CounterWorker<'a> {
    backend: &'a CounterBackend,
    rng: Xoshiro256,
    stripe: usize,
    quality_every: u32,
    reads_seen: u32,
    added: u64,
    deviations: Vec<f64>,
}

impl CounterWorker<'_> {
    fn sampled_read(&mut self) -> u64 {
        match &self.backend.inner {
            AnyCounter::Multi(c) => c.read_with(&mut self.rng),
            AnyCounter::DChoice(c) => c.read_with(&mut self.rng),
            AnyCounter::Sharded(c) => c.read_sample_with(&mut self.rng),
            AnyCounter::Exact(c) => c.read(),
        }
    }
}

impl Worker for CounterWorker<'_> {
    fn execute(&mut self, op: &Op) -> bool {
        match op.kind {
            OpKind::Update => {
                match &self.backend.inner {
                    AnyCounter::Multi(c) => {
                        if op.weight == 1 {
                            c.increment_with(&mut self.rng);
                        } else {
                            c.add_with(&mut self.rng, op.weight);
                        }
                    }
                    // No weighted add on these substrates: apply the
                    // weight as unit increments so totals stay exact.
                    AnyCounter::DChoice(c) => {
                        for _ in 0..op.weight {
                            c.increment_with(&mut self.rng);
                        }
                    }
                    AnyCounter::Sharded(c) => {
                        for _ in 0..op.weight {
                            c.increment_stripe(self.stripe);
                        }
                    }
                    AnyCounter::Exact(c) => {
                        for _ in 0..op.weight {
                            c.increment();
                        }
                    }
                }
                self.added += op.weight;
                true
            }
            OpKind::Remove | OpKind::Read => {
                let approx = self.sampled_read();
                self.reads_seen += 1;
                if self.quality_every > 0 && self.reads_seen.is_multiple_of(self.quality_every) {
                    let exact = self.backend.read_exact();
                    self.deviations.push(approx.abs_diff(exact) as f64);
                }
                true
            }
        }
    }

    fn finish(&mut self) {
        self.backend
            .expected
            .fetch_add(self.added, Ordering::AcqRel);
        self.backend
            .deviations
            .lock()
            .expect("deviations")
            .append(&mut self.deviations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ops(b: &CounterBackend, n: u64) {
        let cfg = WorkerCfg {
            id: 0,
            threads: 1,
            seed: 42,
            record_history: false,
            quality_every: 8,
        };
        let mut w = b.worker(cfg);
        for k in 0..n {
            let kind = if k % 4 == 3 {
                OpKind::Read
            } else {
                OpKind::Update
            };
            w.execute(&Op {
                kind,
                key: k,
                priority: 0,
                weight: 1 + k % 3,
            });
        }
        w.finish();
    }

    #[test]
    fn all_counter_backends_conserve() {
        for b in [
            CounterBackend::multicounter(16),
            CounterBackend::dchoice(16, 3, 9),
            CounterBackend::sharded(4),
            CounterBackend::exact(),
        ] {
            run_ops(&b, 4_000);
            let counts = OpCounts::default();
            b.verify(&counts).expect("conservation");
            let q = b.quality();
            assert_eq!(q.metric, "read_deviation");
            assert!(q.is_finite(), "{}: {q:?}", b.name());
        }
    }

    #[test]
    fn exact_counter_has_zero_deviation() {
        let b = CounterBackend::exact();
        run_ops(&b, 2_000);
        let q = b.quality();
        assert_eq!(q.summary.expect("sampled").max, 0.0);
        assert_eq!(q.get("within_bound"), Some(1.0));
    }

    #[test]
    fn multicounter_deviation_within_bound() {
        let b = CounterBackend::multicounter(32);
        run_ops(&b, 50_000);
        let q = b.quality();
        assert!(q.summary.expect("sampled").count > 0);
        assert_eq!(q.get("within_bound"), Some(1.0), "{q:?}");
    }
}
